//! An oref0-style (OpenAPS) controller.
//!
//! This is a faithful port of the *decision structure* of OpenAPS's
//! `determine-basal.js`: estimate IOB from delivery history, project an
//! eventual BG from the current reading, the recent trend, and the
//! glucose-lowering effect of active insulin, then set a temporary
//! basal rate that corrects the projected error — under low-glucose
//! suspend, max-IOB, and max-basal safety caps.

use crate::{Controller, StateVar};
use aps_glucose::iob::{IobCurve, IobEstimator};
use aps_types::{MgDl, Step, Units, UnitsPerHour, CONTROL_CYCLE_MINUTES};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Tunable profile of the oref0 controller.
///
/// `Copy`: nine scalars, copied by value in the decision hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Oref0Profile {
    /// Scheduled basal rate (U/h).
    pub basal: f64,
    /// Regulation target (mg/dL).
    pub target_bg: f64,
    /// Insulin sensitivity factor (mg/dL per U).
    pub isf: f64,
    /// Low-glucose suspend threshold (mg/dL).
    pub suspend_bg: f64,
    /// Eventual-BG suspend threshold (mg/dL).
    pub suspend_eventual_bg: f64,
    /// Maximum temp basal (U/h).
    pub max_basal: f64,
    /// Maximum net IOB above basal equilibrium (U).
    pub max_iob: f64,
    /// Minutes of trend projected into the eventual BG.
    pub trend_horizon_min: f64,
    /// Minutes over which a correction is spread.
    pub correction_horizon_min: f64,
}

impl Default for Oref0Profile {
    fn default() -> Oref0Profile {
        Oref0Profile {
            basal: 1.0,
            target_bg: 110.0,
            isf: 45.0,
            suspend_bg: 80.0,
            suspend_eventual_bg: 65.0,
            max_basal: 4.0,
            max_iob: 3.5,
            trend_horizon_min: 30.0,
            correction_horizon_min: 30.0,
        }
    }
}

/// The oref0-style controller.
#[derive(Debug, Clone)]
pub struct Oref0Controller {
    profile: Oref0Profile,
    estimator: IobEstimator,
    bg_history: VecDeque<f64>,
    prev_rate: UnitsPerHour,
    /// Values the FI engine forces for the next decision cycle,
    /// indexed by [`var_slot`]. Fixed arrays instead of `HashMap`s:
    /// the decision loop touches every variable every cycle, and seven
    /// SipHash lookups per cycle were measurable campaign overhead.
    overrides: [Option<f64>; N_VARS],
    /// Last cycle's observable internal values (FI read surface).
    last_vars: [Option<f64>; N_VARS],
}

const VAR_GLUCOSE: &str = "glucose";
const VAR_IOB: &str = "iob";
const VAR_EVENTUAL_BG: &str = "eventual_bg";
const VAR_RATE: &str = "rate";
const VAR_TARGET: &str = "target_bg";
const VAR_ISF: &str = "isf";
const VAR_DELTA: &str = "delta";

/// Number of observable/overridable controller variables.
const N_VARS: usize = 7;

/// Slot index of a controller variable name.
fn var_slot(name: &str) -> Option<usize> {
    match name {
        "glucose" => Some(0),
        "iob" => Some(1),
        "eventual_bg" => Some(2),
        "rate" => Some(3),
        "target_bg" => Some(4),
        "isf" => Some(5),
        "delta" => Some(6),
        _ => None,
    }
}

impl Oref0Controller {
    /// Creates a controller with the given profile, starting at basal
    /// IOB equilibrium.
    pub fn new(profile: Oref0Profile) -> Oref0Controller {
        let mut estimator =
            IobEstimator::new(IobCurve::default_exponential(), CONTROL_CYCLE_MINUTES);
        estimator.set_basal_baseline(UnitsPerHour(profile.basal));
        estimator.prefill_basal(UnitsPerHour(profile.basal));
        let prev_rate = UnitsPerHour(profile.basal);
        Oref0Controller {
            profile,
            estimator,
            bg_history: VecDeque::new(),
            prev_rate,
            overrides: [None; N_VARS],
            last_vars: [None; N_VARS],
        }
    }

    /// The active profile.
    pub fn profile(&self) -> &Oref0Profile {
        &self.profile
    }

    fn take_override(&mut self, var: &'static str, fallback: f64) -> f64 {
        let slot = var_slot(var).expect("known variable");
        self.overrides[slot].take().unwrap_or(fallback)
    }

    /// Average 5-minute delta over the last 15 minutes (oref0's
    /// `avgdelta`), or plain delta when history is short.
    fn avg_delta(&self) -> f64 {
        let n = self.bg_history.len();
        if n < 2 {
            return 0.0;
        }
        let span = (n - 1).min(3);
        let newest = self.bg_history[n - 1];
        let oldest = self.bg_history[n - 1 - span];
        (newest - oldest) / span as f64
    }
}

impl Controller for Oref0Controller {
    fn name(&self) -> &str {
        "oref0"
    }

    fn decide(&mut self, _step: Step, bg: MgDl) -> UnitsPerHour {
        let p = self.profile;
        let glucose = self.take_override(VAR_GLUCOSE, bg.value());
        self.bg_history.push_back(glucose);
        if self.bg_history.len() > 5 {
            self.bg_history.pop_front();
        }

        let delta = self.take_override(VAR_DELTA, self.avg_delta());
        let iob = self.take_override(VAR_IOB, self.estimator.iob().value());
        let target = self.take_override(VAR_TARGET, p.target_bg);
        let isf = self.take_override(VAR_ISF, p.isf).max(1.0);

        // Eventual BG: current reading, plus the projected trend, minus
        // what active (net) insulin will still remove.
        let trend = delta * p.trend_horizon_min / CONTROL_CYCLE_MINUTES;
        let naive_eventual = glucose - iob * isf;
        let eventual_bg = self.take_override(VAR_EVENTUAL_BG, naive_eventual + trend);

        let mut rate = if glucose < p.suspend_bg || eventual_bg < p.suspend_eventual_bg {
            // Low-glucose suspend.
            0.0
        } else {
            // Correction: insulin needed to move eventual BG to target,
            // delivered over the correction horizon as a temp basal.
            let error = eventual_bg - target;
            let insulin_req = error / isf;
            let correction = insulin_req * 60.0 / p.correction_horizon_min;
            p.basal + correction
        };

        // Max-IOB cap: don't stack corrections past the IOB ceiling.
        if rate > p.basal && iob >= p.max_iob {
            rate = p.basal;
        }
        // Hardware/profile caps.
        rate = rate.clamp(0.0, p.max_basal);

        let rate = self.take_override(VAR_RATE, rate);
        let rate = UnitsPerHour(rate.clamp(0.0, p.max_basal));

        self.last_vars = [
            Some(glucose),
            Some(iob),
            Some(eventual_bg),
            Some(rate.value()),
            Some(target),
            Some(isf),
            Some(delta),
        ];
        self.prev_rate = rate;
        rate
    }

    fn iob(&self) -> Units {
        self.estimator.iob()
    }

    fn previous_rate(&self) -> UnitsPerHour {
        self.prev_rate
    }

    fn target_bg(&self) -> MgDl {
        MgDl(self.profile.target_bg)
    }

    fn basal_rate(&self) -> UnitsPerHour {
        UnitsPerHour(self.profile.basal)
    }

    fn reset(&mut self) {
        self.estimator
            .set_basal_baseline(UnitsPerHour(self.profile.basal));
        self.estimator
            .prefill_basal(UnitsPerHour(self.profile.basal));
        self.bg_history.clear();
        self.prev_rate = UnitsPerHour(self.profile.basal);
        self.overrides = [None; N_VARS];
        self.last_vars = [None; N_VARS];
    }

    fn observe_delivery(&mut self, delivered: UnitsPerHour) {
        self.estimator.record(delivered);
    }

    fn state_vars(&self) -> Vec<StateVar> {
        let p = &self.profile;
        vec![
            StateVar {
                name: VAR_GLUCOSE,
                min: 40.0,
                max: 400.0,
            },
            StateVar {
                name: VAR_IOB,
                min: 0.0,
                max: p.max_iob * 2.0,
            },
            StateVar {
                name: VAR_EVENTUAL_BG,
                min: 40.0,
                max: 400.0,
            },
            StateVar {
                name: VAR_RATE,
                min: 0.0,
                max: p.max_basal,
            },
            StateVar {
                name: VAR_TARGET,
                min: 80.0,
                max: 200.0,
            },
            StateVar {
                name: VAR_ISF,
                min: 10.0,
                max: 120.0,
            },
            StateVar {
                name: VAR_DELTA,
                min: -20.0,
                max: 20.0,
            },
        ]
    }

    fn get_state(&self, var: &str) -> Option<f64> {
        var_slot(var).and_then(|slot| self.last_vars[slot])
    }

    fn set_state(&mut self, var: &str, value: f64) -> bool {
        match var_slot(var) {
            Some(slot) => {
                self.overrides[slot] = Some(value);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> Oref0Controller {
        Oref0Controller::new(Oref0Profile::default())
    }

    fn run_cycle(c: &mut Oref0Controller, step: u32, bg: f64) -> UnitsPerHour {
        let rate = c.decide(Step(step), MgDl(bg));
        c.observe_delivery(rate);
        rate
    }

    #[test]
    fn holds_basal_at_target() {
        let mut c = ctl();
        let mut rate = UnitsPerHour(0.0);
        for s in 0..6 {
            rate = run_cycle(&mut c, s, 110.0);
        }
        assert!(
            (rate.value() - 1.0).abs() < 0.3,
            "expected ~basal at target, got {rate:?}"
        );
    }

    #[test]
    fn corrects_upward_when_high() {
        let mut c = ctl();
        let rate = run_cycle(&mut c, 0, 250.0);
        assert!(
            rate.value() > 1.5,
            "high BG should raise rate, got {rate:?}"
        );
    }

    #[test]
    fn low_glucose_suspends() {
        let mut c = ctl();
        let rate = run_cycle(&mut c, 0, 70.0);
        assert_eq!(rate, UnitsPerHour(0.0));
    }

    #[test]
    fn falling_trend_with_high_iob_suspends() {
        let mut c = ctl();
        // Build IOB with sustained highs, then crash the reading.
        for s in 0..12 {
            run_cycle(&mut c, s, 260.0);
        }
        assert!(c.iob().value() > 1.0);
        // Rapidly falling BG near range: eventual BG goes below suspend.
        let r1 = run_cycle(&mut c, 12, 150.0);
        let r2 = run_cycle(&mut c, 13, 120.0);
        assert!(
            r2 < r1 || r2.value() == 0.0,
            "should back off: {r1:?} -> {r2:?}"
        );
    }

    #[test]
    fn max_basal_cap_enforced() {
        let mut c = ctl();
        let rate = run_cycle(&mut c, 0, 400.0);
        assert!(rate.value() <= c.profile().max_basal + 1e-12);
    }

    #[test]
    fn max_iob_cap_prevents_stacking() {
        // Sustained extreme hyperglycemia: without the cap, 4 U/h over
        // basal would stack ~6 U of net IOB; the correction/IOB logic
        // must keep net IOB bounded near the configured ceiling.
        let mut c = ctl();
        let mut max_iob_seen: f64 = 0.0;
        for s in 0..72 {
            run_cycle(&mut c, s, 300.0);
            max_iob_seen = max_iob_seen.max(c.iob().value());
        }
        assert!(
            max_iob_seen <= c.profile().max_iob + 0.3,
            "net IOB ran away to {max_iob_seen}"
        );
        assert!(
            max_iob_seen > 2.0,
            "controller never corrected: {max_iob_seen}"
        );
    }

    #[test]
    fn glucose_override_changes_decision_once() {
        let mut c = ctl();
        assert!(c.set_state("glucose", 300.0));
        let faulty = run_cycle(&mut c, 0, 110.0);
        assert!(faulty.value() > 1.5, "override ignored: {faulty:?}");
        // Override consumed: next cycle sees the true reading again.
        // (The trend now *falls* from 300 to 110, so the controller backs off.)
        let clean = run_cycle(&mut c, 1, 110.0);
        assert!(clean < faulty);
    }

    #[test]
    fn rate_override_bypasses_logic_but_not_caps() {
        let mut c = ctl();
        assert!(c.set_state("rate", 99.0));
        let rate = run_cycle(&mut c, 0, 110.0);
        assert!((rate.value() - c.profile().max_basal).abs() < 1e-12);
    }

    #[test]
    fn unknown_var_rejected() {
        let mut c = ctl();
        assert!(!c.set_state("nonsense", 1.0));
        assert_eq!(c.get_state("nonsense"), None);
    }

    #[test]
    fn get_state_reflects_last_cycle() {
        let mut c = ctl();
        run_cycle(&mut c, 0, 180.0);
        assert_eq!(c.get_state("glucose"), Some(180.0));
        assert!(c.get_state("rate").is_some());
        assert!(c.get_state("eventual_bg").is_some());
    }

    #[test]
    fn reset_restores_equilibrium() {
        let mut c = ctl();
        for s in 0..10 {
            run_cycle(&mut c, s, 300.0);
        }
        let iob_before = c.iob().value();
        c.reset();
        assert!(c.iob().value() < iob_before);
        assert_eq!(c.previous_rate(), UnitsPerHour(1.0));
    }

    #[test]
    fn state_vars_have_sane_ranges() {
        let c = ctl();
        for v in c.state_vars() {
            assert!(v.min < v.max, "{}", v.name);
        }
    }
}
