//! Continuous glucose monitor (CGM) sampling model.
//!
//! The paper assumes sensor data delivered to controller and monitor is
//! fault-free (protected by existing techniques), so the default sensor
//! is noise-free; white Gaussian noise, quantization, and the full
//! colored-noise calibration error model of
//! [`sensor_error`](crate::sensor_error) are available for robustness
//! experiments.

use crate::sensor_error::{CgmErrorModel, ErrorModelConfig};
use aps_types::{MgDl, CONTROL_CYCLE_MINUTES};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// CGM configuration.
///
/// `Copy`: the config is a handful of scalars, so per-run sensor
/// construction copies it instead of cloning heap data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CgmConfig {
    /// Standard deviation of additive white Gaussian noise (mg/dL);
    /// 0 = clean.
    pub noise_sd: f64,
    /// Reporting resolution (mg/dL); CGMs report integers.
    pub quantization: f64,
    /// RNG seed for reproducible noise.
    pub seed: u64,
    /// Optional realistic (AR(1) + calibration drift) error model,
    /// applied *instead of* the white noise.
    #[serde(default)]
    pub error_model: Option<ErrorModelConfig>,
}

impl Default for CgmConfig {
    fn default() -> CgmConfig {
        CgmConfig {
            noise_sd: 0.0,
            quantization: 1.0,
            seed: 7,
            error_model: None,
        }
    }
}

/// A CGM sensor sampling a patient's glucose once per control cycle.
#[derive(Debug, Clone)]
pub struct Cgm {
    config: CgmConfig,
    rng: ChaCha8Rng,
    error_model: Option<CgmErrorModel>,
    last: Option<MgDl>,
}

impl Cgm {
    /// Creates a sensor from configuration.
    pub fn new(config: CgmConfig) -> Cgm {
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        let error_model = config.error_model.map(CgmErrorModel::new);
        Cgm {
            config,
            rng,
            error_model,
            last: None,
        }
    }

    /// Samples the true glucose, applying noise and quantization.
    pub fn sample(&mut self, true_bg: MgDl) -> MgDl {
        let mut v = match self.error_model.as_mut() {
            Some(model) => model.distort(true_bg, CONTROL_CYCLE_MINUTES).value(),
            None => {
                let mut v = true_bg.value();
                if self.config.noise_sd > 0.0 {
                    // Box-Muller transform for a standard normal draw.
                    let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = self.rng.gen_range(0.0..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    v += z * self.config.noise_sd;
                }
                v
            }
        };
        let q = self.config.quantization.max(f64::MIN_POSITIVE);
        v = (v / q).round() * q;
        let reading = MgDl(v).clamp_physiological();
        self.last = Some(reading);
        reading
    }

    /// The most recent reading, if any.
    pub fn last(&self) -> Option<MgDl> {
        self.last
    }
}

impl Default for Cgm {
    fn default() -> Cgm {
        Cgm::new(CgmConfig::default())
    }
}

/// A lane bank of `LANES` independent CGM sensors, sampled with one
/// per-lane loop per control cycle by the batched campaign engine.
///
/// Each lane owns a full scalar [`Cgm`] seeded from the same config a
/// scalar run would use, so every lane's noise stream, quantization,
/// and clamping are bit-identical to the sensor of a standalone run.
#[derive(Debug, Clone)]
pub struct CgmBank<const LANES: usize> {
    lanes: [Cgm; LANES],
}

impl<const LANES: usize> CgmBank<LANES> {
    /// One sensor per lane, each constructed exactly as a scalar run
    /// constructs its sensor (identical seed, hence identical stream).
    pub fn new(config: CgmConfig) -> CgmBank<LANES> {
        CgmBank {
            lanes: std::array::from_fn(|_| Cgm::new(config)),
        }
    }

    /// Samples every lane's sensor against its lane's true glucose.
    pub fn sample_all(&mut self, true_bg: &[MgDl; LANES]) -> [MgDl; LANES] {
        std::array::from_fn(|l| self.lanes[l].sample(true_bg[l]))
    }

    /// One lane's sensor (e.g. for per-lane mitigation context).
    pub fn lane(&self, lane: usize) -> &Cgm {
        &self.lanes[lane]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_sensor_quantizes_only() {
        let mut cgm = Cgm::default();
        assert_eq!(cgm.sample(MgDl(123.4)), MgDl(123.0));
        assert_eq!(cgm.last(), Some(MgDl(123.0)));
    }

    #[test]
    fn noise_is_reproducible_per_seed() {
        let cfg = CgmConfig {
            noise_sd: 5.0,
            ..CgmConfig::default()
        };
        let mut a = Cgm::new(cfg);
        let mut b = Cgm::new(cfg);
        for _ in 0..10 {
            assert_eq!(a.sample(MgDl(120.0)), b.sample(MgDl(120.0)));
        }
    }

    #[test]
    fn noise_has_roughly_zero_mean() {
        let cfg = CgmConfig {
            noise_sd: 5.0,
            quantization: 0.001,
            ..CgmConfig::default()
        };
        let mut cgm = Cgm::new(cfg);
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| cgm.sample(MgDl(120.0)).value() - 120.0)
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.5, "noise mean {mean}");
    }

    #[test]
    fn readings_stay_physiological() {
        let cfg = CgmConfig {
            noise_sd: 100.0,
            ..CgmConfig::default()
        };
        let mut cgm = Cgm::new(cfg);
        for _ in 0..100 {
            let r = cgm.sample(MgDl(15.0)).value();
            assert!((10.0..=600.0).contains(&r));
        }
    }
}
