//! Bergman minimal model / Kanderian GIM patient — the Glucosym
//! substitute.
//!
//! Glucosym implements the glucose–insulin metabolism (GIM) model that
//! Kanderian et al. identified from data of ten adults with Type-1
//! diabetes. The equations (with the paper's Eq. 6 as the glucose
//! subsystem) are:
//!
//! ```text
//! dIsc/dt  = ID(t)/(τ₁·CI) − Isc/τ₁          subcutaneous insulin (µU/mL)
//! dIp/dt   = (Isc − Ip)/τ₂                   plasma insulin (µU/mL)
//! dIeff/dt = −p₂·Ieff + p₂·SI·Ip             insulin effect (1/min)
//! dBG/dt   = −(GEZI + Ieff)·BG + EGP + RA(t) glucose (mg/dL)
//! ```
//!
//! `ID(t)` is the insulin delivery rate in µU/min, `RA(t)` the meal
//! glucose appearance (mg/dL/min, two-compartment gut model here).
//!
//! At steady state `BG_ss = EGP / (GEZI + SI·ID/CI)`, which gives each
//! virtual patient a closed-form equilibrium basal rate — handy both
//! for controller initialization and for validating the integrator.

use crate::ode::{BatchedRk4Scratch, Rk4Scratch};
use crate::{BatchedPatientSim, PatientSim};
use aps_types::{MgDl, UnitsPerHour};
use serde::{Deserialize, Serialize};

/// Identified parameters of one GIM/Bergman patient.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BergmanParams {
    /// Patient identifier.
    pub name: String,
    /// Glucose effectiveness at zero insulin (1/min).
    pub gezi: f64,
    /// Endogenous glucose production (mg/dL/min).
    pub egp: f64,
    /// Insulin sensitivity (1/min per µU/mL).
    pub si: f64,
    /// Insulin-effect time constant p₂ (1/min).
    pub p2: f64,
    /// Subcutaneous insulin absorption time constant τ₁ (min).
    pub tau1: f64,
    /// Plasma insulin time constant τ₂ (min).
    pub tau2: f64,
    /// Insulin clearance (mL/min).
    pub ci: f64,
    /// Carb-to-glucose appearance gain (mg/dL per gram of carbs).
    pub carb_gain: f64,
    /// Gut absorption time constant for meals (min).
    pub tau_meal: f64,
}

impl BergmanParams {
    /// The Kanderian population-average adult, used as the cohort
    /// template and by the MPC baseline monitor.
    pub fn population_average() -> BergmanParams {
        BergmanParams {
            name: "glucosym/average".to_owned(),
            gezi: 2.2e-3,
            egp: 1.33,
            si: 7.0e-4,
            p2: 0.011,
            tau1: 55.0,
            tau2: 50.0,
            ci: 1200.0,
            carb_gain: 3.5,
            tau_meal: 40.0,
        }
    }

    /// Closed-form steady-state glucose under a constant infusion rate.
    pub fn steady_state_bg(&self, rate: UnitsPerHour) -> MgDl {
        let id_uu_per_min = rate.value() * 1e6 / 60.0; // U/h -> µU/min
        let ip = id_uu_per_min / self.ci; // µU/mL at steady state
        let ieff = self.si * ip;
        MgDl(self.egp / (self.gezi + ieff))
    }

    /// Closed-form equilibrium basal rate for a steady-state target.
    ///
    /// Inverts `BG_ss = EGP/(GEZI + SI·ID/CI)`; clamped at zero when the
    /// target exceeds the zero-insulin equilibrium `EGP/GEZI`.
    pub fn equilibrium_basal(&self, target: MgDl) -> UnitsPerHour {
        let needed_ieff = self.egp / target.value() - self.gezi;
        if needed_ieff <= 0.0 {
            return UnitsPerHour(0.0);
        }
        let ip = needed_ieff / self.si;
        let id_uu_per_min = ip * self.ci;
        UnitsPerHour(id_uu_per_min * 60.0 / 1e6)
    }
}

/// State indices in the ODE vector.
const ISC: usize = 0;
const IP: usize = 1;
const IEFF: usize = 2;
const BG: usize = 3;
const QGUT1: usize = 4;
const QGUT2: usize = 5;
const NSTATE: usize = 6;

/// Multiplier applied to GEZI per unit of exercise intensity: brisk
/// exercise (intensity 1) raises insulin-independent glucose uptake to
/// 1 + this factor times its resting value, the dominant acute effect
/// of aerobic exercise in T1D.
pub const EXERCISE_GEZI_GAIN: f64 = 4.0;

/// A simulated GIM/Bergman patient.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BergmanPatient {
    params: BergmanParams,
    state: [f64; NSTATE],
    t_minutes: f64,
    #[serde(default)]
    exercise_minutes_left: f64,
    #[serde(default)]
    exercise_intensity: f64,
}

impl BergmanPatient {
    /// Creates a patient initialized at 120 mg/dL basal equilibrium.
    pub fn new(params: BergmanParams) -> BergmanPatient {
        let mut p = BergmanPatient {
            params,
            state: [0.0; NSTATE],
            t_minutes: 0.0,
            exercise_minutes_left: 0.0,
            exercise_intensity: 0.0,
        };
        p.reset(MgDl(120.0));
        p
    }

    /// The patient's parameters.
    pub fn params(&self) -> &BergmanParams {
        &self.params
    }

    /// Elapsed physiological time in minutes.
    pub fn elapsed_minutes(&self) -> f64 {
        self.t_minutes
    }

    /// Current insulin-effect state (1/min) — exposed for tests and for
    /// the MPC baseline's state estimate.
    pub fn insulin_effect(&self) -> f64 {
        self.state[IEFF]
    }

    /// Current plasma insulin (µU/mL).
    pub fn plasma_insulin(&self) -> f64 {
        self.state[IP]
    }
}

impl PatientSim for BergmanPatient {
    fn name(&self) -> &str {
        &self.params.name
    }

    fn bg(&self) -> MgDl {
        MgDl(self.state[BG]).clamp_physiological()
    }

    fn step(&mut self, rate: UnitsPerHour, minutes: f64) {
        let rate = rate.max_zero();
        let id_uu_per_min = rate.value() * 1e6 / 60.0;
        // Borrow (not clone) the parameters: the closure only reads
        // them, and `state` is a disjoint field.
        let p = &self.params;
        // Exercise elevates insulin-independent uptake for the active
        // part of the step (5-minute resolution).
        let active = self.exercise_minutes_left.min(minutes);
        let intensity = if active > 0.0 {
            self.exercise_intensity
        } else {
            0.0
        };
        let gezi = p.gezi * (1.0 + EXERCISE_GEZI_GAIN * intensity * (active / minutes));
        self.exercise_minutes_left = (self.exercise_minutes_left - minutes).max(0.0);
        let dynamics = move |_t: f64, x: &[f64], d: &mut [f64]| {
            let ra = p.carb_gain * x[QGUT2] / p.tau_meal;
            d[ISC] = id_uu_per_min / (p.tau1 * p.ci) - x[ISC] / p.tau1;
            d[IP] = (x[ISC] - x[IP]) / p.tau2;
            d[IEFF] = -p.p2 * x[IEFF] + p.p2 * p.si * x[IP];
            d[BG] = -(gezi + x[IEFF]) * x[BG] + p.egp + ra;
            d[QGUT1] = -x[QGUT1] / p.tau_meal;
            d[QGUT2] = (x[QGUT1] - x[QGUT2]) / p.tau_meal;
        };
        // Stack-only scratch: the simulation hot loop performs no heap
        // allocation per step.
        let finite = Rk4Scratch::<NSTATE>::new()
            .try_integrate(&dynamics, self.t_minutes, &mut self.state, minutes, 1.0)
            .is_ok();
        if finite {
            // Glucose cannot go negative; extreme insulin faults can
            // push the linear model below zero where the physiology
            // saturates. Applied only to finite states: f64::max(NaN,
            // floor) is the floor, which would mask divergence from
            // `state_is_finite`.
            self.state[BG] = self.state[BG].max(10.0);
        }
        self.t_minutes += minutes;
    }

    fn reset(&mut self, bg0: MgDl) {
        // Insulin pools at the steady state of the 120 mg/dL basal rate;
        // glucose at the requested starting point.
        let basal = self.params.equilibrium_basal(MgDl(120.0));
        let id_uu_per_min = basal.value() * 1e6 / 60.0;
        let ip = id_uu_per_min / self.params.ci;
        self.state = [0.0; NSTATE];
        self.state[ISC] = ip;
        self.state[IP] = ip;
        self.state[IEFF] = self.params.si * ip;
        self.state[BG] = bg0.value();
        self.t_minutes = 0.0;
        self.exercise_minutes_left = 0.0;
        self.exercise_intensity = 0.0;
    }

    fn ingest(&mut self, carbs_g: f64) {
        self.state[QGUT1] += carbs_g.max(0.0);
    }

    fn exert(&mut self, intensity: f64, duration_min: f64) {
        self.exercise_intensity = intensity.clamp(0.0, 1.0);
        self.exercise_minutes_left = duration_min.max(0.0);
    }

    fn equilibrium_basal(&self, target: MgDl) -> UnitsPerHour {
        self.params.equilibrium_basal(target)
    }

    fn state_is_finite(&self) -> bool {
        self.state.iter().all(|v| v.is_finite())
    }
}

/// A lane-batched cohort of `LANES` Bergman patients stepped in
/// lockstep.
///
/// State and parameters are structure-of-arrays: each ODE compartment
/// and each identified parameter is one contiguous `[f64; LANES]` row,
/// so the RK4 stage math and the dynamics below are plain per-lane
/// loops the compiler autovectorizes. Per lane the arithmetic is
/// expression-for-expression [`BergmanPatient::step`], which keeps every
/// lane bit-identical to its scalar counterpart.
///
/// Lanes are loaded from already-constructed scalar patients with
/// [`load_lane`](BatchedBergman::load_lane); all lanes must be loaded
/// (padding lanes may duplicate a real one) before stepping.
#[derive(Debug, Clone)]
pub struct BatchedBergman<const LANES: usize> {
    gezi: [f64; LANES],
    egp: [f64; LANES],
    si: [f64; LANES],
    p2: [f64; LANES],
    tau1: [f64; LANES],
    tau2: [f64; LANES],
    ci: [f64; LANES],
    carb_gain: [f64; LANES],
    tau_meal: [f64; LANES],
    state: [[f64; LANES]; NSTATE],
    /// Shared clock: lanes advance in lockstep, so one `t` serves all.
    t_minutes: f64,
    exercise_minutes_left: [f64; LANES],
    exercise_intensity: [f64; LANES],
    /// Reused across [`step_all`](BatchedPatientSim::step_all) calls so
    /// the per-cycle step does not re-zero ~2 KB of stage buffers.
    scratch: BatchedRk4Scratch<NSTATE, LANES>,
}

impl<const LANES: usize> BatchedBergman<LANES> {
    /// Empty batch (all lanes zeroed); load every lane before stepping.
    pub const fn new() -> BatchedBergman<LANES> {
        BatchedBergman {
            gezi: [0.0; LANES],
            egp: [0.0; LANES],
            si: [0.0; LANES],
            p2: [0.0; LANES],
            tau1: [0.0; LANES],
            tau2: [0.0; LANES],
            ci: [0.0; LANES],
            carb_gain: [0.0; LANES],
            tau_meal: [0.0; LANES],
            state: [[0.0; LANES]; NSTATE],
            t_minutes: 0.0,
            exercise_minutes_left: [0.0; LANES],
            exercise_intensity: [0.0; LANES],
            scratch: BatchedRk4Scratch::new(),
        }
    }

    /// Copies one scalar patient's parameters and full state into a
    /// lane. Lanes advance on a shared clock, so every loaded patient
    /// must be at the same elapsed time (freshly `reset` patients are).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= LANES` or the patient's clock disagrees with
    /// lanes already loaded.
    pub fn load_lane(&mut self, lane: usize, patient: &BergmanPatient) {
        assert!(lane < LANES, "lane {lane} out of range (LANES = {LANES})");
        assert!(
            self.t_minutes == patient.t_minutes || self.t_minutes == 0.0,
            "lockstep lanes must share one clock"
        );
        let p = &patient.params;
        self.gezi[lane] = p.gezi;
        self.egp[lane] = p.egp;
        self.si[lane] = p.si;
        self.p2[lane] = p.p2;
        self.tau1[lane] = p.tau1;
        self.tau2[lane] = p.tau2;
        self.ci[lane] = p.ci;
        self.carb_gain[lane] = p.carb_gain;
        self.tau_meal[lane] = p.tau_meal;
        for d in 0..NSTATE {
            self.state[d][lane] = patient.state[d];
        }
        self.t_minutes = patient.t_minutes;
        self.exercise_minutes_left[lane] = patient.exercise_minutes_left;
        self.exercise_intensity[lane] = patient.exercise_intensity;
    }
}

impl<const LANES: usize> Default for BatchedBergman<LANES> {
    fn default() -> BatchedBergman<LANES> {
        BatchedBergman::new()
    }
}

impl<const LANES: usize> BatchedPatientSim<LANES> for BatchedBergman<LANES> {
    fn bg(&self, lane: usize) -> MgDl {
        MgDl(self.state[BG][lane]).clamp_physiological()
    }

    fn step_all(&mut self, rates: &[UnitsPerHour; LANES], minutes: f64) {
        // Per-lane pre-step scalars, mirroring the scalar `step`
        // preamble expression for expression.
        let mut id_uu_per_min = [0.0; LANES];
        let mut gezi = [0.0; LANES];
        for l in 0..LANES {
            let rate = rates[l].max_zero();
            id_uu_per_min[l] = rate.value() * 1e6 / 60.0;
            let active = self.exercise_minutes_left[l].min(minutes);
            let intensity = if active > 0.0 {
                self.exercise_intensity[l]
            } else {
                0.0
            };
            gezi[l] = self.gezi[l] * (1.0 + EXERCISE_GEZI_GAIN * intensity * (active / minutes));
            self.exercise_minutes_left[l] = (self.exercise_minutes_left[l] - minutes).max(0.0);
        }
        // Borrow the parameter rows individually so the dynamics
        // closure stays disjoint from the `&mut self.state` the
        // integrator takes.
        let (tau1, tau2, ci) = (&self.tau1, &self.tau2, &self.ci);
        let (p2, si, egp) = (&self.p2, &self.si, &self.egp);
        let (carb_gain, tau_meal) = (&self.carb_gain, &self.tau_meal);
        let dynamics =
            move |_t: f64, x: &[[f64; LANES]; NSTATE], d: &mut [[f64; LANES]; NSTATE]| {
                for l in 0..LANES {
                    let ra = carb_gain[l] * x[QGUT2][l] / tau_meal[l];
                    d[ISC][l] = id_uu_per_min[l] / (tau1[l] * ci[l]) - x[ISC][l] / tau1[l];
                    d[IP][l] = (x[ISC][l] - x[IP][l]) / tau2[l];
                    d[IEFF][l] = -p2[l] * x[IEFF][l] + p2[l] * si[l] * x[IP][l];
                    d[BG][l] = -(gezi[l] + x[IEFF][l]) * x[BG][l] + egp[l] + ra;
                    d[QGUT1][l] = -x[QGUT1][l] / tau_meal[l];
                    d[QGUT2][l] = (x[QGUT1][l] - x[QGUT2][l]) / tau_meal[l];
                }
            };
        // Free-running lanes: a diverged lane churns NaN harmlessly
        // (non-finite is absorbing under the RK4 update) instead of
        // early-aborting the whole batch the way the scalar
        // `try_integrate` does; `lane_is_finite` reports it afterward.
        self.scratch
            .integrate(&dynamics, self.t_minutes, &mut self.state, minutes, 1.0);
        for l in 0..LANES {
            // Same floor as the scalar path, applied only to finite
            // lanes: f64::max(NaN, floor) is the floor, which would
            // mask divergence from `lane_is_finite`.
            let finite = self.state.iter().all(|row| row[l].is_finite());
            if finite {
                self.state[BG][l] = self.state[BG][l].max(10.0);
            }
        }
        self.t_minutes += minutes;
    }

    fn ingest(&mut self, lane: usize, carbs_g: f64) {
        self.state[QGUT1][lane] += carbs_g.max(0.0);
    }

    fn exert(&mut self, lane: usize, intensity: f64, duration_min: f64) {
        // `clamp` would mask a non-finite intensity into the exercise
        // state; scenario specs only carry finite values, assert so.
        debug_assert!(intensity.is_finite() && duration_min.is_finite());
        self.exercise_intensity[lane] = intensity.clamp(0.0, 1.0);
        self.exercise_minutes_left[lane] = duration_min.max(0.0);
    }

    fn lane_is_finite(&self, lane: usize) -> bool {
        self.state.iter().all(|row| row[lane].is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avg_patient() -> BergmanPatient {
        BergmanPatient::new(BergmanParams::population_average())
    }

    #[test]
    fn steady_state_formula_consistency() {
        let p = BergmanParams::population_average();
        let basal = p.equilibrium_basal(MgDl(120.0));
        assert!(
            basal.value() > 0.1 && basal.value() < 5.0,
            "basal = {basal:?}"
        );
        let ss = p.steady_state_bg(basal);
        assert!((ss.value() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn holds_equilibrium_under_basal() {
        let mut pt = avg_patient();
        pt.reset(MgDl(120.0));
        let basal = pt.equilibrium_basal(MgDl(120.0));
        for _ in 0..144 {
            pt.step(basal, 5.0); // 12 hours
        }
        assert!(
            (pt.bg().value() - 120.0).abs() < 2.0,
            "drifted to {} mg/dL",
            pt.bg().value()
        );
    }

    #[test]
    fn no_insulin_raises_bg_toward_zero_insulin_equilibrium() {
        let mut pt = avg_patient();
        pt.reset(MgDl(120.0));
        for _ in 0..144 {
            pt.step(UnitsPerHour(0.0), 5.0);
        }
        let p = pt.params().clone();
        let max_bg = p.egp / p.gezi;
        assert!(
            pt.bg().value() > 250.0,
            "BG only reached {}",
            pt.bg().value()
        );
        assert!(pt.bg().value() <= max_bg + 1.0);
    }

    #[test]
    fn insulin_overdose_causes_hypoglycemia() {
        let mut pt = avg_patient();
        pt.reset(MgDl(120.0));
        let basal = pt.equilibrium_basal(MgDl(120.0));
        for _ in 0..72 {
            pt.step(basal * 8.0, 5.0); // 6 hours of 8x basal
        }
        assert!(pt.bg().value() < 70.0, "BG still {}", pt.bg().value());
    }

    #[test]
    fn exercise_lowers_bg() {
        let basal = avg_patient().equilibrium_basal(MgDl(120.0));
        let run = |intensity: f64| -> f64 {
            let mut pt = avg_patient();
            pt.reset(MgDl(120.0));
            pt.exert(intensity, 60.0);
            for _ in 0..12 {
                pt.step(basal, 5.0);
            }
            pt.bg().value()
        };
        let rest = run(0.0);
        let moderate = run(0.5);
        let brisk = run(1.0);
        assert!(
            moderate < rest - 3.0,
            "moderate exercise barely moved BG ({rest} -> {moderate})"
        );
        assert!(brisk < moderate, "effect not monotone in intensity");
    }

    #[test]
    fn exercise_effect_expires() {
        let basal = avg_patient().equilibrium_basal(MgDl(120.0));
        let mut pt = avg_patient();
        pt.reset(MgDl(120.0));
        pt.exert(1.0, 30.0);
        for _ in 0..6 {
            pt.step(basal, 5.0); // the bout
        }
        let after_bout = pt.bg().value();
        for _ in 0..72 {
            pt.step(basal, 5.0); // 6 h of recovery
        }
        // Glucose recovers toward the basal equilibrium once the bout ends.
        assert!(pt.bg().value() > after_bout, "no recovery after exercise");
    }

    #[test]
    fn reset_cancels_exercise() {
        let mut pt = avg_patient();
        pt.exert(1.0, 120.0);
        pt.reset(MgDl(120.0));
        let basal = pt.equilibrium_basal(MgDl(120.0));
        for _ in 0..12 {
            pt.step(basal, 5.0);
        }
        assert!(
            (pt.bg().value() - 120.0).abs() < 2.0,
            "reset left exercise active"
        );
    }

    #[test]
    fn meal_raises_bg() {
        let mut pt = avg_patient();
        pt.reset(MgDl(120.0));
        let basal = pt.equilibrium_basal(MgDl(120.0));
        pt.ingest(60.0);
        let mut peak: f64 = 0.0;
        for _ in 0..36 {
            pt.step(basal, 5.0);
            peak = peak.max(pt.bg().value());
        }
        assert!(peak > 150.0, "meal peak only {peak}");
    }

    #[test]
    fn negative_rate_treated_as_zero() {
        let mut a = avg_patient();
        let mut b = avg_patient();
        a.reset(MgDl(120.0));
        b.reset(MgDl(120.0));
        a.step(UnitsPerHour(-5.0), 5.0);
        b.step(UnitsPerHour(0.0), 5.0);
        assert!((a.bg().value() - b.bg().value()).abs() < 1e-9);
    }

    #[test]
    fn bg_never_below_physiological_floor() {
        let mut pt = avg_patient();
        pt.reset(MgDl(80.0));
        for _ in 0..288 {
            pt.step(UnitsPerHour(30.0), 5.0); // absurd overdose, 24 h
        }
        assert!(pt.bg().value() >= 10.0);
    }

    #[test]
    fn reset_restores_time_and_state() {
        let mut pt = avg_patient();
        pt.step(UnitsPerHour(1.0), 5.0);
        assert!(pt.elapsed_minutes() > 0.0);
        pt.reset(MgDl(150.0));
        assert_eq!(pt.elapsed_minutes(), 0.0);
        assert!((pt.bg().value() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn equilibrium_basal_clamps_at_zero_for_high_targets() {
        let p = BergmanParams::population_average();
        let max_bg = p.egp / p.gezi;
        assert_eq!(p.equilibrium_basal(MgDl(max_bg + 50.0)), UnitsPerHour(0.0));
    }

    #[test]
    fn batched_lanes_bit_identical_to_scalar_patients() {
        // Four parameter-varied patients driven through meals, exercise,
        // and varied infusion rates: every lane of the batch must track
        // its scalar twin bit-for-bit, including the BG floor.
        const LANES: usize = 4;
        let mut scalars: Vec<BergmanPatient> = (0..LANES)
            .map(|l| {
                let mut p = BergmanParams::population_average();
                p.si *= 1.0 + 0.3 * l as f64;
                p.gezi *= 1.0 + 0.1 * l as f64;
                BergmanPatient::new(p)
            })
            .collect();
        let mut batch = BatchedBergman::<LANES>::new();
        for (l, pt) in scalars.iter_mut().enumerate() {
            pt.reset(MgDl(100.0 + 20.0 * l as f64));
            batch.load_lane(l, pt);
        }
        for cycle in 0..48 {
            if cycle == 4 {
                scalars[1].ingest(60.0);
                batch.ingest(1, 60.0);
            }
            if cycle == 10 {
                scalars[2].exert(0.8, 45.0);
                batch.exert(2, 0.8, 45.0);
            }
            let mut rates = [UnitsPerHour(0.0); LANES];
            for (l, r) in rates.iter_mut().enumerate() {
                // Lane 3 gets an absurd overdose to exercise the floor.
                *r = if l == 3 {
                    UnitsPerHour(30.0)
                } else {
                    UnitsPerHour(0.5 + 0.2 * (l as f64) + 0.1 * (cycle % 5) as f64)
                };
            }
            batch.step_all(&rates, 5.0);
            for (l, pt) in scalars.iter_mut().enumerate() {
                pt.step(rates[l], 5.0);
                assert_eq!(
                    BatchedPatientSim::bg(&batch, l).value(),
                    pt.bg().value(),
                    "lane {l} diverged at cycle {cycle}"
                );
                for d in 0..NSTATE {
                    assert_eq!(batch.state[d][l], pt.state[d], "lane {l} comp {d}");
                }
                assert!(batch.lane_is_finite(l));
            }
        }
    }

    #[test]
    fn higher_sensitivity_needs_less_insulin() {
        let mut hi = BergmanParams::population_average();
        hi.si *= 2.0;
        let lo = BergmanParams::population_average();
        assert!(
            hi.equilibrium_basal(MgDl(120.0)).value() < lo.equilibrium_basal(MgDl(120.0)).value()
        );
    }
}
