//! Fixed-step Runge–Kutta integration for the patient ODE models.

/// Continuous-time dynamics `dx/dt = f(t, x)` over a fixed-size state.
pub trait Dynamics {
    /// Writes the derivative of `x` at time `t` (minutes) into `dxdt`.
    fn derivative(&self, t: f64, x: &[f64], dxdt: &mut [f64]);
}

impl<F> Dynamics for F
where
    F: Fn(f64, &[f64], &mut [f64]),
{
    fn derivative(&self, t: f64, x: &[f64], dxdt: &mut [f64]) {
        self(t, x, dxdt)
    }
}

/// Advances `x` from `t` by `dt` with one classical RK4 step.
pub fn rk4_step<D: Dynamics + ?Sized>(dyn_: &D, t: f64, x: &mut [f64], dt: f64) {
    let n = x.len();
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut tmp = vec![0.0; n];

    dyn_.derivative(t, x, &mut k1);
    for i in 0..n {
        tmp[i] = x[i] + 0.5 * dt * k1[i];
    }
    dyn_.derivative(t + 0.5 * dt, &tmp, &mut k2);
    for i in 0..n {
        tmp[i] = x[i] + 0.5 * dt * k2[i];
    }
    dyn_.derivative(t + 0.5 * dt, &tmp, &mut k3);
    for i in 0..n {
        tmp[i] = x[i] + dt * k3[i];
    }
    dyn_.derivative(t + dt, &tmp, &mut k4);
    for i in 0..n {
        x[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
}

/// Integrates from `t0` over `duration` using steps of at most
/// `max_dt`, mutating `x` in place.
///
/// # Panics
///
/// Panics if `max_dt` or `duration` is non-positive.
pub fn integrate<D: Dynamics + ?Sized>(
    dyn_: &D,
    t0: f64,
    x: &mut [f64],
    duration: f64,
    max_dt: f64,
) {
    assert!(max_dt > 0.0, "max_dt must be positive");
    assert!(duration > 0.0, "duration must be positive");
    let steps = (duration / max_dt).ceil() as usize;
    let dt = duration / steps as f64;
    let mut t = t0;
    for _ in 0..steps {
        rk4_step(dyn_, t, x, dt);
        t += dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_decay_matches_closed_form() {
        // dx/dt = -k x  =>  x(t) = x0 e^{-k t}
        let k = 0.3;
        let f = move |_t: f64, x: &[f64], d: &mut [f64]| d[0] = -k * x[0];
        let mut x = [1.0];
        integrate(&f, 0.0, &mut x, 10.0, 0.1);
        let exact = (-k * 10.0f64).exp();
        assert!((x[0] - exact).abs() < 1e-8, "{} vs {}", x[0], exact);
    }

    #[test]
    fn harmonic_oscillator_energy_preserved() {
        // x'' = -x as a 2-state system; RK4 should conserve energy well.
        let f = |_t: f64, x: &[f64], d: &mut [f64]| {
            d[0] = x[1];
            d[1] = -x[0];
        };
        let mut x = [1.0, 0.0];
        integrate(&f, 0.0, &mut x, 2.0 * std::f64::consts::PI, 0.01);
        assert!((x[0] - 1.0).abs() < 1e-6);
        assert!(x[1].abs() < 1e-6);
    }

    #[test]
    fn time_dependent_rhs() {
        // dx/dt = t  =>  x(T) = T^2 / 2
        let f = |t: f64, _x: &[f64], d: &mut [f64]| d[0] = t;
        let mut x = [0.0];
        integrate(&f, 0.0, &mut x, 4.0, 0.5);
        assert!((x[0] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn uneven_duration_is_subdivided() {
        let f = |_t: f64, x: &[f64], d: &mut [f64]| d[0] = -x[0];
        let mut x = [1.0];
        // 5 minutes with max_dt 0.4 -> 13 steps of 5/13.
        integrate(&f, 0.0, &mut x, 5.0, 0.4);
        assert!((x[0] - (-5.0f64).exp()).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "max_dt")]
    fn zero_dt_panics() {
        let f = |_t: f64, _x: &[f64], _d: &mut [f64]| {};
        let mut x = [0.0];
        integrate(&f, 0.0, &mut x, 1.0, 0.0);
    }
}
