//! Fixed-step Runge–Kutta integration for the patient ODE models.
//!
//! The integrator comes in two flavors sharing one arithmetic core (so
//! their trajectories are bit-identical):
//!
//! * [`Rk4Scratch`] — a const-generic, stack-only scratch for states of
//!   statically known dimension (Bergman is 6, Dalla Man 13). No heap
//!   allocation anywhere: the five k/tmp buffers live inline in the
//!   struct. This is what the patient models use in the simulation hot
//!   loop.
//! * [`rk4_step`] / [`integrate`] — the original slice-based API, kept
//!   as thin wrappers for dynamically sized states. `integrate` now
//!   allocates one scratch per *call* instead of five `Vec`s per
//!   *step*, which was the dominant allocation cost of a campaign run.

/// The state stopped being representable: some component became NaN or
/// ±∞ during (or before) an RK4 step.
///
/// Divergence is not a property of the integrator — a fault campaign
/// can legitimately push a model into a regime where the ODE blows up —
/// but letting NaN propagate *silently* is: downstream physiological
/// floors (`f64::max`) absorb NaN into their floor value and the poison
/// becomes an innocuous-looking trajectory. The `try_*` entry points
/// turn that into a typed error at the first non-finite substep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonFiniteState {
    /// Simulation time (minutes) at the start of the offending substep.
    pub at_minutes: f64,
    /// Index of the first non-finite state component.
    pub component: usize,
}

impl std::fmt::Display for NonFiniteState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "non-finite ODE state (component {}) at t = {} min",
            self.component, self.at_minutes
        )
    }
}

impl std::error::Error for NonFiniteState {}

/// Index of the first non-finite component, if any.
#[inline]
fn first_non_finite(x: &[f64]) -> Option<usize> {
    x.iter().position(|v| !v.is_finite())
}

/// Continuous-time dynamics `dx/dt = f(t, x)` over a fixed-size state.
pub trait Dynamics {
    /// Writes the derivative of `x` at time `t` (minutes) into `dxdt`.
    fn derivative(&self, t: f64, x: &[f64], dxdt: &mut [f64]);
}

impl<F> Dynamics for F
where
    F: Fn(f64, &[f64], &mut [f64]),
{
    fn derivative(&self, t: f64, x: &[f64], dxdt: &mut [f64]) {
        self(t, x, dxdt)
    }
}

/// The shared RK4 arithmetic core. Every public entry point funnels
/// through here, which is what guarantees bit-identical results across
/// the fixed-size and slice-based APIs.
#[inline]
#[allow(clippy::too_many_arguments)] // the five scratch buffers are the point
fn rk4_core<D: Dynamics + ?Sized>(
    dyn_: &D,
    t: f64,
    x: &mut [f64],
    dt: f64,
    k1: &mut [f64],
    k2: &mut [f64],
    k3: &mut [f64],
    k4: &mut [f64],
    tmp: &mut [f64],
) {
    let n = x.len();
    dyn_.derivative(t, x, k1);
    for i in 0..n {
        tmp[i] = x[i] + 0.5 * dt * k1[i];
    }
    dyn_.derivative(t + 0.5 * dt, tmp, k2);
    for i in 0..n {
        tmp[i] = x[i] + 0.5 * dt * k2[i];
    }
    dyn_.derivative(t + 0.5 * dt, tmp, k3);
    for i in 0..n {
        tmp[i] = x[i] + dt * k3[i];
    }
    dyn_.derivative(t + dt, tmp, k4);
    for i in 0..n {
        x[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
}

/// Subdivision of `duration` into equal steps no longer than `max_dt`.
#[inline]
fn substeps(duration: f64, max_dt: f64) -> (usize, f64) {
    assert!(max_dt > 0.0, "max_dt must be positive");
    assert!(duration > 0.0, "duration must be positive");
    let steps = (duration / max_dt).ceil() as usize;
    (steps, duration / steps as f64)
}

/// Reusable, allocation-free RK4 scratch for an `N`-dimensional state.
///
/// Construction is trivially cheap (five zeroed stack arrays), so
/// callers may either keep one instance alive across steps or build a
/// fresh one per call — neither touches the heap.
///
/// ```
/// use aps_glucose::ode::Rk4Scratch;
///
/// let mut scratch = Rk4Scratch::<1>::new();
/// let f = |_t: f64, x: &[f64], d: &mut [f64]| d[0] = -0.3 * x[0];
/// let mut x = [1.0];
/// scratch.integrate(&f, 0.0, &mut x, 10.0, 0.1);
/// assert!((x[0] - (-3.0f64).exp()).abs() < 1e-8);
/// ```
#[derive(Debug, Clone)]
pub struct Rk4Scratch<const N: usize> {
    k1: [f64; N],
    k2: [f64; N],
    k3: [f64; N],
    k4: [f64; N],
    tmp: [f64; N],
}

impl<const N: usize> Rk4Scratch<N> {
    /// Fresh scratch (all buffers zeroed; their contents never carry
    /// over between steps).
    pub const fn new() -> Rk4Scratch<N> {
        Rk4Scratch {
            k1: [0.0; N],
            k2: [0.0; N],
            k3: [0.0; N],
            k4: [0.0; N],
            tmp: [0.0; N],
        }
    }

    /// Advances `x` from `t` by `dt` with one classical RK4 step.
    pub fn step<D: Dynamics + ?Sized>(&mut self, dyn_: &D, t: f64, x: &mut [f64; N], dt: f64) {
        rk4_core(
            dyn_,
            t,
            x,
            dt,
            &mut self.k1,
            &mut self.k2,
            &mut self.k3,
            &mut self.k4,
            &mut self.tmp,
        );
    }

    /// Integrates from `t0` over `duration` using steps of at most
    /// `max_dt`, mutating `x` in place.
    ///
    /// # Panics
    ///
    /// Panics if `max_dt` or `duration` is non-positive.
    pub fn integrate<D: Dynamics + ?Sized>(
        &mut self,
        dyn_: &D,
        t0: f64,
        x: &mut [f64; N],
        duration: f64,
        max_dt: f64,
    ) {
        let (steps, dt) = substeps(duration, max_dt);
        let mut t = t0;
        for _ in 0..steps {
            self.step(dyn_, t, x, dt);
            t += dt;
        }
    }

    /// Like [`step`](Rk4Scratch::step), but fails if the state is
    /// non-finite on entry or becomes non-finite during the step.
    ///
    /// Bit-identical to `step` on trajectories that stay finite (the
    /// arithmetic is the same `rk4_core`; only a check is added).
    ///
    /// # Errors
    ///
    /// Returns [`NonFiniteState`] naming the first offending component.
    pub fn try_step<D: Dynamics + ?Sized>(
        &mut self,
        dyn_: &D,
        t: f64,
        x: &mut [f64; N],
        dt: f64,
    ) -> Result<(), NonFiniteState> {
        if let Some(component) = first_non_finite(x) {
            return Err(NonFiniteState {
                at_minutes: t,
                component,
            });
        }
        self.step(dyn_, t, x, dt);
        match first_non_finite(x) {
            Some(component) => Err(NonFiniteState {
                at_minutes: t,
                component,
            }),
            None => Ok(()),
        }
    }

    /// Like [`integrate`](Rk4Scratch::integrate), but stops at the
    /// first substep that produces a non-finite state instead of
    /// churning NaN through the remaining substeps.
    ///
    /// # Errors
    ///
    /// Returns [`NonFiniteState`] for the offending substep; `x` holds
    /// the (poisoned) state as of that substep.
    ///
    /// # Panics
    ///
    /// Panics if `max_dt` or `duration` is non-positive.
    pub fn try_integrate<D: Dynamics + ?Sized>(
        &mut self,
        dyn_: &D,
        t0: f64,
        x: &mut [f64; N],
        duration: f64,
        max_dt: f64,
    ) -> Result<(), NonFiniteState> {
        let (steps, dt) = substeps(duration, max_dt);
        let mut t = t0;
        for _ in 0..steps {
            self.try_step(dyn_, t, x, dt)?;
            t += dt;
        }
        Ok(())
    }
}

impl<const N: usize> Default for Rk4Scratch<N> {
    fn default() -> Rk4Scratch<N> {
        Rk4Scratch::new()
    }
}

/// Heap-backed scratch for dynamically sized states; backs the
/// slice-based compatibility API.
#[derive(Debug, Clone, Default)]
pub struct Rk4ScratchDyn {
    buf: Vec<f64>,
}

impl Rk4ScratchDyn {
    /// Empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Rk4ScratchDyn {
        Rk4ScratchDyn::default()
    }

    /// Advances `x` from `t` by `dt` with one classical RK4 step,
    /// reusing this scratch's buffers (no allocation once warm).
    pub fn step<D: Dynamics + ?Sized>(&mut self, dyn_: &D, t: f64, x: &mut [f64], dt: f64) {
        let n = x.len();
        if self.buf.len() < 5 * n {
            self.buf.resize(5 * n, 0.0);
        }
        let (k1, rest) = self.buf.split_at_mut(n);
        let (k2, rest) = rest.split_at_mut(n);
        let (k3, rest) = rest.split_at_mut(n);
        let (k4, tmp) = rest.split_at_mut(n);
        rk4_core(dyn_, t, x, dt, k1, k2, k3, k4, &mut tmp[..n]);
    }

    /// Integrates from `t0` over `duration` using steps of at most
    /// `max_dt`, mutating `x` in place.
    ///
    /// # Panics
    ///
    /// Panics if `max_dt` or `duration` is non-positive.
    pub fn integrate<D: Dynamics + ?Sized>(
        &mut self,
        dyn_: &D,
        t0: f64,
        x: &mut [f64],
        duration: f64,
        max_dt: f64,
    ) {
        let (steps, dt) = substeps(duration, max_dt);
        let mut t = t0;
        for _ in 0..steps {
            self.step(dyn_, t, x, dt);
            t += dt;
        }
    }

    /// Checked variant of [`step`](Rk4ScratchDyn::step); see
    /// [`Rk4Scratch::try_step`].
    ///
    /// # Errors
    ///
    /// Returns [`NonFiniteState`] naming the first offending component.
    pub fn try_step<D: Dynamics + ?Sized>(
        &mut self,
        dyn_: &D,
        t: f64,
        x: &mut [f64],
        dt: f64,
    ) -> Result<(), NonFiniteState> {
        if let Some(component) = first_non_finite(x) {
            return Err(NonFiniteState {
                at_minutes: t,
                component,
            });
        }
        self.step(dyn_, t, x, dt);
        match first_non_finite(x) {
            Some(component) => Err(NonFiniteState {
                at_minutes: t,
                component,
            }),
            None => Ok(()),
        }
    }

    /// Checked variant of [`integrate`](Rk4ScratchDyn::integrate); see
    /// [`Rk4Scratch::try_integrate`].
    ///
    /// # Errors
    ///
    /// Returns [`NonFiniteState`] for the offending substep.
    ///
    /// # Panics
    ///
    /// Panics if `max_dt` or `duration` is non-positive.
    pub fn try_integrate<D: Dynamics + ?Sized>(
        &mut self,
        dyn_: &D,
        t0: f64,
        x: &mut [f64],
        duration: f64,
        max_dt: f64,
    ) -> Result<(), NonFiniteState> {
        let (steps, dt) = substeps(duration, max_dt);
        let mut t = t0;
        for _ in 0..steps {
            self.try_step(dyn_, t, x, dt)?;
            t += dt;
        }
        Ok(())
    }
}

/// Continuous-time dynamics over a lane-batched structure-of-arrays
/// state: `D` compartments, each a contiguous `[f64; LANES]` row.
///
/// Lanes must stay arithmetically independent — `dxdt[d][l]` may read
/// only lane `l` of `x` (no horizontal reductions across lanes). That
/// is what lets [`BatchedRk4Scratch`] guarantee each lane's operation
/// sequence is identical to the scalar [`Rk4Scratch`] path, so batched
/// trajectories are bit-identical to scalar ones.
pub trait BatchedDynamics<const D: usize, const LANES: usize> {
    /// Writes the per-lane derivative of `x` at time `t` (minutes) into
    /// `dxdt`.
    fn derivative(&self, t: f64, x: &[[f64; LANES]; D], dxdt: &mut [[f64; LANES]; D]);
}

impl<F, const D: usize, const LANES: usize> BatchedDynamics<D, LANES> for F
where
    F: Fn(f64, &[[f64; LANES]; D], &mut [[f64; LANES]; D]),
{
    fn derivative(&self, t: f64, x: &[[f64; LANES]; D], dxdt: &mut [[f64; LANES]; D]) {
        self(t, x, dxdt)
    }
}

/// Allocation-free RK4 scratch advancing `LANES` independent
/// `D`-dimensional states in lockstep through one instruction stream.
///
/// The stage math is written as plain per-lane loops over the flat
/// rows; with lanes independent, the compiler autovectorizes each loop.
/// Per lane the arithmetic is expression-for-expression the same as
/// `rk4_core` (`x + 0.5*dt*k1`, …, `x += dt/6 * (k1 + 2k2 + 2k3 +
/// k4)`), and IEEE-754 `f64` ops are deterministic with no reassociation
/// or FMA contraction at play, so every lane's trajectory is
/// bit-identical to running [`Rk4Scratch`] on that lane alone.
///
/// ```
/// use aps_glucose::ode::{BatchedRk4Scratch, Rk4Scratch};
///
/// // Two decay lanes with different rates, stepped in lockstep.
/// let rates = [0.3, 0.7];
/// let f = move |_t: f64, x: &[[f64; 2]; 1], d: &mut [[f64; 2]; 1]| {
///     for l in 0..2 {
///         d[0][l] = -rates[l] * x[0][l];
///     }
/// };
/// let mut batch = [[1.0, 2.0]];
/// BatchedRk4Scratch::<1, 2>::new().integrate(&f, 0.0, &mut batch, 10.0, 0.1);
/// for l in 0..2 {
///     let g = move |_t: f64, x: &[f64], d: &mut [f64]| d[0] = -rates[l] * x[0];
///     let mut lane = [[1.0, 2.0][l]];
///     Rk4Scratch::<1>::new().integrate(&g, 0.0, &mut lane, 10.0, 0.1);
///     assert_eq!(batch[0][l], lane[0]);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct BatchedRk4Scratch<const D: usize, const LANES: usize> {
    k1: [[f64; LANES]; D],
    k2: [[f64; LANES]; D],
    k3: [[f64; LANES]; D],
    k4: [[f64; LANES]; D],
    tmp: [[f64; LANES]; D],
}

impl<const D: usize, const LANES: usize> BatchedRk4Scratch<D, LANES> {
    /// Fresh scratch (all buffers zeroed; their contents never carry
    /// over between steps).
    pub const fn new() -> BatchedRk4Scratch<D, LANES> {
        BatchedRk4Scratch {
            k1: [[0.0; LANES]; D],
            k2: [[0.0; LANES]; D],
            k3: [[0.0; LANES]; D],
            k4: [[0.0; LANES]; D],
            tmp: [[0.0; LANES]; D],
        }
    }

    /// Advances all lanes of `x` from `t` by `dt` with one classical
    /// RK4 step. Mirrors `rk4_core` stage for stage, with each scalar
    /// combine loop widened into a per-lane loop.
    // Indexed `[d][l]` loops on purpose: the lane index must address
    // the same slot across four arrays per stage, which iterator/zip
    // chains over nested fixed arrays obscure without helping codegen.
    #[allow(clippy::needless_range_loop)]
    pub fn step<B: BatchedDynamics<D, LANES> + ?Sized>(
        &mut self,
        dyn_: &B,
        t: f64,
        x: &mut [[f64; LANES]; D],
        dt: f64,
    ) {
        dyn_.derivative(t, x, &mut self.k1);
        for d in 0..D {
            for l in 0..LANES {
                self.tmp[d][l] = x[d][l] + 0.5 * dt * self.k1[d][l];
            }
        }
        dyn_.derivative(t + 0.5 * dt, &self.tmp, &mut self.k2);
        for d in 0..D {
            for l in 0..LANES {
                self.tmp[d][l] = x[d][l] + 0.5 * dt * self.k2[d][l];
            }
        }
        dyn_.derivative(t + 0.5 * dt, &self.tmp, &mut self.k3);
        for d in 0..D {
            for l in 0..LANES {
                self.tmp[d][l] = x[d][l] + dt * self.k3[d][l];
            }
        }
        dyn_.derivative(t + dt, &self.tmp, &mut self.k4);
        for d in 0..D {
            for l in 0..LANES {
                x[d][l] += dt / 6.0
                    * (self.k1[d][l] + 2.0 * self.k2[d][l] + 2.0 * self.k3[d][l] + self.k4[d][l]);
            }
        }
    }

    /// Integrates all lanes from `t0` over `duration` using steps of at
    /// most `max_dt`, mutating `x` in place. Substep subdivision is the
    /// same `substeps` rule as the scalar integrators, so lane
    /// trajectories stay aligned with [`Rk4Scratch::integrate`].
    ///
    /// Unlike the scalar `try_integrate`, a lane that goes non-finite
    /// keeps free-running: NaN/±∞ persist through every subsequent
    /// substep (IEEE-754 non-finite values are absorbing under the RK4
    /// update `x += delta`), so callers detect divergence with a
    /// per-lane finiteness check after the window — at the same substep
    /// granularity the scalar path reports — without a horizontal
    /// early-exit that would couple lanes.
    ///
    /// # Panics
    ///
    /// Panics if `max_dt` or `duration` is non-positive.
    pub fn integrate<B: BatchedDynamics<D, LANES> + ?Sized>(
        &mut self,
        dyn_: &B,
        t0: f64,
        x: &mut [[f64; LANES]; D],
        duration: f64,
        max_dt: f64,
    ) {
        let (steps, dt) = substeps(duration, max_dt);
        let mut t = t0;
        for _ in 0..steps {
            self.step(dyn_, t, x, dt);
            t += dt;
        }
    }
}

impl<const D: usize, const LANES: usize> Default for BatchedRk4Scratch<D, LANES> {
    fn default() -> BatchedRk4Scratch<D, LANES> {
        BatchedRk4Scratch::new()
    }
}

/// Advances `x` from `t` by `dt` with one classical RK4 step.
///
/// Compatibility wrapper over [`Rk4ScratchDyn`]; hot paths should hold
/// a scratch (or use [`Rk4Scratch`]) instead of paying one allocation
/// per call.
pub fn rk4_step<D: Dynamics + ?Sized>(dyn_: &D, t: f64, x: &mut [f64], dt: f64) {
    Rk4ScratchDyn::new().step(dyn_, t, x, dt);
}

/// Integrates from `t0` over `duration` using steps of at most
/// `max_dt`, mutating `x` in place.
///
/// Allocates one scratch for the whole call (the seed implementation
/// allocated five `Vec`s per step).
///
/// # Panics
///
/// Panics if `max_dt` or `duration` is non-positive.
pub fn integrate<D: Dynamics + ?Sized>(
    dyn_: &D,
    t0: f64,
    x: &mut [f64],
    duration: f64,
    max_dt: f64,
) {
    Rk4ScratchDyn::new().integrate(dyn_, t0, x, duration, max_dt);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_decay_matches_closed_form() {
        // dx/dt = -k x  =>  x(t) = x0 e^{-k t}
        let k = 0.3;
        let f = move |_t: f64, x: &[f64], d: &mut [f64]| d[0] = -k * x[0];
        let mut x = [1.0];
        integrate(&f, 0.0, &mut x, 10.0, 0.1);
        let exact = (-k * 10.0f64).exp();
        assert!((x[0] - exact).abs() < 1e-8, "{} vs {}", x[0], exact);
    }

    #[test]
    fn harmonic_oscillator_energy_preserved() {
        // x'' = -x as a 2-state system; RK4 should conserve energy well.
        let f = |_t: f64, x: &[f64], d: &mut [f64]| {
            d[0] = x[1];
            d[1] = -x[0];
        };
        let mut x = [1.0, 0.0];
        integrate(&f, 0.0, &mut x, 2.0 * std::f64::consts::PI, 0.01);
        assert!((x[0] - 1.0).abs() < 1e-6);
        assert!(x[1].abs() < 1e-6);
    }

    #[test]
    fn time_dependent_rhs() {
        // dx/dt = t  =>  x(T) = T^2 / 2
        let f = |t: f64, _x: &[f64], d: &mut [f64]| d[0] = t;
        let mut x = [0.0];
        integrate(&f, 0.0, &mut x, 4.0, 0.5);
        assert!((x[0] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn uneven_duration_is_subdivided() {
        let f = |_t: f64, x: &[f64], d: &mut [f64]| d[0] = -x[0];
        let mut x = [1.0];
        // 5 minutes with max_dt 0.4 -> 13 steps of 5/13.
        integrate(&f, 0.0, &mut x, 5.0, 0.4);
        assert!((x[0] - (-5.0f64).exp()).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "max_dt")]
    fn zero_dt_panics() {
        let f = |_t: f64, _x: &[f64], _d: &mut [f64]| {};
        let mut x = [0.0];
        integrate(&f, 0.0, &mut x, 1.0, 0.0);
    }

    /// The seed implementation (five `Vec` allocations per step),
    /// retained verbatim as the bit-exactness oracle.
    fn seed_rk4_step<D: Dynamics + ?Sized>(dyn_: &D, t: f64, x: &mut [f64], dt: f64) {
        let n = x.len();
        let mut k1 = vec![0.0; n];
        let mut k2 = vec![0.0; n];
        let mut k3 = vec![0.0; n];
        let mut k4 = vec![0.0; n];
        let mut tmp = vec![0.0; n];
        dyn_.derivative(t, x, &mut k1);
        for i in 0..n {
            tmp[i] = x[i] + 0.5 * dt * k1[i];
        }
        dyn_.derivative(t + 0.5 * dt, &tmp, &mut k2);
        for i in 0..n {
            tmp[i] = x[i] + 0.5 * dt * k2[i];
        }
        dyn_.derivative(t + 0.5 * dt, &tmp, &mut k3);
        for i in 0..n {
            tmp[i] = x[i] + dt * k3[i];
        }
        dyn_.derivative(t + dt, &tmp, &mut k4);
        for i in 0..n {
            x[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }

    #[test]
    fn scratch_paths_are_bit_identical_to_seed() {
        // A stiff-ish nonlinear 3-state system with time dependence,
        // integrated over many uneven windows with a single reused
        // scratch. Every representation must match the seed's output
        // exactly (same arithmetic, same order).
        let f = |t: f64, x: &[f64], d: &mut [f64]| {
            d[0] = -0.07 * x[0] + 2.0 * (0.1 * x[1] * x[2]).tanh() + 0.01 * t;
            d[1] = 0.03 * x[0] - 0.2 * x[1];
            d[2] = (x[0] - x[2]) / 7.0;
        };
        let mut seed_x = [120.0, 3.0, 0.5];
        let mut fixed_x = seed_x;
        let mut dyn_x = seed_x.to_vec();
        let mut fixed = Rk4Scratch::<3>::new();
        let mut dynamic = Rk4ScratchDyn::new();
        let mut t = 0.0;
        for window in [5.0, 3.3, 7.1, 0.4, 12.0] {
            let t0 = t;
            let (steps, dt) = substeps(window, 1.0);
            for _ in 0..steps {
                seed_rk4_step(&f, t, &mut seed_x, dt);
                t += dt;
            }
            fixed.integrate(&f, t0, &mut fixed_x, window, 1.0);
            dynamic.integrate(&f, t0, &mut dyn_x, window, 1.0);
            assert_eq!(seed_x.to_vec(), fixed_x.to_vec(), "fixed scratch diverged");
            assert_eq!(seed_x.to_vec(), dyn_x, "dyn scratch diverged");
        }
    }

    #[test]
    fn try_integrate_matches_integrate_on_finite_trajectories() {
        let f = |t: f64, x: &[f64], d: &mut [f64]| {
            d[0] = -0.07 * x[0] + 2.0 * (0.1 * x[1]).tanh() + 0.01 * t;
            d[1] = 0.03 * x[0] - 0.2 * x[1];
        };
        let mut plain = [120.0, 3.0];
        let mut checked = plain;
        let mut a = Rk4Scratch::<2>::new();
        let mut b = Rk4Scratch::<2>::new();
        a.integrate(&f, 0.0, &mut plain, 17.0, 1.0);
        b.try_integrate(&f, 0.0, &mut checked, 17.0, 1.0)
            .expect("finite trajectory");
        assert_eq!(plain, checked);
    }

    #[test]
    fn try_step_rejects_non_finite_input() {
        let f = |_t: f64, x: &[f64], d: &mut [f64]| d[0] = -x[0];
        let mut x = [f64::NAN];
        let err = Rk4Scratch::<1>::new()
            .try_step(&f, 3.0, &mut x, 1.0)
            .unwrap_err();
        assert_eq!(err.component, 0);
        assert_eq!(err.at_minutes, 3.0);
    }

    #[test]
    fn try_integrate_catches_blowup_mid_window() {
        // Super-exponential growth: x' = x^2 diverges in finite time
        // from x(0) = 1 (pole at t = 1); the fixed-step integrator
        // overflows to inf shortly after.
        let f = |_t: f64, x: &[f64], d: &mut [f64]| d[0] = x[0] * x[0];
        let mut x = [1.0];
        let err = Rk4Scratch::<1>::new()
            .try_integrate(&f, 0.0, &mut x, 500.0, 1.0)
            .unwrap_err();
        assert_eq!(err.component, 0);
        assert!(err.at_minutes < 500.0);
        // The dyn scratch reports the identical failure point.
        let mut y = vec![1.0];
        let err_dyn = Rk4ScratchDyn::new()
            .try_integrate(&f, 0.0, &mut y, 500.0, 1.0)
            .unwrap_err();
        assert_eq!(err, err_dyn);
    }

    #[test]
    fn non_finite_display_names_component_and_time() {
        let e = NonFiniteState {
            at_minutes: 35.0,
            component: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("component 4") && msg.contains("35"), "{msg}");
    }

    #[test]
    fn batched_lanes_are_bit_identical_to_scalar() {
        // Four lanes with different parameters through a nonlinear
        // 3-compartment system over uneven windows: every lane must
        // reproduce the scalar scratch's trajectory exactly.
        const D: usize = 3;
        const LANES: usize = 4;
        let gains = [0.07, 0.11, 0.05, 0.2];
        let batched = move |t: f64, x: &[[f64; LANES]; D], d: &mut [[f64; LANES]; D]| {
            for l in 0..LANES {
                d[0][l] = -gains[l] * x[0][l] + 2.0 * (0.1 * x[1][l] * x[2][l]).tanh() + 0.01 * t;
                d[1][l] = 0.03 * x[0][l] - 0.2 * x[1][l];
                d[2][l] = (x[0][l] - x[2][l]) / 7.0;
            }
        };
        let mut batch = [[120.0, 90.0, 150.0, 200.0], [3.0; LANES], [0.5; LANES]];
        let mut scratch = BatchedRk4Scratch::<D, LANES>::new();
        let mut scalar_lanes: Vec<[f64; D]> = (0..LANES)
            .map(|l| [batch[0][l], batch[1][l], batch[2][l]])
            .collect();
        let mut t = 0.0;
        for window in [5.0, 3.3, 7.1, 0.4, 12.0] {
            scratch.integrate(&batched, t, &mut batch, window, 1.0);
            for (l, lane) in scalar_lanes.iter_mut().enumerate() {
                let g = gains[l];
                let f = move |t: f64, x: &[f64], d: &mut [f64]| {
                    d[0] = -g * x[0] + 2.0 * (0.1 * x[1] * x[2]).tanh() + 0.01 * t;
                    d[1] = 0.03 * x[0] - 0.2 * x[1];
                    d[2] = (x[0] - x[2]) / 7.0;
                };
                Rk4Scratch::<D>::new().integrate(&f, t, lane, window, 1.0);
                for d in 0..D {
                    assert_eq!(batch[d][l], lane[d], "lane {l} component {d} diverged");
                }
            }
            t += window;
        }
    }

    #[test]
    fn non_finite_lane_does_not_poison_lane_mates() {
        // Lane 1 blows up (x' = x^2 from 1.0 diverges in finite time);
        // lanes 0 and 2 must still match their scalar trajectories
        // bit-for-bit, and lane 1's divergence must be detectable by a
        // plain finiteness check after the window.
        const LANES: usize = 3;
        let batched = |_t: f64, x: &[[f64; LANES]; 1], d: &mut [[f64; LANES]; 1]| {
            for l in 0..LANES {
                d[0][l] = if l == 1 {
                    x[0][l] * x[0][l]
                } else {
                    -0.3 * x[0][l]
                };
            }
        };
        let mut batch = [[1.0, 1.0, 2.0]];
        BatchedRk4Scratch::<1, LANES>::new().integrate(&batched, 0.0, &mut batch, 500.0, 1.0);
        assert!(!batch[0][1].is_finite(), "lane 1 should have diverged");
        for (l, x0) in [(0usize, 1.0f64), (2, 2.0)] {
            let f = |_t: f64, x: &[f64], d: &mut [f64]| d[0] = -0.3 * x[0];
            let mut lane = [x0];
            Rk4Scratch::<1>::new().integrate(&f, 0.0, &mut lane, 500.0, 1.0);
            assert_eq!(batch[0][l], lane[0], "healthy lane {l} was poisoned");
        }
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        let f = |_t: f64, x: &[f64], d: &mut [f64]| {
            d[0] = -x[1];
            d[1] = x[0];
        };
        let mut reused = Rk4Scratch::<2>::new();
        let mut a = [1.0, 0.0];
        let mut b = [1.0, 0.0];
        for i in 0..50 {
            let t = i as f64 * 0.25;
            reused.step(&f, t, &mut a, 0.25);
            Rk4Scratch::<2>::new().step(&f, t, &mut b, 0.25);
        }
        assert_eq!(a, b);
    }
}
