//! Insulin pump actuation model.
//!
//! Commands leave the controller as continuous U/h rates; a physical
//! pump clamps them to its hardware range and quantizes to its basal
//! step resolution (0.05 U/h on common devices).

use aps_types::UnitsPerHour;
use serde::{Deserialize, Serialize};

/// Pump hardware characteristics.
///
/// `Copy`: two scalars, copied per run rather than cloned.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PumpConfig {
    /// Maximum deliverable rate (U/h).
    pub max_rate: f64,
    /// Basal rate resolution (U/h); 0 disables quantization.
    pub step: f64,
}

impl Default for PumpConfig {
    fn default() -> PumpConfig {
        PumpConfig {
            max_rate: 10.0,
            step: 0.05,
        }
    }
}

/// An insulin pump executing rate commands.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Pump {
    config: PumpConfig,
    total_delivered: f64,
}

impl Pump {
    /// Creates a pump from configuration.
    pub fn new(config: PumpConfig) -> Pump {
        Pump {
            config,
            total_delivered: 0.0,
        }
    }

    /// Clamps and quantizes a commanded rate to what the hardware will
    /// actually deliver.
    pub fn actuate(&self, commanded: UnitsPerHour) -> UnitsPerHour {
        let mut v = commanded.value().clamp(0.0, self.config.max_rate);
        if self.config.step > 0.0 {
            v = (v / self.config.step).round() * self.config.step;
            // Rounding can push past the clamp ceiling by one step.
            v = v.min(self.config.max_rate);
        }
        UnitsPerHour(v)
    }

    /// Actuates and records delivery over `minutes` of the cycle.
    pub fn deliver(&mut self, commanded: UnitsPerHour, minutes: f64) -> UnitsPerHour {
        let actual = self.actuate(commanded);
        self.total_delivered += actual.over_minutes(minutes).value();
        actual
    }

    /// Total insulin delivered so far (U).
    pub fn total_delivered(&self) -> f64 {
        self.total_delivered
    }

    /// The pump's configuration.
    pub fn config(&self) -> &PumpConfig {
        &self.config
    }
}

/// A lane bank of `LANES` independent pumps, actuated with one
/// per-lane loop per control cycle by the batched campaign engine.
///
/// Each lane owns a full scalar [`Pump`], so clamping, quantization,
/// and the delivered-insulin accumulator are bit-identical to the pump
/// of a standalone run.
#[derive(Debug, Clone)]
pub struct PumpBank<const LANES: usize> {
    lanes: [Pump; LANES],
}

impl<const LANES: usize> PumpBank<LANES> {
    /// One pump per lane, each constructed from the same config a
    /// scalar run would use.
    pub fn new(config: PumpConfig) -> PumpBank<LANES> {
        PumpBank {
            lanes: std::array::from_fn(|_| Pump::new(config)),
        }
    }

    /// Actuates every lane's command and records its delivery over
    /// `minutes`, returning the per-lane delivered rates.
    pub fn deliver_all(
        &mut self,
        commanded: &[UnitsPerHour; LANES],
        minutes: f64,
    ) -> [UnitsPerHour; LANES] {
        std::array::from_fn(|l| self.lanes[l].deliver(commanded[l], minutes))
    }

    /// One lane's pump (e.g. for its delivery accumulator).
    pub fn lane(&self, lane: usize) -> &Pump {
        &self.lanes[lane]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_to_hardware_range() {
        let pump = Pump::default();
        assert_eq!(pump.actuate(UnitsPerHour(-2.0)), UnitsPerHour(0.0));
        assert_eq!(pump.actuate(UnitsPerHour(99.0)), UnitsPerHour(10.0));
    }

    #[test]
    fn quantizes_to_step() {
        let pump = Pump::default();
        assert_eq!(pump.actuate(UnitsPerHour(1.02)), UnitsPerHour(1.0));
        assert_eq!(pump.actuate(UnitsPerHour(1.03)), UnitsPerHour(1.05));
    }

    #[test]
    fn actuation_is_idempotent() {
        let pump = Pump::default();
        let once = pump.actuate(UnitsPerHour(1.337));
        let twice = pump.actuate(once);
        assert_eq!(once, twice);
    }

    #[test]
    fn delivery_accumulates() {
        let mut pump = Pump::default();
        pump.deliver(UnitsPerHour(2.0), 30.0);
        pump.deliver(UnitsPerHour(2.0), 30.0);
        assert!((pump.total_delivered() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_step_disables_quantization() {
        let pump = Pump::new(PumpConfig {
            max_rate: 10.0,
            step: 0.0,
        });
        assert_eq!(pump.actuate(UnitsPerHour(1.337)), UnitsPerHour(1.337));
    }
}
