//! Patient glucose simulators for closed-loop APS evaluation.
//!
//! The paper evaluates on two simulation platforms:
//!
//! * **Glucosym** — patient models identified from 10 real adults with
//!   Type-1 diabetes, implementing the Kanderian *glucose–insulin
//!   metabolism* (GIM) / Bergman minimal-model equations. Reproduced by
//!   [`bergman::BergmanPatient`].
//! * **UVA-Padova T1DS2013** — the FDA-accepted simulator built on the
//!   Dalla Man meal-simulation model. Reproduced in simplified form by
//!   [`dalla_man::DallaManPatient`].
//!
//! Both implement the common [`PatientSim`] trait, are integrated with
//! the fixed-step RK4 integrator in [`ode`], and come with deterministic
//! cohorts of ten virtual patients each ([`patients`]). CGM sampling and
//! pump actuation models live in [`sensor`] and [`pump`].
//!
//! # Example
//!
//! ```
//! use aps_glucose::{patients, PatientSim};
//! use aps_types::{MgDl, UnitsPerHour};
//!
//! let mut patient = patients::glucosym_cohort().remove(0);
//! patient.reset(MgDl(140.0));
//! let basal = patient.equilibrium_basal(MgDl(120.0));
//! for _ in 0..12 {
//!     patient.step(basal, 5.0); // one hour of closed-loop time
//! }
//! assert!(patient.bg().value() > 60.0 && patient.bg().value() < 250.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bergman;
pub mod dalla_man;
pub mod iob;
pub mod ode;
pub mod patients;
pub mod pump;
pub mod sensor;
pub mod sensor_error;

use aps_types::{MgDl, UnitsPerHour};

/// A virtual Type-1 diabetes patient that the closed loop can drive.
///
/// One `step` advances physiological time by `minutes` under a constant
/// insulin infusion rate; the APS control loop calls it once per
/// 5-minute control cycle.
pub trait PatientSim: Send {
    /// Patient identifier (e.g. `"glucosym/patientA"`).
    fn name(&self) -> &str;

    /// Current blood glucose as observable by a CGM.
    fn bg(&self) -> MgDl;

    /// Advances the model by `minutes` with insulin infused at `rate`.
    fn step(&mut self, rate: UnitsPerHour, minutes: f64);

    /// Re-initializes the model at the given starting glucose, with
    /// insulin pools at their basal steady state.
    fn reset(&mut self, bg0: MgDl);

    /// Adds a meal of `carbs_g` grams of carbohydrate to the gut
    /// absorption model (no-op for models without a meal subsystem).
    fn ingest(&mut self, carbs_g: f64);

    /// Starts an exercise bout: for the next `duration_min` minutes,
    /// insulin-independent glucose uptake is elevated in proportion to
    /// `intensity` (0 = rest, 1 = brisk aerobic exercise). Overlapping
    /// bouts replace any bout in progress. No-op for models without an
    /// exercise subsystem.
    fn exert(&mut self, intensity: f64, duration_min: f64) {
        let _ = (intensity, duration_min);
    }

    /// The constant infusion rate that holds the patient at `target`
    /// in steady state (found numerically; used to initialize
    /// controllers and to parameterize the paper's MPC baseline).
    fn equilibrium_basal(&self, target: MgDl) -> UnitsPerHour;

    /// Whether every internal state component is finite.
    ///
    /// Checking `bg()` alone is not enough: physiological floors and
    /// clamps are `f64::max`-style, and `f64::max(NaN, floor)` returns
    /// the floor — a diverged model can report a plausible glucose
    /// while the rest of its state is poisoned. The simulation harness
    /// calls this after every step and converts `false` into a typed
    /// error instead of silently continuing. Models that cannot
    /// diverge (pure table lookups, mocks) may keep the default.
    fn state_is_finite(&self) -> bool {
        true
    }
}

/// Boxed patient, the form the simulation harness passes around.
pub type BoxedPatient = Box<dyn PatientSim>;

/// A lane-batched cohort of `LANES` virtual patients of one model,
/// advanced in lockstep through a single instruction stream.
///
/// Implementations keep state as structure-of-arrays (`[f64; LANES]`
/// per compartment) and step all lanes with one
/// [`ode::BatchedRk4Scratch`] pass. Lanes are arithmetically
/// independent — no horizontal reductions — so each lane's trajectory
/// is bit-identical to stepping the corresponding scalar [`PatientSim`]
/// alone. Per-lane mutators (`ingest`, `exert`) mirror the scalar trait
/// so the closed-loop harness can drive individual lanes between
/// lockstep physics steps.
///
/// A lane that diverges (NaN/±∞) keeps free-running — non-finite values
/// are absorbing under the RK4 update, so divergence is detected with
/// [`lane_is_finite`](BatchedPatientSim::lane_is_finite) after each
/// step without coupling lanes.
pub trait BatchedPatientSim<const LANES: usize>: Send {
    /// Current blood glucose of one lane, as observable by a CGM.
    fn bg(&self, lane: usize) -> MgDl;

    /// Advances every lane by `minutes`, lane `l` infusing at
    /// `rates[l]`.
    fn step_all(&mut self, rates: &[UnitsPerHour; LANES], minutes: f64);

    /// Adds a meal to one lane's gut absorption model.
    fn ingest(&mut self, lane: usize, carbs_g: f64);

    /// Starts an exercise bout on one lane (see [`PatientSim::exert`]).
    fn exert(&mut self, lane: usize, intensity: f64, duration_min: f64);

    /// Whether every state component of one lane is finite (see
    /// [`PatientSim::state_is_finite`] for why `bg` alone is not
    /// enough).
    fn lane_is_finite(&self, lane: usize) -> bool;
}
