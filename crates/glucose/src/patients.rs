//! Deterministic virtual-patient cohorts.
//!
//! The paper evaluates on 10 Glucosym patients (models identified from
//! real adults, aged 42.5 ± 11.5) and 10 UVA-Padova virtual patients.
//! Both cohorts are proprietary, so we generate synthetic cohorts by
//! sampling each model's parameters around its published population
//! average with the inter-patient spread reported in the identification
//! literature (±30–50% on sensitivity-related parameters). Generation
//! is seeded and deterministic: `patientA..patientJ` are the same
//! virtual people in every build, which keeps experiments reproducible
//! and lets Table VIII refer to named patients.

use crate::bergman::{BergmanParams, BergmanPatient};
use crate::dalla_man::{DallaManParams, DallaManPatient};
use crate::{BoxedPatient, PatientSim};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Number of patients in each cohort (matches the paper).
pub const COHORT_SIZE: usize = 10;

/// Letters used to name cohort members (`patientA` … `patientJ`).
pub const PATIENT_LETTERS: [char; COHORT_SIZE] = ['A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J'];

fn vary(rng: &mut ChaCha8Rng, base: f64, rel_spread: f64) -> f64 {
    let factor = 1.0 + rng.gen_range(-rel_spread..rel_spread);
    base * factor
}

/// The ten Glucosym-style Bergman/GIM parameter sets.
pub fn glucosym_params() -> Vec<BergmanParams> {
    let mut rng = ChaCha8Rng::seed_from_u64(0x61_70_73_2d_67_6c_75_63); // "aps-gluc"
    PATIENT_LETTERS
        .iter()
        .map(|letter| {
            let base = BergmanParams::population_average();
            BergmanParams {
                name: format!("glucosym/patient{letter}"),
                gezi: vary(&mut rng, base.gezi, 0.45),
                egp: vary(&mut rng, base.egp, 0.25),
                si: vary(&mut rng, base.si, 0.50),
                p2: vary(&mut rng, base.p2, 0.35),
                tau1: vary(&mut rng, base.tau1, 0.30),
                tau2: vary(&mut rng, base.tau2, 0.30),
                ci: vary(&mut rng, base.ci, 0.25),
                carb_gain: vary(&mut rng, base.carb_gain, 0.20),
                tau_meal: vary(&mut rng, base.tau_meal, 0.20),
            }
        })
        .collect()
}

/// The ten UVA-Padova-style Dalla Man parameter sets.
pub fn t1ds_params() -> Vec<DallaManParams> {
    let mut rng = ChaCha8Rng::seed_from_u64(0x74_31_64_73_32_30_31_33); // "t1ds2013"
    PATIENT_LETTERS
        .iter()
        .map(|letter| {
            let base = DallaManParams::average_adult();
            DallaManParams {
                name: format!("t1ds/patient{letter}"),
                bw: vary(&mut rng, base.bw, 0.25),
                vg: vary(&mut rng, base.vg, 0.15),
                kp1: vary(&mut rng, base.kp1, 0.15),
                kp3: vary(&mut rng, base.kp3, 0.40),
                vm0: vary(&mut rng, base.vm0, 0.25),
                vmx: vary(&mut rng, base.vmx, 0.45),
                p2u: vary(&mut rng, base.p2u, 0.30),
                kd: vary(&mut rng, base.kd, 0.20),
                kabs: vary(&mut rng, base.kabs, 0.25),
                ..base
            }
        })
        .collect()
}

/// The Glucosym cohort as boxed [`PatientSim`]s.
pub fn glucosym_cohort() -> Vec<BoxedPatient> {
    glucosym_params()
        .into_iter()
        .map(|p| Box::new(BergmanPatient::new(p)) as BoxedPatient)
        .collect()
}

/// The UVA-Padova-style cohort as boxed patients.
pub fn t1ds_cohort() -> Vec<BoxedPatient> {
    t1ds_params()
        .into_iter()
        .map(|p| Box::new(DallaManPatient::new(p)) as BoxedPatient)
        .collect()
}

/// A concretely typed cohort member.
///
/// `dyn PatientSim` deliberately erases the model, but the batched
/// lockstep engine needs the concrete type to load a patient into the
/// matching structure-of-arrays bank
/// ([`BatchedBergman`](crate::bergman::BatchedBergman) /
/// [`BatchedDallaMan`](crate::dalla_man::BatchedDallaMan)). This enum is
/// the non-erased form of the same cohort members.
// Not boxing the larger variant: a campaign materializes one of these
// per job and steps it in place; the size skew is a few hundred stack
// bytes, while a Box would put a pointer-chase in the scalar hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum CohortPatient {
    /// A Glucosym-style Bergman/GIM patient.
    Bergman(BergmanPatient),
    /// A UVA-Padova-style Dalla Man patient.
    DallaMan(DallaManPatient),
}

impl CohortPatient {
    /// The patient as the erased trait object the scalar harness uses.
    pub fn as_dyn(&self) -> &dyn PatientSim {
        match self {
            CohortPatient::Bergman(p) => p,
            CohortPatient::DallaMan(p) => p,
        }
    }

    /// Mutable erased form (reset, scalar stepping).
    pub fn as_dyn_mut(&mut self) -> &mut dyn PatientSim {
        match self {
            CohortPatient::Bergman(p) => p,
            CohortPatient::DallaMan(p) => p,
        }
    }
}

/// [`glucosym_cohort`] without type erasure.
pub fn glucosym_cohort_concrete() -> Vec<CohortPatient> {
    glucosym_params()
        .into_iter()
        .map(|p| CohortPatient::Bergman(BergmanPatient::new(p)))
        .collect()
}

/// [`t1ds_cohort`] without type erasure.
pub fn t1ds_cohort_concrete() -> Vec<CohortPatient> {
    t1ds_params()
        .into_iter()
        .map(|p| CohortPatient::DallaMan(DallaManPatient::new(p)))
        .collect()
}

/// Looks up a patient by qualified name (e.g. `"glucosym/patientC"`).
pub fn by_name(name: &str) -> Option<BoxedPatient> {
    if let Some(p) = glucosym_params().into_iter().find(|p| p.name == name) {
        return Some(Box::new(BergmanPatient::new(p)));
    }
    if let Some(p) = t1ds_params().into_iter().find(|p| p.name == name) {
        return Some(Box::new(DallaManPatient::new(p)));
    }
    None
}

/// The paper's seven initial glucose values (80–200 mg/dL).
pub fn initial_bg_values() -> [f64; 7] {
    [80.0, 100.0, 120.0, 140.0, 160.0, 180.0, 200.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_types::MgDl;

    #[test]
    fn cohorts_have_ten_distinct_patients() {
        let g = glucosym_params();
        assert_eq!(g.len(), COHORT_SIZE);
        let names: std::collections::HashSet<_> = g.iter().map(|p| p.name.clone()).collect();
        assert_eq!(names.len(), COHORT_SIZE);
        // Parameters actually vary between patients.
        assert!(g.iter().any(|p| (p.si - g[0].si).abs() > 1e-6));

        let t = t1ds_params();
        assert_eq!(t.len(), COHORT_SIZE);
        assert!(t.iter().any(|p| (p.vmx - t[0].vmx).abs() > 1e-6));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(glucosym_params(), glucosym_params());
        assert_eq!(t1ds_params(), t1ds_params());
    }

    #[test]
    fn by_name_finds_both_cohorts() {
        assert!(by_name("glucosym/patientA").is_some());
        assert!(by_name("t1ds/patientJ").is_some());
        assert!(by_name("nope/patientZ").is_none());
    }

    #[test]
    fn all_patients_hold_rough_equilibrium() {
        for mut p in glucosym_cohort().into_iter().chain(t1ds_cohort()) {
            p.reset(MgDl(120.0));
            let basal = p.equilibrium_basal(MgDl(120.0));
            for _ in 0..72 {
                p.step(basal, 5.0);
            }
            let bg = p.bg().value();
            assert!(
                (60.0..=220.0).contains(&bg),
                "{} ran away to {bg} mg/dL under its own basal",
                p.name()
            );
        }
    }

    #[test]
    fn initial_bg_grid_matches_paper_range() {
        let grid = initial_bg_values();
        assert_eq!(grid.len(), 7);
        assert_eq!(grid[0], 80.0);
        assert_eq!(grid[6], 200.0);
    }
}
