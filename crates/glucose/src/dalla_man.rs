//! Simplified Dalla Man meal-simulation model — the UVA-Padova
//! T1DS2013 substitute.
//!
//! The UVA-Padova simulator is proprietary; its published core is the
//! Dalla Man glucose–insulin model (two glucose compartments, hepatic
//! production with delayed insulin signal, insulin-dependent
//! utilization, two-compartment subcutaneous insulin kinetics, a gut
//! absorption chain, and an interstitial CGM delay). We implement that
//! published equation set with the standard adult parameter averages;
//! the glucagon subsystem of S2013 is omitted (the paper's scenarios
//! never trigger glucagon counter-regulation — no rescue dosing is
//! modelled).
//!
//! Units: glucose masses `Gp, Gt` in mg/kg; plasma/liver insulin
//! `Ip, Il` in pmol/kg; concentrations `I, I1, Id, Ib` in pmol/L;
//! infusion in pmol/kg/min (1 U/h = 100 pmol/min spread over `BW` kg).

use crate::ode::{BatchedRk4Scratch, Rk4Scratch};
use crate::{BatchedPatientSim, PatientSim};
use aps_types::{MgDl, UnitsPerHour};
use serde::{Deserialize, Serialize};

/// Parameters of one virtual Dalla Man adult.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DallaManParams {
    /// Patient identifier.
    pub name: String,
    /// Body weight (kg).
    pub bw: f64,
    /// Glucose distribution volume (dL/kg).
    pub vg: f64,
    /// Glucose compartment exchange rates (1/min).
    pub k1: f64,
    /// Reverse exchange rate (1/min).
    pub k2: f64,
    /// EGP at zero glucose and insulin (mg/kg/min).
    pub kp1: f64,
    /// EGP glucose sensitivity (1/min).
    pub kp2: f64,
    /// EGP insulin sensitivity (mg/kg/min per pmol/L).
    pub kp3: f64,
    /// Delayed insulin-signal rate (1/min).
    pub ki: f64,
    /// Insulin-independent utilization (mg/kg/min).
    pub fsnc: f64,
    /// Basal insulin-dependent utilization V_m0 (mg/kg/min).
    pub vm0: f64,
    /// Insulin sensitivity of utilization V_mx (mg/kg/min per pmol/L).
    pub vmx: f64,
    /// Michaelis constant K_m0 (mg/kg).
    pub km0: f64,
    /// Remote-insulin action rate p2U (1/min).
    pub p2u: f64,
    /// Renal extraction rate ke1 (1/min).
    pub ke1: f64,
    /// Renal threshold ke2 (mg/kg).
    pub ke2: f64,
    /// SC insulin: kd, ka1, ka2 (1/min).
    pub kd: f64,
    /// SC-to-plasma absorption (first pathway, 1/min).
    pub ka1: f64,
    /// SC-to-plasma absorption (second pathway, 1/min).
    pub ka2: f64,
    /// Insulin kinetics m1, m2, m3, m4 (1/min).
    pub m1: f64,
    /// Liver-bound transfer rate (1/min).
    pub m2: f64,
    /// Degradation rate (1/min).
    pub m3: f64,
    /// Peripheral degradation rate (1/min).
    pub m4: f64,
    /// Insulin distribution volume (L/kg).
    pub vi: f64,
    /// Gastric emptying rate (1/min; constant simplification of the
    /// nonlinear kempt(Qsto) of the full model).
    pub kempt: f64,
    /// Intestinal absorption rate (1/min).
    pub kabs: f64,
    /// Fraction of carbs reaching circulation.
    pub f: f64,
    /// CGM interstitial delay time constant (min).
    pub tau_cgm: f64,
}

impl DallaManParams {
    /// The published average adult of the Dalla Man model.
    ///
    /// `kp1` is set to 3.18 (rather than the oft-quoted 2.70) so the
    /// simplified model satisfies the simulator's basal consistency
    /// constraints: basal plasma insulin ≈ 70 pmol/L at 120 mg/dL
    /// (≈ 1.3 U/h) and a zero-insulin equilibrium near 200 mg/dL —
    /// without which insulin suspension could never produce the H2
    /// hazards the paper's campaigns rely on.
    pub fn average_adult() -> DallaManParams {
        DallaManParams {
            name: "t1ds/average".to_owned(),
            bw: 78.0,
            vg: 1.88,
            k1: 0.065,
            k2: 0.079,
            kp1: 3.18,
            kp2: 0.0021,
            kp3: 0.009,
            ki: 0.0079,
            fsnc: 1.0,
            vm0: 2.50,
            vmx: 0.047,
            km0: 225.59,
            p2u: 0.0331,
            ke1: 0.0005,
            ke2: 339.0,
            kd: 0.0164,
            ka1: 0.0018,
            ka2: 0.0182,
            m1: 0.190,
            m2: 0.484,
            m3: 0.285,
            m4: 0.194,
            vi: 0.05,
            kempt: 0.035,
            kabs: 0.057,
            f: 0.90,
            tau_cgm: 10.0,
        }
    }

    /// Plasma-insulin steady state (pmol/L) under infusion `iir`
    /// (pmol/kg/min); the SC chain passes through in steady state.
    pub fn plasma_insulin_ss(&self, iir: f64) -> f64 {
        let factor = (self.m2 + self.m4) - self.m1 * self.m2 / (self.m1 + self.m3);
        let ip = iir / factor; // pmol/kg
        ip / self.vi // pmol/L
    }

    /// Inverse of [`plasma_insulin_ss`](Self::plasma_insulin_ss).
    fn iir_for_plasma(&self, i_conc: f64) -> f64 {
        let factor = (self.m2 + self.m4) - self.m1 * self.m2 / (self.m1 + self.m3);
        i_conc * self.vi * factor
    }

    /// Solves the tissue-glucose steady state `Gt` for a given `Gp`
    /// (bisection on the monotone balance `Uid(Gt) + k2·Gt = k1·Gp`).
    fn gt_steady_state(&self, gp: f64) -> f64 {
        let target = self.k1 * gp;
        let balance = |gt: f64| self.vm0 * gt / (self.km0 + gt) + self.k2 * gt;
        let (mut lo, mut hi) = (0.0, gp.max(1.0) * 2.0 + 1000.0);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if balance(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Basal plasma-insulin concentration `Ib` (pmol/L) that holds the
    /// patient at `target` glucose in steady state (clamped at zero).
    fn basal_insulin_for(&self, target: MgDl) -> f64 {
        let gp = target.value() * self.vg;
        let gt = self.gt_steady_state(gp);
        let e = if gp > self.ke2 {
            self.ke1 * (gp - self.ke2)
        } else {
            0.0
        };
        // 0 = kp1 - kp2*Gp - kp3*Ib - Fsnc - E - k1*Gp + k2*Gt
        let ib =
            (self.kp1 - self.kp2 * gp - self.fsnc - e - self.k1 * gp + self.k2 * gt) / self.kp3;
        ib.max(0.0)
    }

    /// Closed-form equilibrium basal rate for a steady-state target.
    pub fn equilibrium_basal(&self, target: MgDl) -> UnitsPerHour {
        let ib = self.basal_insulin_for(target);
        let iir = self.iir_for_plasma(ib); // pmol/kg/min
        UnitsPerHour(iir * self.bw * 60.0 / 6000.0)
    }
}

// State vector layout.
const GP: usize = 0;
const GT: usize = 1;
const IP: usize = 2;
const IL: usize = 3;
const I1: usize = 4;
const ID: usize = 5;
const X: usize = 6;
const ISC1: usize = 7;
const ISC2: usize = 8;
const QSTO1: usize = 9;
const QSTO2: usize = 10;
const QGUT: usize = 11;
const GS: usize = 12;
const NSTATE: usize = 13;

/// A simulated Dalla Man adult patient.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DallaManPatient {
    params: DallaManParams,
    /// Basal plasma insulin the remote compartment is referenced to.
    ib: f64,
    state: [f64; NSTATE],
    t_minutes: f64,
    #[serde(default)]
    exercise_minutes_left: f64,
    #[serde(default)]
    exercise_intensity: f64,
}

/// Multiplier applied to peripheral glucose utilization per unit of
/// exercise intensity (see
/// [`bergman::EXERCISE_GEZI_GAIN`](crate::bergman::EXERCISE_GEZI_GAIN)
/// for the same idea on the minimal model).
pub const EXERCISE_UPTAKE_GAIN: f64 = 1.5;

impl DallaManPatient {
    /// Creates a patient initialized at 120 mg/dL basal equilibrium.
    pub fn new(params: DallaManParams) -> DallaManPatient {
        let ib = params.basal_insulin_for(MgDl(120.0));
        let mut p = DallaManPatient {
            params,
            ib,
            state: [0.0; NSTATE],
            t_minutes: 0.0,
            exercise_minutes_left: 0.0,
            exercise_intensity: 0.0,
        };
        p.reset(MgDl(120.0));
        p
    }

    /// The patient's parameters.
    pub fn params(&self) -> &DallaManParams {
        &self.params
    }

    /// Plasma glucose concentration (mg/dL), undelayed.
    pub fn plasma_glucose(&self) -> MgDl {
        MgDl(self.state[GP] / self.params.vg).clamp_physiological()
    }

    /// Plasma insulin concentration (pmol/L).
    pub fn plasma_insulin(&self) -> f64 {
        self.state[IP] / self.params.vi
    }

    /// Elapsed physiological time in minutes.
    pub fn elapsed_minutes(&self) -> f64 {
        self.t_minutes
    }
}

impl PatientSim for DallaManPatient {
    fn name(&self) -> &str {
        &self.params.name
    }

    fn bg(&self) -> MgDl {
        MgDl(self.state[GS]).clamp_physiological()
    }

    fn step(&mut self, rate: UnitsPerHour, minutes: f64) {
        let rate = rate.max_zero();
        // U/h -> pmol/kg/min.
        let iir = rate.value() * 6000.0 / 60.0 / self.params.bw;
        // Borrow (not clone) the parameters: the closure only reads
        // them, and `state` is a disjoint field.
        let p = &self.params;
        let ib = self.ib;
        let active = self.exercise_minutes_left.min(minutes);
        let intensity = if active > 0.0 {
            self.exercise_intensity
        } else {
            0.0
        };
        let uptake_scale = 1.0 + EXERCISE_UPTAKE_GAIN * intensity * (active / minutes);
        self.exercise_minutes_left = (self.exercise_minutes_left - minutes).max(0.0);
        let dynamics = move |_t: f64, x: &[f64], d: &mut [f64]| {
            let g = x[GP] / p.vg;
            let i_conc = x[IP] / p.vi;
            let egp = (p.kp1 - p.kp2 * x[GP] - p.kp3 * x[ID]).max(0.0);
            let ra = p.f * p.kabs * x[QGUT] / p.bw;
            let vm = (p.vm0 + p.vmx * x[X]).max(0.0) * uptake_scale;
            let uid = vm * x[GT] / (p.km0 + x[GT]);
            let e = if x[GP] > p.ke2 {
                p.ke1 * (x[GP] - p.ke2)
            } else {
                0.0
            };

            d[GP] = egp + ra - p.fsnc - e - p.k1 * x[GP] + p.k2 * x[GT];
            d[GT] = -uid + p.k1 * x[GP] - p.k2 * x[GT];
            d[IP] = -(p.m2 + p.m4) * x[IP] + p.m1 * x[IL] + p.ka1 * x[ISC1] + p.ka2 * x[ISC2];
            d[IL] = -(p.m1 + p.m3) * x[IL] + p.m2 * x[IP];
            d[I1] = -p.ki * (x[I1] - i_conc);
            d[ID] = -p.ki * (x[ID] - x[I1]);
            d[X] = -p.p2u * x[X] + p.p2u * (i_conc - ib);
            d[ISC1] = -(p.kd + p.ka1) * x[ISC1] + iir;
            d[ISC2] = p.kd * x[ISC1] - p.ka2 * x[ISC2];
            d[QSTO1] = -p.kempt * x[QSTO1];
            d[QSTO2] = p.kempt * x[QSTO1] - p.kempt * x[QSTO2];
            d[QGUT] = p.kempt * x[QSTO2] - p.kabs * x[QGUT];
            d[GS] = (g - x[GS]) / p.tau_cgm;
        };
        // Stack-only scratch: the simulation hot loop performs no heap
        // allocation per step.
        let finite = Rk4Scratch::<NSTATE>::new()
            .try_integrate(&dynamics, self.t_minutes, &mut self.state, minutes, 1.0)
            .is_ok();
        if finite {
            // Physiological floors: masses and the remote signal
            // saturate. Applied only to finite states — `f64::max(NaN,
            // floor)` is the floor, which would hide divergence from
            // `state_is_finite`.
            self.state[GP] = self.state[GP].max(10.0 * self.params.vg);
            self.state[GT] = self.state[GT].max(0.0);
            self.state[GS] = self.state[GS].max(10.0);
        }
        self.t_minutes += minutes;
    }

    fn reset(&mut self, bg0: MgDl) {
        let p = &self.params;
        self.ib = p.basal_insulin_for(MgDl(120.0));
        let basal_iir = p.iir_for_plasma(self.ib);
        let gp = bg0.value() * p.vg;
        let gt = p.gt_steady_state(gp);
        let ip = self.ib * p.vi;
        let il = p.m2 * ip / (p.m1 + p.m3);
        let isc1 = basal_iir / (p.kd + p.ka1);
        let isc2 = p.kd * isc1 / p.ka2;
        self.state = [0.0; NSTATE];
        self.state[GP] = gp;
        self.state[GT] = gt;
        self.state[IP] = ip;
        self.state[IL] = il;
        self.state[I1] = self.ib;
        self.state[ID] = self.ib;
        self.state[X] = 0.0;
        self.state[ISC1] = isc1;
        self.state[ISC2] = isc2;
        self.state[GS] = bg0.value();
        self.t_minutes = 0.0;
        self.exercise_minutes_left = 0.0;
        self.exercise_intensity = 0.0;
    }

    fn ingest(&mut self, carbs_g: f64) {
        self.state[QSTO1] += (carbs_g * 1000.0).max(0.0); // grams -> mg
    }

    fn exert(&mut self, intensity: f64, duration_min: f64) {
        self.exercise_intensity = intensity.clamp(0.0, 1.0);
        self.exercise_minutes_left = duration_min.max(0.0);
    }

    fn equilibrium_basal(&self, target: MgDl) -> UnitsPerHour {
        self.params.equilibrium_basal(target)
    }

    fn state_is_finite(&self) -> bool {
        self.state.iter().all(|v| v.is_finite())
    }
}

/// Structure-of-arrays parameter bank for a Dalla Man lane batch: one
/// contiguous `[f64; LANES]` row per identified parameter, plus the
/// per-lane basal insulin reference `ib`.
#[derive(Debug, Clone)]
struct DallaManParamLanes<const LANES: usize> {
    bw: [f64; LANES],
    vg: [f64; LANES],
    k1: [f64; LANES],
    k2: [f64; LANES],
    kp1: [f64; LANES],
    kp2: [f64; LANES],
    kp3: [f64; LANES],
    ki: [f64; LANES],
    fsnc: [f64; LANES],
    vm0: [f64; LANES],
    vmx: [f64; LANES],
    km0: [f64; LANES],
    p2u: [f64; LANES],
    ke1: [f64; LANES],
    ke2: [f64; LANES],
    kd: [f64; LANES],
    ka1: [f64; LANES],
    ka2: [f64; LANES],
    m1: [f64; LANES],
    m2: [f64; LANES],
    m3: [f64; LANES],
    m4: [f64; LANES],
    vi: [f64; LANES],
    kempt: [f64; LANES],
    kabs: [f64; LANES],
    f: [f64; LANES],
    tau_cgm: [f64; LANES],
    ib: [f64; LANES],
}

impl<const LANES: usize> DallaManParamLanes<LANES> {
    const fn zeroed() -> DallaManParamLanes<LANES> {
        DallaManParamLanes {
            bw: [0.0; LANES],
            vg: [0.0; LANES],
            k1: [0.0; LANES],
            k2: [0.0; LANES],
            kp1: [0.0; LANES],
            kp2: [0.0; LANES],
            kp3: [0.0; LANES],
            ki: [0.0; LANES],
            fsnc: [0.0; LANES],
            vm0: [0.0; LANES],
            vmx: [0.0; LANES],
            km0: [0.0; LANES],
            p2u: [0.0; LANES],
            ke1: [0.0; LANES],
            ke2: [0.0; LANES],
            kd: [0.0; LANES],
            ka1: [0.0; LANES],
            ka2: [0.0; LANES],
            m1: [0.0; LANES],
            m2: [0.0; LANES],
            m3: [0.0; LANES],
            m4: [0.0; LANES],
            vi: [0.0; LANES],
            kempt: [0.0; LANES],
            kabs: [0.0; LANES],
            f: [0.0; LANES],
            tau_cgm: [0.0; LANES],
            ib: [0.0; LANES],
        }
    }
}

/// A lane-batched cohort of `LANES` Dalla Man patients stepped in
/// lockstep; the Dalla Man sibling of
/// [`BatchedBergman`](crate::bergman::BatchedBergman).
///
/// Per lane the arithmetic is expression-for-expression
/// [`DallaManPatient::step`] — including the clamped EGP and uptake
/// terms and the physiological floors — which keeps every lane
/// bit-identical to its scalar counterpart. Lanes are loaded from
/// already-constructed scalar patients with
/// [`load_lane`](BatchedDallaMan::load_lane).
#[derive(Debug, Clone)]
pub struct BatchedDallaMan<const LANES: usize> {
    p: DallaManParamLanes<LANES>,
    state: [[f64; LANES]; NSTATE],
    /// Shared clock: lanes advance in lockstep, so one `t` serves all.
    t_minutes: f64,
    exercise_minutes_left: [f64; LANES],
    exercise_intensity: [f64; LANES],
    /// Reused across [`step_all`](BatchedPatientSim::step_all) calls so
    /// the per-cycle step does not re-zero ~4 KB of stage buffers.
    scratch: BatchedRk4Scratch<NSTATE, LANES>,
}

impl<const LANES: usize> BatchedDallaMan<LANES> {
    /// Empty batch (all lanes zeroed); load every lane before stepping.
    pub const fn new() -> BatchedDallaMan<LANES> {
        BatchedDallaMan {
            p: DallaManParamLanes::zeroed(),
            state: [[0.0; LANES]; NSTATE],
            t_minutes: 0.0,
            exercise_minutes_left: [0.0; LANES],
            exercise_intensity: [0.0; LANES],
            scratch: BatchedRk4Scratch::new(),
        }
    }

    /// Copies one scalar patient's parameters, basal reference, and
    /// full state into a lane. Lanes advance on a shared clock, so
    /// every loaded patient must be at the same elapsed time (freshly
    /// `reset` patients are).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= LANES` or the patient's clock disagrees with
    /// lanes already loaded.
    pub fn load_lane(&mut self, lane: usize, patient: &DallaManPatient) {
        assert!(lane < LANES, "lane {lane} out of range (LANES = {LANES})");
        assert!(
            self.t_minutes == patient.t_minutes || self.t_minutes == 0.0,
            "lockstep lanes must share one clock"
        );
        let p = &patient.params;
        self.p.bw[lane] = p.bw;
        self.p.vg[lane] = p.vg;
        self.p.k1[lane] = p.k1;
        self.p.k2[lane] = p.k2;
        self.p.kp1[lane] = p.kp1;
        self.p.kp2[lane] = p.kp2;
        self.p.kp3[lane] = p.kp3;
        self.p.ki[lane] = p.ki;
        self.p.fsnc[lane] = p.fsnc;
        self.p.vm0[lane] = p.vm0;
        self.p.vmx[lane] = p.vmx;
        self.p.km0[lane] = p.km0;
        self.p.p2u[lane] = p.p2u;
        self.p.ke1[lane] = p.ke1;
        self.p.ke2[lane] = p.ke2;
        self.p.kd[lane] = p.kd;
        self.p.ka1[lane] = p.ka1;
        self.p.ka2[lane] = p.ka2;
        self.p.m1[lane] = p.m1;
        self.p.m2[lane] = p.m2;
        self.p.m3[lane] = p.m3;
        self.p.m4[lane] = p.m4;
        self.p.vi[lane] = p.vi;
        self.p.kempt[lane] = p.kempt;
        self.p.kabs[lane] = p.kabs;
        self.p.f[lane] = p.f;
        self.p.tau_cgm[lane] = p.tau_cgm;
        self.p.ib[lane] = patient.ib;
        for d in 0..NSTATE {
            self.state[d][lane] = patient.state[d];
        }
        self.t_minutes = patient.t_minutes;
        self.exercise_minutes_left[lane] = patient.exercise_minutes_left;
        self.exercise_intensity[lane] = patient.exercise_intensity;
    }
}

impl<const LANES: usize> Default for BatchedDallaMan<LANES> {
    fn default() -> BatchedDallaMan<LANES> {
        BatchedDallaMan::new()
    }
}

impl<const LANES: usize> BatchedPatientSim<LANES> for BatchedDallaMan<LANES> {
    fn bg(&self, lane: usize) -> MgDl {
        MgDl(self.state[GS][lane]).clamp_physiological()
    }

    fn step_all(&mut self, rates: &[UnitsPerHour; LANES], minutes: f64) {
        // Per-lane pre-step scalars, mirroring the scalar `step`
        // preamble expression for expression.
        let mut iir = [0.0; LANES];
        let mut uptake_scale = [0.0; LANES];
        for l in 0..LANES {
            let rate = rates[l].max_zero();
            iir[l] = rate.value() * 6000.0 / 60.0 / self.p.bw[l];
            let active = self.exercise_minutes_left[l].min(minutes);
            let intensity = if active > 0.0 {
                self.exercise_intensity[l]
            } else {
                0.0
            };
            uptake_scale[l] = 1.0 + EXERCISE_UPTAKE_GAIN * intensity * (active / minutes);
            self.exercise_minutes_left[l] = (self.exercise_minutes_left[l] - minutes).max(0.0);
        }
        // Borrow the parameter bank as one disjoint field so the
        // closure does not conflict with `&mut self.state`.
        let p = &self.p;
        let dynamics =
            move |_t: f64, x: &[[f64; LANES]; NSTATE], d: &mut [[f64; LANES]; NSTATE]| {
                for l in 0..LANES {
                    let g = x[GP][l] / p.vg[l];
                    let i_conc = x[IP][l] / p.vi[l];
                    let egp = (p.kp1[l] - p.kp2[l] * x[GP][l] - p.kp3[l] * x[ID][l]).max(0.0);
                    let ra = p.f[l] * p.kabs[l] * x[QGUT][l] / p.bw[l];
                    let vm = (p.vm0[l] + p.vmx[l] * x[X][l]).max(0.0) * uptake_scale[l];
                    let uid = vm * x[GT][l] / (p.km0[l] + x[GT][l]);
                    let e = if x[GP][l] > p.ke2[l] {
                        p.ke1[l] * (x[GP][l] - p.ke2[l])
                    } else {
                        0.0
                    };

                    d[GP][l] = egp + ra - p.fsnc[l] - e - p.k1[l] * x[GP][l] + p.k2[l] * x[GT][l];
                    d[GT][l] = -uid + p.k1[l] * x[GP][l] - p.k2[l] * x[GT][l];
                    d[IP][l] = -(p.m2[l] + p.m4[l]) * x[IP][l]
                        + p.m1[l] * x[IL][l]
                        + p.ka1[l] * x[ISC1][l]
                        + p.ka2[l] * x[ISC2][l];
                    d[IL][l] = -(p.m1[l] + p.m3[l]) * x[IL][l] + p.m2[l] * x[IP][l];
                    d[I1][l] = -p.ki[l] * (x[I1][l] - i_conc);
                    d[ID][l] = -p.ki[l] * (x[ID][l] - x[I1][l]);
                    d[X][l] = -p.p2u[l] * x[X][l] + p.p2u[l] * (i_conc - p.ib[l]);
                    d[ISC1][l] = -(p.kd[l] + p.ka1[l]) * x[ISC1][l] + iir[l];
                    d[ISC2][l] = p.kd[l] * x[ISC1][l] - p.ka2[l] * x[ISC2][l];
                    d[QSTO1][l] = -p.kempt[l] * x[QSTO1][l];
                    d[QSTO2][l] = p.kempt[l] * x[QSTO1][l] - p.kempt[l] * x[QSTO2][l];
                    d[QGUT][l] = p.kempt[l] * x[QSTO2][l] - p.kabs[l] * x[QGUT][l];
                    d[GS][l] = (g - x[GS][l]) / p.tau_cgm[l];
                }
            };
        // Free-running lanes: a diverged lane churns NaN harmlessly
        // (non-finite is absorbing under the RK4 update) instead of
        // early-aborting the whole batch the way the scalar
        // `try_integrate` does; `lane_is_finite` reports it afterward.
        self.scratch
            .integrate(&dynamics, self.t_minutes, &mut self.state, minutes, 1.0);
        for l in 0..LANES {
            // Same floors as the scalar path, applied only to finite
            // lanes: f64::max(NaN, floor) is the floor, which would
            // mask divergence from `lane_is_finite`.
            let finite = self.state.iter().all(|row| row[l].is_finite());
            if finite {
                self.state[GP][l] = self.state[GP][l].max(10.0 * self.p.vg[l]);
                self.state[GT][l] = self.state[GT][l].max(0.0);
                self.state[GS][l] = self.state[GS][l].max(10.0);
            }
        }
        self.t_minutes += minutes;
    }

    fn ingest(&mut self, lane: usize, carbs_g: f64) {
        self.state[QSTO1][lane] += (carbs_g * 1000.0).max(0.0); // grams -> mg
    }

    fn exert(&mut self, lane: usize, intensity: f64, duration_min: f64) {
        // `clamp` would mask a non-finite intensity into the exercise
        // state; scenario specs only carry finite values, assert so.
        debug_assert!(intensity.is_finite() && duration_min.is_finite());
        self.exercise_intensity[lane] = intensity.clamp(0.0, 1.0);
        self.exercise_minutes_left[lane] = duration_min.max(0.0);
    }

    fn lane_is_finite(&self, lane: usize) -> bool {
        self.state.iter().all(|row| row[lane].is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avg() -> DallaManPatient {
        DallaManPatient::new(DallaManParams::average_adult())
    }

    #[test]
    fn equilibrium_basal_is_plausible() {
        let p = DallaManParams::average_adult();
        let basal = p.equilibrium_basal(MgDl(120.0));
        assert!(
            basal.value() > 0.05 && basal.value() < 3.0,
            "basal = {} U/h",
            basal.value()
        );
    }

    #[test]
    fn holds_near_equilibrium_under_basal() {
        let mut pt = avg();
        pt.reset(MgDl(120.0));
        let basal = pt.equilibrium_basal(MgDl(120.0));
        for _ in 0..144 {
            pt.step(basal, 5.0);
        }
        let bg = pt.bg().value();
        assert!((bg - 120.0).abs() < 15.0, "drifted to {bg} mg/dL");
    }

    #[test]
    fn suspension_raises_bg() {
        let mut pt = avg();
        pt.reset(MgDl(120.0));
        for _ in 0..144 {
            pt.step(UnitsPerHour(0.0), 5.0);
        }
        assert!(pt.bg().value() > 160.0, "BG only {}", pt.bg().value());
    }

    #[test]
    fn overdose_drops_bg() {
        let mut pt = avg();
        pt.reset(MgDl(120.0));
        let basal = pt.equilibrium_basal(MgDl(120.0));
        for _ in 0..144 {
            pt.step(basal * 10.0, 5.0);
        }
        assert!(pt.bg().value() < 70.0, "BG still {}", pt.bg().value());
    }

    #[test]
    fn exercise_lowers_bg() {
        let basal = avg().equilibrium_basal(MgDl(120.0));
        let run = |intensity: f64| -> f64 {
            let mut pt = avg();
            pt.reset(MgDl(140.0));
            pt.exert(intensity, 60.0);
            for _ in 0..12 {
                pt.step(basal, 5.0);
            }
            pt.bg().value()
        };
        let rest = run(0.0);
        let brisk = run(1.0);
        assert!(
            brisk < rest - 3.0,
            "exercise barely moved BG ({rest} -> {brisk})"
        );
    }

    #[test]
    fn meal_produces_excursion() {
        let mut pt = avg();
        pt.reset(MgDl(120.0));
        let basal = pt.equilibrium_basal(MgDl(120.0));
        pt.ingest(75.0);
        let mut peak: f64 = 0.0;
        for _ in 0..48 {
            pt.step(basal, 5.0);
            peak = peak.max(pt.bg().value());
        }
        assert!(peak > 140.0, "meal peak only {peak}");
    }

    #[test]
    fn cgm_lags_plasma() {
        let mut pt = avg();
        pt.reset(MgDl(120.0));
        // Strong overdose: plasma falls first, CGM follows.
        for _ in 0..24 {
            pt.step(UnitsPerHour(15.0), 5.0);
        }
        assert!(
            pt.bg().value() > pt.plasma_glucose().value() - 1.0,
            "CGM {} should lag plasma {}",
            pt.bg().value(),
            pt.plasma_glucose().value()
        );
    }

    #[test]
    fn reset_is_idempotent() {
        let mut a = avg();
        let mut b = avg();
        a.step(UnitsPerHour(2.0), 30.0);
        a.reset(MgDl(150.0));
        b.reset(MgDl(150.0));
        assert_eq!(a, b);
    }

    #[test]
    fn batched_lanes_bit_identical_to_scalar_patients() {
        // Parameter-varied patients through meals, exercise, suspension,
        // and an overdose lane: every lane must track its scalar twin
        // bit-for-bit, including the EGP/uptake clamps and floors.
        const LANES: usize = 4;
        let mut scalars: Vec<DallaManPatient> = (0..LANES)
            .map(|l| {
                let mut p = DallaManParams::average_adult();
                p.vmx *= 1.0 + 0.2 * l as f64;
                p.bw += 5.0 * l as f64;
                DallaManPatient::new(p)
            })
            .collect();
        let mut batch = BatchedDallaMan::<LANES>::new();
        for (l, pt) in scalars.iter_mut().enumerate() {
            pt.reset(MgDl(100.0 + 15.0 * l as f64));
            batch.load_lane(l, pt);
        }
        for cycle in 0..48 {
            if cycle == 3 {
                scalars[0].ingest(75.0);
                batch.ingest(0, 75.0);
            }
            if cycle == 8 {
                scalars[1].exert(0.6, 30.0);
                batch.exert(1, 0.6, 30.0);
            }
            let mut rates = [UnitsPerHour(0.0); LANES];
            for (l, r) in rates.iter_mut().enumerate() {
                *r = match l {
                    2 => UnitsPerHour(0.0),  // suspension
                    3 => UnitsPerHour(40.0), // overdose, exercises floors
                    _ => UnitsPerHour(1.0 + 0.1 * (cycle % 7) as f64),
                };
            }
            batch.step_all(&rates, 5.0);
            for (l, pt) in scalars.iter_mut().enumerate() {
                pt.step(rates[l], 5.0);
                assert_eq!(
                    BatchedPatientSim::bg(&batch, l).value(),
                    pt.bg().value(),
                    "lane {l} diverged at cycle {cycle}"
                );
                for d in 0..NSTATE {
                    assert_eq!(batch.state[d][l], pt.state[d], "lane {l} comp {d}");
                }
            }
        }
    }

    #[test]
    fn bg_floor_holds_under_extreme_overdose() {
        let mut pt = avg();
        pt.reset(MgDl(90.0));
        for _ in 0..288 {
            pt.step(UnitsPerHour(40.0), 5.0);
        }
        assert!(pt.bg().value() >= 10.0);
    }
}
