//! Insulin-on-board (IOB) estimation from delivery history.
//!
//! Both the OpenAPS-style controller and the paper's context-aware
//! monitor estimate IOB "based on previous insulin deliveries". The
//! estimator here keeps a sliding window of past micro-deliveries (one
//! per control cycle) and sums the *remaining fraction* of each
//! according to an insulin activity curve.

use aps_types::{Units, UnitsPerHour};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An insulin activity curve: what fraction of a dose is still active
/// `age` minutes after delivery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IobCurve {
    /// Linear decay over the duration of insulin action (DIA): simple,
    /// transparent, oref0's historical default shape.
    Linear {
        /// Duration of insulin action in minutes.
        dia_minutes: f64,
    },
    /// Bi-exponential decay, the smooth two-compartment absorption
    /// model used by modern oref0 "exponential" curves.
    BiExponential {
        /// Fast compartment time constant (min).
        tau1: f64,
        /// Slow compartment time constant (min).
        tau2: f64,
    },
}

impl IobCurve {
    /// The default curve: bi-exponential with τ₁ = 55, τ₂ = 70 minutes
    /// (≈ 5 h effective DIA).
    pub fn default_exponential() -> IobCurve {
        IobCurve::BiExponential {
            tau1: 55.0,
            tau2: 70.0,
        }
    }

    /// Fraction of a dose still active `age_minutes` after delivery,
    /// in `[0, 1]`, monotonically non-increasing in age.
    pub fn remaining(&self, age_minutes: f64) -> f64 {
        let t = age_minutes.max(0.0);
        match *self {
            IobCurve::Linear { dia_minutes } => (1.0 - t / dia_minutes).max(0.0),
            IobCurve::BiExponential { tau1, tau2 } => {
                if (tau1 - tau2).abs() < 1e-9 {
                    // Degenerate to Erlang-2 remaining fraction.
                    let x = t / tau1;
                    ((1.0 + x) * (-x).exp()).clamp(0.0, 1.0)
                } else {
                    let r = (tau1 * (-t / tau1).exp() - tau2 * (-t / tau2).exp()) / (tau1 - tau2);
                    r.clamp(0.0, 1.0)
                }
            }
        }
    }

    /// Horizon beyond which remaining activity is negligible (<0.5%).
    pub fn horizon_minutes(&self) -> f64 {
        match *self {
            IobCurve::Linear { dia_minutes } => dia_minutes,
            IobCurve::BiExponential { tau1, tau2 } => 7.0 * tau1.max(tau2),
        }
    }
}

/// Sliding-window IOB estimator.
///
/// Feed one delivery per control cycle with
/// [`record`](IobEstimator::record); read the current estimate with
/// [`iob`](IobEstimator::iob) and its rate of change with
/// [`diob_per_min`](IobEstimator::diob_per_min).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IobEstimator {
    curve: IobCurve,
    /// (birth_cycle, amount_units) pairs, newest last. Each entry
    /// remembers the [`now`](#structfield.now) tick at which it was
    /// recorded; its age in cycles is `now - birth_cycle`. Keeping ages
    /// implicit makes [`record`](IobEstimator::record) O(1) outside the
    /// window sum (no per-entry aging pass), and keeping them as
    /// *integer cycle counts* means an integer index addresses the
    /// memoized activity table directly — no per-entry float division
    /// or grid-alignment check in the window sum, which runs once per
    /// control cycle and used to dominate the campaign's non-physics
    /// time.
    deliveries: VecDeque<(u32, f64)>,
    /// Monotone cycle counter; advanced once per
    /// [`record`](IobEstimator::record).
    now: u32,
    /// Basal-equilibrium IOB subtracted so that "IOB" means insulin
    /// *above* the steady basal background (0 disables).
    baseline: f64,
    last_iob: Option<f64>,
    last_diob: f64,
    cycle_minutes: f64,
    /// Memoized `curve.remaining(k * cycle_minutes)`. Every delivery's
    /// age is an exact multiple of the cycle length, so the window sum
    /// never needs to re-evaluate the (expensive, `exp`-heavy) curve —
    /// the table value at index `k` is the identical `f64` the direct
    /// call would produce.
    #[serde(default)]
    remaining_table: Vec<f64>,
}

impl IobEstimator {
    /// Creates an estimator with the given activity curve and control
    /// cycle length.
    pub fn new(curve: IobCurve, cycle_minutes: f64) -> IobEstimator {
        assert!(cycle_minutes > 0.0, "cycle length must be positive");
        let mut est = IobEstimator {
            curve,
            deliveries: VecDeque::new(),
            now: 0,
            baseline: 0.0,
            last_iob: None,
            last_diob: 0.0,
            cycle_minutes,
            remaining_table: Vec::new(),
        };
        est.build_remaining_table();
        est
    }

    /// Precomputes `curve.remaining` on the cycle grid out to the
    /// horizon (plus one slot for the pop boundary).
    fn build_remaining_table(&mut self) {
        let slots = (self.curve.horizon_minutes() / self.cycle_minutes).ceil() as usize + 2;
        self.remaining_table = (0..slots)
            .map(|k| self.curve.remaining(k as f64 * self.cycle_minutes))
            .collect();
    }

    /// Remaining fraction at an age of `k` whole cycles: a direct table
    /// index (the steady-state case), falling back to the curve for
    /// ages past the table (only reachable with a hand-built table).
    #[inline]
    fn remaining_at_cycles(&self, k: u32) -> f64 {
        match self.remaining_table.get(k as usize) {
            Some(&r) => r,
            None => self.curve.remaining(k as f64 * self.cycle_minutes),
        }
    }

    /// Sets the basal-equilibrium baseline to subtract: the IOB that a
    /// constant `basal` infusion sustains forever.
    pub fn set_basal_baseline(&mut self, basal: UnitsPerHour) {
        // Steady-state IOB of a constant rate = rate * integral of the
        // remaining fraction (numerically at 1-min resolution). The
        // integral depends only on the curve, and every controller
        // construction used to pay the full ~500-term `exp` sum — a
        // visible slice of campaign job setup — so it is computed once
        // per distinct curve and cached process-wide.
        let per_min = basal.value() / 60.0;
        self.baseline = per_min * basal_remaining_integral(&self.curve);
        // Keep the cached estimate consistent with the new baseline.
        if self.last_iob.is_some() {
            self.last_iob = Some(self.raw_iob());
        }
    }

    /// Records one control cycle's delivery and ages the window.
    pub fn record(&mut self, delivered: UnitsPerHour) {
        let amount = delivered
            .max_zero()
            .over_minutes(self.cycle_minutes)
            .value();
        self.now += 1;
        self.deliveries.push_back((self.now, amount));
        let horizon = self.curve.horizon_minutes();
        while let Some(&(birth, _)) = self.deliveries.front() {
            if f64::from(self.now - birth) * self.cycle_minutes > horizon {
                self.deliveries.pop_front();
            } else {
                break;
            }
        }
        let iob = self.raw_iob();
        if let Some(prev) = self.last_iob {
            self.last_diob = (iob - prev) / self.cycle_minutes;
        }
        self.last_iob = Some(iob);
    }

    fn raw_iob(&self) -> f64 {
        let total: f64 = self
            .deliveries
            .iter()
            .map(|&(birth, amount)| amount * self.remaining_at_cycles(self.now - birth))
            .sum();
        total - self.baseline
    }

    /// Current IOB estimate (U), net of the basal baseline. Negative
    /// values mean the patient is running *below* basal insulinization
    /// (matching oref0's net-IOB convention, where suspending insulin
    /// drives IOB negative).
    ///
    /// O(1): the window sum is maintained by [`record`] /
    /// [`prefill_basal`] and cannot change between deliveries (ages
    /// only advance on `record`). The seed recomputed the full
    /// `exp`-heavy window sum on every read — several times per
    /// control cycle — which dominated campaign run time.
    ///
    /// [`record`]: IobEstimator::record
    /// [`prefill_basal`]: IobEstimator::prefill_basal
    pub fn iob(&self) -> Units {
        Units(self.last_iob.unwrap_or(0.0))
    }

    /// Rate of change of IOB between the last two cycles (U/min).
    pub fn diob_per_min(&self) -> f64 {
        self.last_diob
    }

    /// Forgets all history (new simulation).
    pub fn reset(&mut self) {
        self.deliveries.clear();
        self.now = 0;
        self.last_iob = None;
        self.last_diob = 0.0;
    }

    /// Pre-fills the window as if `basal` had been running forever, so
    /// a simulation starts at basal equilibrium instead of zero IOB.
    pub fn prefill_basal(&mut self, basal: UnitsPerHour) {
        self.reset();
        let horizon = self.curve.horizon_minutes();
        let steps = (horizon / self.cycle_minutes).ceil() as u32;
        let amount = basal.max_zero().over_minutes(self.cycle_minutes).value();
        // Oldest first: ages `steps * cycle` down to `1 * cycle`
        // (expressed as birth ticks relative to `now = steps`).
        self.now = steps;
        for k in (1..=steps).rev() {
            self.deliveries.push_back((steps - k, amount));
        }
        self.last_iob = Some(self.raw_iob());
        self.last_diob = 0.0;
    }
}

/// Process-wide cache of `Σ curve.remaining(t)` over the 1-min grid
/// `t = 0, 1, .. < horizon` — the basal-equilibrium integral used by
/// [`IobEstimator::set_basal_baseline`]. A linear scan over a tiny Vec:
/// real campaigns use one or two distinct curves, and `IobCurve` is
/// `Copy + PartialEq`, so exact-match lookup is both cheap and — by
/// reusing the identical cached `f64` — bit-identical to recomputing.
fn basal_remaining_integral(curve: &IobCurve) -> f64 {
    use std::sync::Mutex;
    static CACHE: Mutex<Vec<(IobCurve, f64)>> = Mutex::new(Vec::new());
    let mut cache = match CACHE.lock() {
        Ok(guard) => guard,
        // sound: a poisoned lock only means another thread panicked
        // mid-push; the Vec is append-only and every stored pair is
        // complete, so the data is still valid.
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(&(_, sum)) = cache.iter().find(|(c, _)| c == curve) {
        return sum;
    }
    let horizon = curve.horizon_minutes();
    let mut sum = 0.0;
    let mut t = 0.0;
    while t < horizon {
        sum += curve.remaining(t);
        t += 1.0;
    }
    cache.push((*curve, sum));
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_start_at_one_and_decay() {
        for curve in [
            IobCurve::Linear { dia_minutes: 180.0 },
            IobCurve::default_exponential(),
            IobCurve::BiExponential {
                tau1: 60.0,
                tau2: 60.0,
            },
        ] {
            assert!((curve.remaining(0.0) - 1.0).abs() < 1e-9, "{curve:?}");
            let mut prev = 1.0;
            let mut t = 0.0;
            while t < curve.horizon_minutes() {
                let r = curve.remaining(t);
                assert!(r <= prev + 1e-12, "{curve:?} not monotone at {t}");
                assert!((0.0..=1.0).contains(&r));
                prev = r;
                t += 5.0;
            }
            assert!(curve.remaining(curve.horizon_minutes()) < 0.01);
        }
    }

    #[test]
    fn bolus_iob_decays_to_zero() {
        let mut est = IobEstimator::new(IobCurve::Linear { dia_minutes: 60.0 }, 5.0);
        est.record(UnitsPerHour(12.0)); // 1 U in 5 min
        assert!((est.iob().value() - 1.0).abs() < 1e-9);
        for _ in 0..13 {
            est.record(UnitsPerHour(0.0));
        }
        assert!(est.iob().value() < 1e-9, "iob = {:?}", est.iob());
    }

    #[test]
    fn diob_sign_tracks_delivery_changes() {
        let mut est = IobEstimator::new(IobCurve::default_exponential(), 5.0);
        est.prefill_basal(UnitsPerHour(1.0));
        // Step the rate up: IOB rises.
        est.record(UnitsPerHour(4.0));
        est.record(UnitsPerHour(4.0));
        assert!(est.diob_per_min() > 0.0);
        // Suspend: IOB falls.
        for _ in 0..3 {
            est.record(UnitsPerHour(0.0));
        }
        assert!(est.diob_per_min() < 0.0);
    }

    #[test]
    fn prefill_reaches_steady_state() {
        let mut est = IobEstimator::new(IobCurve::default_exponential(), 5.0);
        est.prefill_basal(UnitsPerHour(1.0));
        let before = est.iob().value();
        est.record(UnitsPerHour(1.0));
        let after = est.iob().value();
        assert!(
            (before - after).abs() < 0.02,
            "steady basal should hold IOB: {before} -> {after}"
        );
    }

    #[test]
    fn baseline_subtraction_zeroes_basal_iob() {
        let mut est = IobEstimator::new(IobCurve::default_exponential(), 5.0);
        est.set_basal_baseline(UnitsPerHour(1.0));
        est.prefill_basal(UnitsPerHour(1.0));
        assert!(
            est.iob().value() < 0.05,
            "net IOB at basal = {:?}",
            est.iob()
        );
        // Extra insulin shows up as positive net IOB.
        for _ in 0..6 {
            est.record(UnitsPerHour(3.0));
        }
        assert!(est.iob().value() > 0.5);
    }

    #[test]
    fn negative_rates_ignored() {
        let mut est = IobEstimator::new(IobCurve::default_exponential(), 5.0);
        est.record(UnitsPerHour(-5.0));
        assert_eq!(est.iob(), Units(0.0));
    }

    #[test]
    fn reset_clears_history() {
        let mut est = IobEstimator::new(IobCurve::default_exponential(), 5.0);
        est.record(UnitsPerHour(6.0));
        assert!(est.iob().value() > 0.0);
        est.reset();
        assert_eq!(est.iob(), Units(0.0));
        assert_eq!(est.diob_per_min(), 0.0);
    }
}
