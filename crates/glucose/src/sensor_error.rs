//! Realistic CGM error model (Facchinetti-style).
//!
//! The paper's Threats-to-Validity section points to the CGM sensor
//! error models of Facchinetti et al. and Vettoretti et al. (refs
//! \[81\]–\[85\]) — validated against Dexcom G4/G5 and Medtronic Enlite
//! sensors — as the established way to represent sensor disturbance.
//! This module implements the common three-component structure of
//! those models:
//!
//! 1. **Calibration error** — a per-calibration gain and offset,
//!    redrawn at each calibration (every ~12 h) and drifting linearly
//!    in between (sensor sensitivity degrades between fingersticks);
//! 2. **Colored measurement noise** — an AR(1) process, matching the
//!    strong 5-minute autocorrelation of real CGM noise (white noise
//!    underestimates how long errors persist);
//! 3. **Quantization** — integer mg/dL reporting.
//!
//! The model plugs into [`Cgm`](crate::sensor::Cgm) through
//! [`CgmConfig::error_model`](crate::sensor::CgmConfig) and is used by
//! the `ablation-noise` experiment to measure how monitor accuracy
//! degrades from the paper's clean-sensor assumption.

use aps_types::MgDl;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the CGM error model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorModelConfig {
    /// AR(1) coefficient of the colored noise (per 5-min sample);
    /// literature fits are ≈0.7–0.9.
    pub ar_coeff: f64,
    /// Standard deviation of the AR(1) innovation (mg/dL).
    pub noise_sd: f64,
    /// Standard deviation of the per-calibration multiplicative gain
    /// around 1.0 (e.g. 0.04 = ±4% sensitivity error).
    pub gain_sd: f64,
    /// Standard deviation of the per-calibration additive offset
    /// (mg/dL).
    pub offset_sd: f64,
    /// Linear gain drift per hour between calibrations (fraction; the
    /// sensor slowly loses sensitivity).
    pub gain_drift_per_hour: f64,
    /// Minutes between calibrations (fingerstick resets).
    pub calibration_interval_min: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ErrorModelConfig {
    /// A configuration representative of a modern factory-calibrated
    /// sensor (Dexcom-G5-like): MARD around 9–10%.
    pub fn dexcom_like() -> ErrorModelConfig {
        ErrorModelConfig {
            ar_coeff: 0.8,
            noise_sd: 2.5,
            gain_sd: 0.04,
            offset_sd: 4.0,
            gain_drift_per_hour: 0.001,
            calibration_interval_min: 720.0,
            seed: 11,
        }
    }

    /// A degraded / end-of-life sensor: larger calibration error and
    /// noise (MARD ≈ 15–20%), for stress-testing monitors.
    pub fn degraded() -> ErrorModelConfig {
        ErrorModelConfig {
            ar_coeff: 0.85,
            noise_sd: 5.0,
            gain_sd: 0.08,
            offset_sd: 8.0,
            gain_drift_per_hour: 0.003,
            calibration_interval_min: 720.0,
            seed: 11,
        }
    }
}

impl Default for ErrorModelConfig {
    fn default() -> ErrorModelConfig {
        ErrorModelConfig::dexcom_like()
    }
}

/// Stateful CGM error process: call [`distort`](Self::distort) once per
/// sample.
#[derive(Debug, Clone)]
pub struct CgmErrorModel {
    config: ErrorModelConfig,
    rng: ChaCha8Rng,
    ar_state: f64,
    gain: f64,
    offset: f64,
    minutes_since_cal: f64,
}

impl CgmErrorModel {
    /// Creates the process and draws the initial calibration state.
    pub fn new(config: ErrorModelConfig) -> CgmErrorModel {
        let mut model = CgmErrorModel {
            config,
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            ar_state: 0.0,
            gain: 1.0,
            offset: 0.0,
            minutes_since_cal: 0.0,
        };
        model.calibrate();
        model
    }

    /// The configuration in use.
    pub fn config(&self) -> &ErrorModelConfig {
        &self.config
    }

    /// Redraws the calibration gain/offset (a fingerstick).
    pub fn calibrate(&mut self) {
        self.gain = 1.0 + self.config.gain_sd * self.gaussian();
        self.offset = self.config.offset_sd * self.gaussian();
        self.minutes_since_cal = 0.0;
    }

    /// Applies the full error model to one true glucose value sampled
    /// `dt_minutes` after the previous one. Recalibrates automatically
    /// on the configured interval.
    pub fn distort(&mut self, true_bg: MgDl, dt_minutes: f64) -> MgDl {
        self.minutes_since_cal += dt_minutes;
        if self.minutes_since_cal >= self.config.calibration_interval_min {
            self.calibrate();
        }
        // Gain drifts away from its calibrated value between resets.
        let drift = 1.0 - self.config.gain_drift_per_hour * self.minutes_since_cal / 60.0;
        // AR(1) colored noise.
        self.ar_state =
            self.config.ar_coeff * self.ar_state + self.config.noise_sd * self.gaussian();
        let v = self.gain * drift * true_bg.value() + self.offset + self.ar_state;
        MgDl(v).clamp_physiological()
    }

    /// Box–Muller standard normal draw.
    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Mean absolute relative difference of a distorted series vs truth —
/// the standard CGM accuracy figure (MARD).
pub fn mard(truth: &[f64], distorted: &[f64]) -> f64 {
    assert_eq!(truth.len(), distorted.len(), "series must align");
    if truth.is_empty() {
        return 0.0;
    }
    truth
        .iter()
        .zip(distorted)
        .map(|(t, d)| ((d - t) / t).abs())
        .sum::<f64>()
        / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(config: ErrorModelConfig, true_bg: f64, n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut model = CgmErrorModel::new(config);
        let truth = vec![true_bg; n];
        let distorted: Vec<f64> = (0..n)
            .map(|_| model.distort(MgDl(true_bg), 5.0).value())
            .collect();
        (truth, distorted)
    }

    #[test]
    fn dexcom_like_mard_is_realistic() {
        let (truth, distorted) = series(ErrorModelConfig::dexcom_like(), 140.0, 2000);
        let m = mard(&truth, &distorted);
        assert!(
            (0.02..0.15).contains(&m),
            "MARD {m:.3} out of the realistic band"
        );
    }

    #[test]
    fn degraded_sensor_is_worse_than_fresh() {
        let (truth, fresh) = series(ErrorModelConfig::dexcom_like(), 140.0, 2000);
        let (_, bad) = series(ErrorModelConfig::degraded(), 140.0, 2000);
        assert!(mard(&truth, &bad) > mard(&truth, &fresh));
    }

    #[test]
    fn noise_is_autocorrelated() {
        // Lag-1 autocorrelation of the error must be clearly positive
        // (that is the point of AR(1) over white noise).
        let (truth, distorted) = series(ErrorModelConfig::dexcom_like(), 140.0, 4000);
        let err: Vec<f64> = distorted.iter().zip(&truth).map(|(d, t)| d - t).collect();
        let mean = err.iter().sum::<f64>() / err.len() as f64;
        let var: f64 = err.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / err.len() as f64;
        let cov: f64 = err
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (err.len() - 1) as f64;
        let rho = cov / var;
        assert!(
            rho > 0.4,
            "lag-1 autocorrelation {rho:.2} too low for AR noise"
        );
    }

    #[test]
    fn calibration_resets_the_gain_drift() {
        let config = ErrorModelConfig {
            noise_sd: 0.0,
            gain_sd: 0.0,
            offset_sd: 0.0,
            gain_drift_per_hour: 0.01,
            calibration_interval_min: 60.0,
            ..ErrorModelConfig::dexcom_like()
        };
        let mut model = CgmErrorModel::new(config);
        // 55 minutes of drift: reading sags below truth.
        let mut last = 0.0;
        for _ in 0..11 {
            last = model.distort(MgDl(200.0), 5.0).value();
        }
        assert!(
            last < 200.0,
            "drift should pull the reading down, got {last}"
        );
        // Crossing the calibration interval snaps the gain back.
        let recal = model.distort(MgDl(200.0), 5.0).value();
        assert!(
            (recal - 200.0).abs() < (last - 200.0).abs(),
            "recalibration did not reduce the error ({recal} vs {last})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (_, a) = series(ErrorModelConfig::default(), 120.0, 50);
        let (_, b) = series(ErrorModelConfig::default(), 120.0, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn readings_stay_physiological_under_extreme_noise() {
        let config = ErrorModelConfig {
            noise_sd: 80.0,
            offset_sd: 50.0,
            ..ErrorModelConfig::degraded()
        };
        let (_, distorted) = series(config, 30.0, 500);
        for v in distorted {
            assert!((10.0..=600.0).contains(&v), "non-physiological reading {v}");
        }
    }

    #[test]
    fn mard_of_identical_series_is_zero() {
        let s = vec![120.0, 140.0, 160.0];
        assert_eq!(mard(&s, &s.clone()), 0.0);
    }

    #[test]
    #[should_panic(expected = "series must align")]
    fn mard_rejects_mismatched_lengths() {
        mard(&[1.0], &[1.0, 2.0]);
    }
}
