//! Incremental (online) evaluation of past-time STL.
//!
//! A run-time safety monitor cannot look into the future: the paper's
//! per-cycle checks use the *past-time* fragment — boolean combinations
//! of predicates over the current sample plus `Since`. This module
//! evaluates that fragment in O(|φ|) time and O(|φ|) memory per sample
//! using the classic recursive update
//! `⟦a S b⟧(t) = ⟦b⟧(t) ∨ (⟦a⟧(t) ∧ ⟦a S b⟧(t−1))`
//! (and its min/max robustness analogue).

use crate::{Formula, BOTTOM, TOP};
use std::collections::HashMap;
use std::fmt;

/// Error returned when a formula contains future-time operators and can
/// therefore not be monitored online.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotPastTimeError {
    operator: &'static str,
}

impl fmt::Display for NotPastTimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "formula contains future-time operator `{}` and cannot be monitored online",
            self.operator
        )
    }
}

impl std::error::Error for NotPastTimeError {}

/// Incremental evaluator for past-time STL formulas.
///
/// Feed one sample per control cycle with [`step`](OnlineMonitor::step);
/// it returns the robustness of the formula at that cycle. Positive
/// robustness means satisfied.
///
/// ```
/// use aps_stl::{online::OnlineMonitor, parser::parse};
/// use std::collections::HashMap;
///
/// let phi = parse("(bg > 180.0) since (iob < 1.0)").unwrap();
/// let mut mon = OnlineMonitor::new(phi).unwrap();
/// let mut sample = HashMap::new();
/// sample.insert("bg".to_owned(), 200.0);
/// sample.insert("iob".to_owned(), 0.5);
/// assert!(mon.step(&sample) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineMonitor {
    formula: Formula,
    /// Robustness of each `Since` node at the previous sample, indexed
    /// by the node's preorder position among `Since` nodes.
    since_state: Vec<f64>,
    samples_seen: usize,
}

impl OnlineMonitor {
    /// Builds a monitor for `formula`.
    ///
    /// # Errors
    ///
    /// Returns [`NotPastTimeError`] if the formula contains `G`, `F`, or
    /// `U` (future-time operators).
    pub fn new(formula: Formula) -> Result<OnlineMonitor, NotPastTimeError> {
        let n = Self::validate(&formula)?;
        Ok(OnlineMonitor {
            formula,
            since_state: vec![BOTTOM; n],
            samples_seen: 0,
        })
    }

    fn validate(f: &Formula) -> Result<usize, NotPastTimeError> {
        match f {
            Formula::True | Formula::False | Formula::Pred(_) => Ok(0),
            Formula::Not(x) => Self::validate(x),
            Formula::And(fs) | Formula::Or(fs) => {
                let mut n = 0;
                for x in fs {
                    n += Self::validate(x)?;
                }
                Ok(n)
            }
            Formula::Implies(a, b) => Ok(Self::validate(a)? + Self::validate(b)?),
            Formula::Since(a, b) => Ok(1 + Self::validate(a)? + Self::validate(b)?),
            Formula::Globally(_, _) => Err(NotPastTimeError { operator: "G" }),
            Formula::Eventually(_, _) => Err(NotPastTimeError { operator: "F" }),
            Formula::Until(_, _, _) => Err(NotPastTimeError { operator: "U" }),
        }
    }

    /// The formula being monitored.
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// Number of samples consumed so far.
    pub fn samples_seen(&self) -> usize {
        self.samples_seen
    }

    /// Resets the monitor to its initial state.
    pub fn reset(&mut self) {
        for s in &mut self.since_state {
            *s = BOTTOM;
        }
        self.samples_seen = 0;
    }

    /// Consumes one sample (signal name → value) and returns the
    /// robustness of the formula at this cycle. Missing signals make
    /// their predicates evaluate to `-∞` (violated).
    pub fn step(&mut self, sample: &HashMap<String, f64>) -> f64 {
        let mut idx = 0;
        // Work on a copy of the previous state so that sibling `Since`
        // nodes all read the t-1 values.
        let prev = self.since_state.clone();
        let rob = eval(
            &self.formula,
            sample,
            &prev,
            &mut self.since_state,
            &mut idx,
        );
        self.samples_seen += 1;
        rob
    }

    /// Like [`step`](Self::step) but returns the boolean verdict.
    pub fn step_bool(&mut self, sample: &HashMap<String, f64>) -> bool {
        self.step(sample) > 0.0
    }
}

fn eval(
    f: &Formula,
    sample: &HashMap<String, f64>,
    prev: &[f64],
    next: &mut [f64],
    idx: &mut usize,
) -> f64 {
    match f {
        Formula::True => TOP,
        Formula::False => BOTTOM,
        Formula::Pred(p) => match sample.get(&p.signal) {
            Some(v) => p.robustness_of(*v),
            None => BOTTOM,
        },
        Formula::Not(x) => -eval(x, sample, prev, next, idx),
        Formula::And(fs) => fs
            .iter()
            .map(|x| eval(x, sample, prev, next, idx))
            .fold(TOP, f64::min),
        Formula::Or(fs) => fs
            .iter()
            .map(|x| eval(x, sample, prev, next, idx))
            .fold(BOTTOM, f64::max),
        Formula::Implies(a, b) => {
            let ra = eval(a, sample, prev, next, idx);
            let rb = eval(b, sample, prev, next, idx);
            (-ra).max(rb)
        }
        Formula::Since(a, b) => {
            let my = *idx;
            *idx += 1;
            let ra = eval(a, sample, prev, next, idx);
            let rb = eval(b, sample, prev, next, idx);
            let rob = rb.max(ra.min(prev[my]));
            next[my] = rob;
            rob
        }
        // Unreachable: rejected at construction.
        Formula::Globally(_, _) | Formula::Eventually(_, _) | Formula::Until(_, _, _) => {
            unreachable!("future operators rejected by OnlineMonitor::new")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parser::parse, Trace};

    fn sample(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
        pairs.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect()
    }

    #[test]
    fn rejects_future_operators() {
        for text in ["G[0,3] x > 0", "F[0,3] x > 0"] {
            let f = parse(text).unwrap();
            assert!(OnlineMonitor::new(f).is_err(), "{text}");
        }
    }

    #[test]
    fn instantaneous_formula_tracks_sample() {
        let f = parse("bg > 180.0 and iob < 2.0").unwrap();
        let mut mon = OnlineMonitor::new(f).unwrap();
        assert!(mon.step_bool(&sample(&[("bg", 200.0), ("iob", 1.0)])));
        assert!(!mon.step_bool(&sample(&[("bg", 150.0), ("iob", 1.0)])));
        assert_eq!(mon.samples_seen(), 2);
    }

    #[test]
    fn since_latches_until_lhs_breaks() {
        let f = parse("(a > 0.5) since (b > 0.5)").unwrap();
        let mut mon = OnlineMonitor::new(f).unwrap();
        // b never true yet.
        assert!(!mon.step_bool(&sample(&[("a", 1.0), ("b", 0.0)])));
        // b fires.
        assert!(mon.step_bool(&sample(&[("a", 0.0), ("b", 1.0)])));
        // a holds since -> still true.
        assert!(mon.step_bool(&sample(&[("a", 1.0), ("b", 0.0)])));
        assert!(mon.step_bool(&sample(&[("a", 1.0), ("b", 0.0)])));
        // a breaks -> false.
        assert!(!mon.step_bool(&sample(&[("a", 0.0), ("b", 0.0)])));
        // and stays false until b fires again.
        assert!(!mon.step_bool(&sample(&[("a", 1.0), ("b", 0.0)])));
    }

    #[test]
    fn online_matches_offline_semantics() {
        let f = parse("((x > 0.5) since (y > 0.5)) or (z > 2.0)").unwrap();
        let xs = [0.0, 1.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0];
        let ys = [0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0];
        let zs = [3.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];

        let mut trace = Trace::new(5.0);
        trace.push_signal("x", xs.to_vec());
        trace.push_signal("y", ys.to_vec());
        trace.push_signal("z", zs.to_vec());

        let mut mon = OnlineMonitor::new(f.clone()).unwrap();
        for t in 0..xs.len() {
            let s = sample(&[("x", xs[t]), ("y", ys[t]), ("z", zs[t])]);
            let online = mon.step_bool(&s);
            let offline = f.sat(&trace, t);
            assert_eq!(online, offline, "divergence at t={t}");
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let f = parse("(a > 0.5) since (b > 0.5)").unwrap();
        let mut mon = OnlineMonitor::new(f).unwrap();
        assert!(mon.step_bool(&sample(&[("a", 0.0), ("b", 1.0)])));
        mon.reset();
        assert_eq!(mon.samples_seen(), 0);
        assert!(!mon.step_bool(&sample(&[("a", 1.0), ("b", 0.0)])));
    }

    #[test]
    fn missing_signal_violates_predicate() {
        let f = parse("bg > 0.0").unwrap();
        let mut mon = OnlineMonitor::new(f).unwrap();
        assert!(!mon.step_bool(&sample(&[("iob", 1.0)])));
    }
}
