//! Bounded-time Signal Temporal Logic (STL) for run-time safety
//! monitoring.
//!
//! The paper formalizes its Safety Context Specifications (SCS) as
//! bounded-time STL formulas of the shape
//! `G[t0,te](φ1(µ1(x)) ∧ … ∧ φm(µm(x)) ⇒ ¬u)` (Eq. 1) and hazard
//! mitigation specifications with past-time `Since` and bounded
//! `Eventually` (Eq. 2). This crate provides:
//!
//! * a formula AST ([`Formula`], [`Predicate`], [`Interval`]);
//! * discrete-time, multi-signal traces ([`Trace`]);
//! * boolean satisfaction and quantitative *robustness* semantics
//!   ([`Formula::sat`], [`Formula::robustness`]);
//! * an incremental [`online::OnlineMonitor`] for the past-time fragment
//!   used by run-time monitors;
//! * a small recursive-descent [`parse`](parser::parse) for a textual
//!   syntax used in tests, docs, and examples.
//!
//! # Example
//!
//! ```
//! use aps_stl::{parser::parse, Trace};
//!
//! let phi = parse("G[0,3]((bg > 180.0) implies (iob >= 1.0))").unwrap();
//! let mut trace = Trace::new(5.0);
//! trace.push_signal("bg", vec![190.0, 200.0, 150.0, 120.0]);
//! trace.push_signal("iob", vec![2.0, 1.5, 0.2, 0.1]);
//! assert!(phi.sat(&trace, 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod formula;
pub mod online;
pub mod parser;
mod semantics;
mod signal;

pub use formula::{CmpOp, Formula, Interval, Predicate};
pub use signal::Trace;

/// Robustness value treated as "vacuously true" (window entirely beyond
/// the end of a finite trace).
pub const TOP: f64 = f64::INFINITY;
/// Robustness value treated as "vacuously false".
pub const BOTTOM: f64 = f64::NEG_INFINITY;
