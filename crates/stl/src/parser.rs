//! A small textual syntax for STL formulas.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! formula  := implies
//! implies  := or ("implies" or)*                (right-associative)
//! or       := and ("or" and)*
//! and      := since ("and" since)*
//! since    := unary (("since" unary) | ("U" "[" n "," n "]" unary))*
//!                                               (left-associative)
//! unary    := "not" unary
//!           | "G" "[" n "," n "]" unary
//!           | "F" "[" n "," n "]" unary
//!           | "(" formula ")"
//!           | "true" | "false"
//!           | pred
//! pred     := ident ("<" | "<=" | ">" | ">=" | "==") number
//! ```
//!
//! Interval bounds are sample counts; `inf` is accepted as the upper
//! bound of an unbounded interval.

use crate::{CmpOp, Formula, Interval, Predicate};
use std::fmt;

/// Error produced when parsing fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStlError {
    message: String,
    position: usize,
}

impl ParseStlError {
    fn new(message: impl Into<String>, position: usize) -> ParseStlError {
        ParseStlError {
            message: message.into(),
            position,
        }
    }

    /// Byte offset in the input at which the error was detected.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for ParseStlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseStlError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Op(CmpOp),
    G,
    F,
    Not,
    And,
    Or,
    Implies,
    Since,
    U,
    True,
    False,
    Inf,
}

fn tokenize(input: &str) -> Result<Vec<(Tok, usize)>, ParseStlError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, i));
                i += 1;
            }
            '[' => {
                out.push((Tok::LBracket, i));
                i += 1;
            }
            ']' => {
                out.push((Tok::RBracket, i));
                i += 1;
            }
            ',' => {
                out.push((Tok::Comma, i));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Op(CmpOp::Le), i));
                    i += 2;
                } else {
                    out.push((Tok::Op(CmpOp::Lt), i));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Op(CmpOp::Ge), i));
                    i += 2;
                } else {
                    out.push((Tok::Op(CmpOp::Gt), i));
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Op(CmpOp::Eq), i));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push((Tok::Implies, i));
                    i += 2;
                } else {
                    return Err(ParseStlError::new("expected `==` or `=>`", i));
                }
            }
            '-' | '0'..='9' | '.' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && matches!(bytes[i] as char, '0'..='9' | '.' | 'e' | 'E' | '-' | '+')
                {
                    // Only allow '-'/'+' right after an exponent marker.
                    let ch = bytes[i] as char;
                    if (ch == '-' || ch == '+') && !matches!(bytes[i - 1] as char, 'e' | 'E') {
                        break;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                let v: f64 = text
                    .parse()
                    .map_err(|_| ParseStlError::new(format!("bad number `{text}`"), start))?;
                out.push((Tok::Number(v), start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'\'')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let tok = match word {
                    "G" => Tok::G,
                    "F" => Tok::F,
                    "U" => Tok::U,
                    "not" => Tok::Not,
                    "and" => Tok::And,
                    "or" => Tok::Or,
                    "implies" => Tok::Implies,
                    "since" => Tok::Since,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "inf" => Tok::Inf,
                    _ => Tok::Ident(word.to_owned()),
                };
                out.push((tok, start));
            }
            other => {
                return Err(ParseStlError::new(
                    format!("unexpected character `{other}`"),
                    i,
                ))
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(_, p)| *p)
            .unwrap_or(usize::MAX)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseStlError> {
        let pos = self.here();
        match self.bump() {
            Some(t) if t == tok => Ok(()),
            _ => Err(ParseStlError::new(format!("expected {what}"), pos)),
        }
    }

    fn formula(&mut self) -> Result<Formula, ParseStlError> {
        self.implies()
    }

    fn implies(&mut self) -> Result<Formula, ParseStlError> {
        let lhs = self.or()?;
        if matches!(self.peek(), Some(Tok::Implies)) {
            self.bump();
            let rhs = self.implies()?; // right-associative
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<Formula, ParseStlError> {
        let mut lhs = self.and()?;
        while matches!(self.peek(), Some(Tok::Or)) {
            self.bump();
            let rhs = self.and()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Formula, ParseStlError> {
        let mut lhs = self.since()?;
        while matches!(self.peek(), Some(Tok::And)) {
            self.bump();
            let rhs = self.since()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn since(&mut self) -> Result<Formula, ParseStlError> {
        let mut lhs = self.unary()?;
        loop {
            match self.peek() {
                Some(Tok::Since) => {
                    self.bump();
                    let rhs = self.unary()?;
                    lhs = Formula::Since(Box::new(lhs), Box::new(rhs));
                }
                Some(Tok::U) => {
                    self.bump();
                    let interval = self.interval()?;
                    let rhs = self.unary()?;
                    lhs = Formula::Until(interval, Box::new(lhs), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn interval(&mut self) -> Result<Interval, ParseStlError> {
        self.expect(Tok::LBracket, "`[`")?;
        let pos = self.here();
        let lo = match self.bump() {
            Some(Tok::Number(n)) if n >= 0.0 && n.fract() == 0.0 => n as usize,
            _ => return Err(ParseStlError::new("expected non-negative integer", pos)),
        };
        self.expect(Tok::Comma, "`,`")?;
        let pos = self.here();
        let hi = match self.bump() {
            Some(Tok::Number(n)) if n >= 0.0 && n.fract() == 0.0 => n as usize,
            Some(Tok::Inf) => usize::MAX,
            _ => return Err(ParseStlError::new("expected integer or `inf`", pos)),
        };
        self.expect(Tok::RBracket, "`]`")?;
        if lo > hi {
            return Err(ParseStlError::new(
                "interval lower bound exceeds upper",
                pos,
            ));
        }
        Ok(Interval { lo, hi })
    }

    fn unary(&mut self) -> Result<Formula, ParseStlError> {
        let pos = self.here();
        match self.peek().cloned() {
            Some(Tok::Not) => {
                self.bump();
                Ok(self.unary()?.not())
            }
            Some(Tok::G) => {
                self.bump();
                let i = self.interval()?;
                let inner = self.unary()?;
                Ok(Formula::Globally(i, Box::new(inner)))
            }
            Some(Tok::F) => {
                self.bump();
                let i = self.interval()?;
                let inner = self.unary()?;
                Ok(Formula::Eventually(i, Box::new(inner)))
            }
            Some(Tok::LParen) => {
                self.bump();
                let inner = self.formula()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(inner)
            }
            Some(Tok::True) => {
                self.bump();
                Ok(Formula::True)
            }
            Some(Tok::False) => {
                self.bump();
                Ok(Formula::False)
            }
            Some(Tok::Ident(name)) => {
                self.bump();
                let pos_op = self.here();
                let op = match self.bump() {
                    Some(Tok::Op(op)) => op,
                    _ => {
                        return Err(ParseStlError::new(
                            "expected comparison operator after signal name",
                            pos_op,
                        ))
                    }
                };
                let pos_num = self.here();
                let threshold = match self.bump() {
                    Some(Tok::Number(n)) => n,
                    _ => return Err(ParseStlError::new("expected number", pos_num)),
                };
                Ok(Formula::Pred(Predicate::new(&name, op, threshold)))
            }
            _ => Err(ParseStlError::new("expected formula", pos)),
        }
    }
}

/// Parses a formula from its textual syntax.
///
/// # Errors
///
/// Returns [`ParseStlError`] with a byte position when the input is not
/// a well-formed formula.
///
/// ```
/// use aps_stl::parser::parse;
/// let f = parse("G[0,150]((bg > 180.0 and iob < 2.5) implies not u == 1)").unwrap();
/// assert_eq!(f.signals(), vec!["bg".to_owned(), "iob".to_owned(), "u".to_owned()]);
/// ```
pub fn parse(input: &str) -> Result<Formula, ParseStlError> {
    let toks = tokenize(input)?;
    let mut p = Parser { toks, pos: 0 };
    let f = p.formula()?;
    if p.pos != p.toks.len() {
        return Err(ParseStlError::new("trailing input", p.here()));
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    #[test]
    fn parses_predicates_and_ops() {
        for (text, op) in [
            ("x < 1", CmpOp::Lt),
            ("x <= 1", CmpOp::Le),
            ("x > 1", CmpOp::Gt),
            ("x >= 1", CmpOp::Ge),
            ("x == 1", CmpOp::Eq),
        ] {
            match parse(text).unwrap() {
                Formula::Pred(p) => {
                    assert_eq!(p.op, op);
                    assert_eq!(p.threshold, 1.0);
                }
                other => panic!("expected predicate, got {other:?}"),
            }
        }
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let f = parse("a > 0 or b > 0 and c > 0").unwrap();
        match f {
            Formula::Or(v) => {
                assert_eq!(v.len(), 2);
                assert!(matches!(v[1], Formula::And(_)));
            }
            other => panic!("expected Or at top, got {other:?}"),
        }
    }

    #[test]
    fn implies_is_right_associative_and_loosest() {
        let f = parse("a > 0 implies b > 0 implies c > 0").unwrap();
        match f {
            Formula::Implies(_, rhs) => assert!(matches!(*rhs, Formula::Implies(_, _))),
            other => panic!("expected Implies, got {other:?}"),
        }
    }

    #[test]
    fn temporal_with_inf_bound() {
        let f = parse("F[0,inf] x > 3").unwrap();
        match f {
            Formula::Eventually(i, _) => assert_eq!(i.hi, usize::MAX),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arrow_alias_for_implies() {
        let a = parse("a > 0 => b > 0").unwrap();
        let b = parse("a > 0 implies b > 0").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn since_parses_and_evaluates() {
        let f = parse("(a > 0.5) since (b > 0.5)").unwrap();
        let mut tr = Trace::new(5.0);
        tr.push_signal("a", vec![0.0, 1.0, 1.0]);
        tr.push_signal("b", vec![1.0, 0.0, 0.0]);
        assert!(f.sat(&tr, 2));
    }

    #[test]
    fn negative_and_scientific_numbers() {
        match parse("x > -2.5e-1").unwrap() {
            Formula::Pred(p) => assert!((p.threshold + 0.25).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_reports_position() {
        let err = parse("x >").unwrap_err();
        assert!(err.to_string().contains("expected number"), "{err}");
        let err = parse("x ? 3").unwrap_err();
        assert!(err.to_string().contains("unexpected character"), "{err}");
        let err = parse("(x > 1").unwrap_err();
        assert!(err.to_string().contains("expected `)`"), "{err}");
        let err = parse("x > 1 )").unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn bad_interval_rejected() {
        assert!(parse("G[3,1] x > 0").is_err());
        assert!(parse("G[0.5,1] x > 0").is_err());
    }

    #[test]
    fn until_parses_and_roundtrips() {
        let f = parse("x > 1 U[0,5] y < 2").unwrap();
        match &f {
            Formula::Until(i, a, b) => {
                assert_eq!((i.lo, i.hi), (0, 5));
                assert!(matches!(**a, Formula::Pred(_)));
                assert!(matches!(**b, Formula::Pred(_)));
            }
            other => panic!("expected Until, got {other:?}"),
        }
        let reparsed = parse(&f.to_string()).unwrap();
        assert_eq!(f, reparsed);
    }

    #[test]
    fn until_is_left_associative_and_chains() {
        let f = parse("a > 0 U[0,2] b > 0 U[1,3] c > 0").unwrap();
        match f {
            Formula::Until(outer, inner, _) => {
                assert_eq!((outer.lo, outer.hi), (1, 3));
                assert!(matches!(*inner, Formula::Until(_, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn until_accepts_unbounded_interval() {
        let f = parse("x > 0 U[2,inf] y > 0").unwrap();
        match f {
            Formula::Until(i, _, _) => assert_eq!((i.lo, i.hi), (2, usize::MAX)),
            other => panic!("{other:?}"),
        }
        // Display of an unbounded interval re-parses.
        let f2 = parse(&parse("x > 0 U[2,inf] y > 0").unwrap().to_string()).unwrap();
        assert!(matches!(f2, Formula::Until(_, _, _)));
    }

    #[test]
    fn until_requires_an_interval() {
        assert!(parse("x > 0 U y > 0").is_err());
    }

    #[test]
    fn eq2_shape_parses() {
        // The HMS Eq. 2 shape: (F[0,ts] u == 2) since (context).
        let f = parse("G[0,150]((F[0,6] u == 2) since (bg > 120 and iob < 0.5))").unwrap();
        match f {
            Formula::Globally(_, inner) => {
                assert!(matches!(*inner, Formula::Since(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn paper_rule_shape_parses() {
        // Rule 1 of Table I with BGT=120 and a placeholder beta.
        let f = parse(
            "G[0,150]((bg > 120.0 and bg' > 0.0) and (iob' < 0.0 and iob < 2.2) \
             implies not u == 1)",
        )
        .unwrap();
        assert!(f.signals().contains(&"bg'".to_owned()));
        assert!(f.signals().contains(&"iob'".to_owned()));
    }
}
