//! Discrete-time multi-signal traces.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A finite, uniformly-sampled, multi-signal trace.
///
/// Signals are named `f64` series sharing a common sampling period.
/// STL interval bounds are interpreted in *samples* by the semantics in
/// this crate; [`Trace::steps_for_minutes`] converts wall-clock bounds.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    dt_minutes: f64,
    signals: BTreeMap<String, Vec<f64>>,
    len: usize,
}

impl Trace {
    /// Creates an empty trace with sampling period `dt_minutes`.
    pub fn new(dt_minutes: f64) -> Trace {
        assert!(dt_minutes > 0.0, "sampling period must be positive");
        Trace {
            dt_minutes,
            signals: BTreeMap::new(),
            len: 0,
        }
    }

    /// Sampling period in minutes.
    pub fn dt_minutes(&self) -> f64 {
        self.dt_minutes
    }

    /// Number of samples (all signals share it).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no samples are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds (or replaces) a named signal.
    ///
    /// # Panics
    ///
    /// Panics if a previously added signal has a different length.
    pub fn push_signal(&mut self, name: &str, values: Vec<f64>) {
        if !self.signals.is_empty() {
            assert_eq!(values.len(), self.len, "signal `{name}` length mismatch");
        } else {
            self.len = values.len();
        }
        self.signals.insert(name.to_owned(), values);
    }

    /// Appends one sample to every signal; `sample` must name every
    /// existing signal exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `sample` does not cover the existing signal set.
    pub fn append_sample(&mut self, sample: &[(&str, f64)]) {
        if self.signals.is_empty() {
            for (name, v) in sample {
                self.signals.insert((*name).to_owned(), vec![*v]);
            }
            self.len = 1;
            return;
        }
        assert_eq!(sample.len(), self.signals.len(), "sample arity mismatch");
        for (name, v) in sample {
            let series = self
                .signals
                .get_mut(*name)
                .unwrap_or_else(|| panic!("unknown signal `{name}`"));
            series.push(*v);
        }
        self.len += 1;
    }

    /// The series for `name`, if present.
    pub fn signal(&self, name: &str) -> Option<&[f64]> {
        self.signals.get(name).map(|v| v.as_slice())
    }

    /// Value of `name` at sample `t`.
    pub fn value(&self, name: &str, t: usize) -> Option<f64> {
        self.signals.get(name).and_then(|v| v.get(t)).copied()
    }

    /// Names of all signals (sorted).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.signals.keys().map(|s| s.as_str())
    }

    /// Converts a wall-clock duration to a (floored) number of samples.
    pub fn steps_for_minutes(&self, minutes: f64) -> usize {
        (minutes / self.dt_minutes).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read() {
        let mut t = Trace::new(5.0);
        t.push_signal("bg", vec![100.0, 110.0]);
        t.push_signal("iob", vec![1.0, 2.0]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.value("bg", 1), Some(110.0));
        assert_eq!(t.value("iob", 0), Some(1.0));
        assert_eq!(t.value("nope", 0), None);
        assert_eq!(t.value("bg", 2), None);
        assert_eq!(t.names().collect::<Vec<_>>(), vec!["bg", "iob"]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_length_panics() {
        let mut t = Trace::new(5.0);
        t.push_signal("a", vec![1.0]);
        t.push_signal("b", vec![1.0, 2.0]);
    }

    #[test]
    fn append_sample_grows_all() {
        let mut t = Trace::new(5.0);
        t.append_sample(&[("bg", 100.0), ("iob", 0.5)]);
        t.append_sample(&[("bg", 105.0), ("iob", 0.6)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.signal("bg"), Some(&[100.0, 105.0][..]));
    }

    #[test]
    fn minutes_to_steps() {
        let t = Trace::new(5.0);
        assert_eq!(t.steps_for_minutes(30.0), 6);
        assert_eq!(t.steps_for_minutes(4.9), 0);
    }

    #[test]
    #[should_panic(expected = "sampling period")]
    fn zero_dt_rejected() {
        let _ = Trace::new(0.0);
    }
}
