//! Boolean and quantitative (robustness) semantics over finite traces.
//!
//! Conventions for finite traces:
//!
//! * A future window `[t+lo, t+hi]` is truncated at the last sample.
//! * If the truncated window is empty, `G` is vacuously true and `F`
//!   vacuously false (standard finite-trace STL convention).
//! * `Since` is unbounded past-time and inclusive of the present.

use crate::{Formula, Trace, BOTTOM, TOP};

impl Formula {
    /// Boolean satisfaction of the formula at sample `t`.
    ///
    /// Missing signals evaluate the predicate to *false* (robustness
    /// `-∞`); this surfaces wiring bugs in tests without panicking in
    /// release monitors.
    pub fn sat(&self, trace: &Trace, t: usize) -> bool {
        self.robustness(trace, t) > 0.0
    }

    /// Quantitative robustness of the formula at sample `t`.
    ///
    /// Positive iff the formula is satisfied; the magnitude measures the
    /// distance to violation, which is what the paper's threshold
    /// learner minimizes (`r = µi(d(t)) − βi`).
    pub fn robustness(&self, trace: &Trace, t: usize) -> f64 {
        match self {
            Formula::True => TOP,
            Formula::False => BOTTOM,
            Formula::Pred(p) => match trace.value(&p.signal, t) {
                Some(v) => p.robustness_of(v),
                None => BOTTOM,
            },
            Formula::Not(f) => -f.robustness(trace, t),
            Formula::And(fs) => fs
                .iter()
                .map(|f| f.robustness(trace, t))
                .fold(TOP, f64::min),
            Formula::Or(fs) => fs
                .iter()
                .map(|f| f.robustness(trace, t))
                .fold(BOTTOM, f64::max),
            Formula::Implies(a, b) => (-a.robustness(trace, t)).max(b.robustness(trace, t)),
            Formula::Globally(i, f) => {
                let (lo, hi) = clamp_window(t, i.lo, i.hi, trace.len());
                let mut rob = TOP;
                for u in lo..=hi {
                    rob = rob.min(f.robustness(trace, u));
                }
                rob
            }
            Formula::Eventually(i, f) => {
                let (lo, hi) = clamp_window(t, i.lo, i.hi, trace.len());
                let mut rob = BOTTOM;
                for u in lo..=hi {
                    rob = rob.max(f.robustness(trace, u));
                }
                rob
            }
            Formula::Until(i, a, b) => {
                let (lo, hi) = clamp_window(t, i.lo, i.hi, trace.len());
                let mut best = BOTTOM;
                for u in lo..=hi {
                    let mut v = b.robustness(trace, u);
                    for w in t..u {
                        v = v.min(a.robustness(trace, w));
                    }
                    best = best.max(v);
                }
                best
            }
            Formula::Since(a, b) => {
                let mut best = BOTTOM;
                for u in (0..=t.min(trace.len().saturating_sub(1))).rev() {
                    let mut v = b.robustness(trace, u);
                    for w in (u + 1)..=t {
                        v = v.min(a.robustness(trace, w));
                    }
                    best = best.max(v);
                }
                best
            }
        }
    }
}

/// Clamps the window `[t+lo, t+hi]` to `[0, len-1]`.
///
/// Returns `(1, 0)` (an empty `lo..=hi` is impossible with usize ranges,
/// so we signal emptiness by `lo > hi`) when the window lies entirely
/// beyond the trace; callers rely on `lo..=hi` iterating zero times.
fn clamp_window(t: usize, lo: usize, hi: usize, len: usize) -> (usize, usize) {
    if len == 0 {
        return (1, 0);
    }
    let start = t.saturating_add(lo);
    let end = if hi == usize::MAX {
        len - 1
    } else {
        t.saturating_add(hi).min(len - 1)
    };
    if start > end {
        (1, 0)
    } else {
        (start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, Interval};

    fn bg_trace(values: &[f64]) -> Trace {
        let mut t = Trace::new(5.0);
        t.push_signal("bg", values.to_vec());
        t
    }

    #[test]
    fn predicate_sat_and_robustness() {
        let tr = bg_trace(&[100.0, 200.0]);
        let p = Formula::pred("bg", CmpOp::Gt, 180.0);
        assert!(!p.sat(&tr, 0));
        assert!(p.sat(&tr, 1));
        assert!((p.robustness(&tr, 1) - 20.0).abs() < 1e-12);
        assert!((p.robustness(&tr, 0) + 80.0).abs() < 1e-12);
    }

    #[test]
    fn missing_signal_is_false() {
        let tr = bg_trace(&[100.0]);
        let p = Formula::pred("iob", CmpOp::Gt, 0.0);
        assert!(!p.sat(&tr, 0));
    }

    #[test]
    fn globally_holds_over_window() {
        let tr = bg_trace(&[100.0, 110.0, 120.0, 300.0]);
        let g = Formula::pred("bg", CmpOp::Lt, 200.0).globally(0, 2);
        assert!(g.sat(&tr, 0));
        assert!(!g.sat(&tr, 1)); // window reaches index 3 (300)
    }

    #[test]
    fn eventually_finds_witness() {
        let tr = bg_trace(&[100.0, 110.0, 250.0]);
        let f = Formula::pred("bg", CmpOp::Gt, 200.0).eventually(0, 2);
        assert!(f.sat(&tr, 0));
        let f_short = Formula::pred("bg", CmpOp::Gt, 200.0).eventually(0, 1);
        assert!(!f_short.sat(&tr, 0));
    }

    #[test]
    fn window_beyond_trace_is_vacuous() {
        let tr = bg_trace(&[100.0]);
        let g = Formula::pred("bg", CmpOp::Gt, 1e9).globally(5, 10);
        assert!(g.sat(&tr, 0), "G over empty window is vacuously true");
        let f = Formula::pred("bg", CmpOp::Lt, 1e9).eventually(5, 10);
        assert!(!f.sat(&tr, 0), "F over empty window is vacuously false");
    }

    #[test]
    fn globally_truncates_at_trace_end() {
        let tr = bg_trace(&[100.0, 100.0]);
        let g = Formula::pred("bg", CmpOp::Lt, 200.0).globally(0, 100);
        assert!(g.sat(&tr, 0));
    }

    #[test]
    fn not_and_or_implies() {
        let tr = bg_trace(&[100.0]);
        let low = Formula::pred("bg", CmpOp::Lt, 150.0);
        let high = Formula::pred("bg", CmpOp::Gt, 150.0);
        assert!(low.clone().sat(&tr, 0));
        assert!(!low.clone().not().sat(&tr, 0));
        assert!(low.clone().or(high.clone()).sat(&tr, 0));
        assert!(!low.clone().and(high.clone()).sat(&tr, 0));
        assert!(high.clone().implies(Formula::False).sat(&tr, 0));
        assert!(!low.implies(Formula::False).sat(&tr, 0));
    }

    #[test]
    fn until_semantics() {
        // a holds until b at index 2.
        let mut tr = Trace::new(5.0);
        tr.push_signal("a", vec![1.0, 1.0, 0.0, 0.0]);
        tr.push_signal("b", vec![0.0, 0.0, 1.0, 0.0]);
        let a = Formula::pred("a", CmpOp::Gt, 0.5);
        let b = Formula::pred("b", CmpOp::Gt, 0.5);
        let until = Formula::Until(
            Interval::new(0, 3),
            Box::new(a.clone()),
            Box::new(b.clone()),
        );
        assert!(until.sat(&tr, 0));
        // Tight window that excludes the witness.
        let until_short = Formula::Until(Interval::new(0, 1), Box::new(a), Box::new(b));
        assert!(!until_short.sat(&tr, 0));
    }

    #[test]
    fn since_semantics() {
        // b fired at index 1, a has held from 2..=3 → a S b true at 3.
        let mut tr = Trace::new(5.0);
        tr.push_signal("a", vec![0.0, 0.0, 1.0, 1.0]);
        tr.push_signal("b", vec![0.0, 1.0, 0.0, 0.0]);
        let a = Formula::pred("a", CmpOp::Gt, 0.5);
        let b = Formula::pred("b", CmpOp::Gt, 0.5);
        let since = Formula::Since(Box::new(a.clone()), Box::new(b.clone()));
        assert!(since.sat(&tr, 3));
        assert!(since.sat(&tr, 1), "since holds at the instant b holds");
        assert!(!since.sat(&tr, 0));
        // Break the 'a holds since' chain.
        let mut tr2 = Trace::new(5.0);
        tr2.push_signal("a", vec![0.0, 0.0, 0.0, 1.0]);
        tr2.push_signal("b", vec![0.0, 1.0, 0.0, 0.0]);
        let since2 = Formula::Since(Box::new(a), Box::new(b));
        assert!(!since2.sat(&tr2, 3));
    }

    #[test]
    fn robustness_agrees_with_sat_sign() {
        let tr = bg_trace(&[60.0, 70.0, 90.0, 200.0, 400.0]);
        let formulas = vec![
            Formula::pred("bg", CmpOp::Gt, 180.0),
            Formula::pred("bg", CmpOp::Lt, 70.0),
            Formula::pred("bg", CmpOp::Ge, 70.0).and(Formula::pred("bg", CmpOp::Le, 180.0)),
            Formula::pred("bg", CmpOp::Gt, 100.0).eventually(0, 2),
            Formula::pred("bg", CmpOp::Lt, 500.0).globally(0, 4),
        ];
        for f in formulas {
            for t in 0..5 {
                let rob = f.robustness(&tr, t);
                if rob != 0.0 {
                    assert_eq!(f.sat(&tr, t), rob > 0.0, "formula {f} at t={t}");
                }
            }
        }
    }

    #[test]
    fn empty_trace_vacuous() {
        let tr = Trace::new(5.0);
        let g = Formula::pred("bg", CmpOp::Gt, 0.0).globally(0, 10);
        assert!(g.sat(&tr, 0));
    }
}
