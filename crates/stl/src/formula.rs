//! STL formula AST.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operator of an atomic predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `signal < threshold`
    Lt,
    /// `signal <= threshold`
    Le,
    /// `signal > threshold`
    Gt,
    /// `signal >= threshold`
    Ge,
    /// `|signal - threshold| <= tol` — discrete equality; robustness is
    /// `tol - |signal - threshold|`. The tolerance lives in
    /// [`Predicate::tolerance`].
    Eq,
}

impl CmpOp {
    /// The operator's textual form (parser syntax).
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
        }
    }
}

/// An atomic predicate `signal op threshold`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Name of the signal the predicate reads.
    pub signal: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Threshold constant (the learnable β of the paper's SCS rules).
    pub threshold: f64,
    /// Equality tolerance (used only by [`CmpOp::Eq`]); default 0.5 to
    /// match discrete/enum signals encoded as integers.
    pub tolerance: f64,
}

impl Predicate {
    /// Builds a predicate with the default equality tolerance.
    pub fn new(signal: &str, op: CmpOp, threshold: f64) -> Predicate {
        Predicate {
            signal: signal.to_owned(),
            op,
            threshold,
            tolerance: 0.5,
        }
    }

    /// Quantitative robustness of the predicate for a signal value `v`:
    /// positive iff satisfied, with magnitude = distance to the boundary.
    #[inline]
    pub fn robustness_of(&self, v: f64) -> f64 {
        match self.op {
            CmpOp::Lt | CmpOp::Le => self.threshold - v,
            CmpOp::Gt | CmpOp::Ge => v - self.threshold,
            CmpOp::Eq => self.tolerance - (v - self.threshold).abs(),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.signal, self.op.symbol(), self.threshold)
    }
}

/// A discrete time interval `[lo, hi]` in samples (both inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Lower bound (samples).
    pub lo: usize,
    /// Upper bound (samples), `usize::MAX` = unbounded.
    pub hi: usize,
}

impl Interval {
    /// `[lo, hi]`, validating `lo <= hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: usize, hi: usize) -> Interval {
        assert!(lo <= hi, "interval lower bound exceeds upper bound");
        Interval { lo, hi }
    }

    /// The unbounded-future interval `[0, ∞)`.
    pub fn unbounded() -> Interval {
        Interval {
            lo: 0,
            hi: usize::MAX,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hi == usize::MAX {
            write!(f, "[{},inf]", self.lo)
        } else {
            write!(f, "[{},{}]", self.lo, self.hi)
        }
    }
}

/// A bounded-time STL formula over named signals.
///
/// Future-time operators ([`Globally`], [`Eventually`], [`Until`]) are
/// evaluated over a finite trace with the convention that windows
/// truncated by the end of the trace quantify over the available
/// samples only, and windows entirely beyond the trace are vacuous.
/// [`Since`] is the past-time operator used by the paper's mitigation
/// specification (Eq. 2).
///
/// [`Globally`]: Formula::Globally
/// [`Eventually`]: Formula::Eventually
/// [`Until`]: Formula::Until
/// [`Since`]: Formula::Since
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Formula {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// Atomic predicate.
    Pred(Predicate),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction.
    And(Vec<Formula>),
    /// N-ary disjunction.
    Or(Vec<Formula>),
    /// Implication `lhs ⇒ rhs`.
    Implies(Box<Formula>, Box<Formula>),
    /// `G[i] φ` — φ holds at every sample in the window.
    Globally(Interval, Box<Formula>),
    /// `F[i] φ` — φ holds at some sample in the window.
    Eventually(Interval, Box<Formula>),
    /// `φ U[i] ψ` — ψ occurs within the window and φ holds until then.
    Until(Interval, Box<Formula>, Box<Formula>),
    /// `φ S ψ` — ψ held at some past sample and φ has held since
    /// (unbounded past-time since, inclusive of the present).
    Since(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// Convenience: predicate formula.
    pub fn pred(signal: &str, op: CmpOp, threshold: f64) -> Formula {
        Formula::Pred(Predicate::new(signal, op, threshold))
    }

    /// Convenience: negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Convenience: `self ∧ rhs` (flattens nested conjunctions).
    pub fn and(self, rhs: Formula) -> Formula {
        match self {
            Formula::And(mut v) => {
                v.push(rhs);
                Formula::And(v)
            }
            other => Formula::And(vec![other, rhs]),
        }
    }

    /// Convenience: `self ∨ rhs` (flattens nested disjunctions).
    pub fn or(self, rhs: Formula) -> Formula {
        match self {
            Formula::Or(mut v) => {
                v.push(rhs);
                Formula::Or(v)
            }
            other => Formula::Or(vec![other, rhs]),
        }
    }

    /// Convenience: `self ⇒ rhs`.
    pub fn implies(self, rhs: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(rhs))
    }

    /// Convenience: `G[lo,hi] self`.
    pub fn globally(self, lo: usize, hi: usize) -> Formula {
        Formula::Globally(Interval::new(lo, hi), Box::new(self))
    }

    /// Convenience: `F[lo,hi] self`.
    pub fn eventually(self, lo: usize, hi: usize) -> Formula {
        Formula::Eventually(Interval::new(lo, hi), Box::new(self))
    }

    /// Names of all signals referenced by the formula, deduplicated.
    pub fn signals(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_signals(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_signals(&self, out: &mut Vec<String>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Pred(p) => out.push(p.signal.clone()),
            Formula::Not(f) => f.collect_signals(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_signals(out);
                }
            }
            Formula::Implies(a, b) | Formula::Since(a, b) => {
                a.collect_signals(out);
                b.collect_signals(out);
            }
            Formula::Globally(_, f) | Formula::Eventually(_, f) => f.collect_signals(out),
            Formula::Until(_, a, b) => {
                a.collect_signals(out);
                b.collect_signals(out);
            }
        }
    }

    /// Returns mutable references to every predicate threshold, in
    /// left-to-right AST order. Used by the threshold learner to write
    /// optimized β values back into a formula template.
    pub fn thresholds_mut(&mut self) -> Vec<&mut f64> {
        let mut out = Vec::new();
        self.collect_thresholds(&mut out);
        out
    }

    fn collect_thresholds<'a>(&'a mut self, out: &mut Vec<&'a mut f64>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Pred(p) => out.push(&mut p.threshold),
            Formula::Not(f) => f.collect_thresholds(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_thresholds(out);
                }
            }
            Formula::Implies(a, b) | Formula::Since(a, b) => {
                a.collect_thresholds(out);
                b.collect_thresholds(out);
            }
            Formula::Globally(_, f) | Formula::Eventually(_, f) => f.collect_thresholds(out),
            Formula::Until(_, a, b) => {
                a.collect_thresholds(out);
                b.collect_thresholds(out);
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => f.write_str("true"),
            Formula::False => f.write_str("false"),
            Formula::Pred(p) => write!(f, "({p})"),
            Formula::Not(x) => write!(f, "not {x}"),
            Formula::And(fs) => {
                let parts: Vec<String> = fs.iter().map(|x| x.to_string()).collect();
                write!(f, "({})", parts.join(" and "))
            }
            Formula::Or(fs) => {
                let parts: Vec<String> = fs.iter().map(|x| x.to_string()).collect();
                write!(f, "({})", parts.join(" or "))
            }
            Formula::Implies(a, b) => write!(f, "({a} implies {b})"),
            Formula::Globally(i, x) => write!(f, "G{i} {x}"),
            Formula::Eventually(i, x) => write!(f, "F{i} {x}"),
            Formula::Until(i, a, b) => write!(f, "({a} U{i} {b})"),
            Formula::Since(a, b) => write!(f, "({a} since {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_flatten() {
        let f = Formula::pred("a", CmpOp::Gt, 1.0)
            .and(Formula::pred("b", CmpOp::Lt, 2.0))
            .and(Formula::pred("c", CmpOp::Ge, 3.0));
        match &f {
            Formula::And(v) => assert_eq!(v.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn signals_deduplicated_sorted() {
        let f = Formula::pred("iob", CmpOp::Gt, 1.0)
            .and(Formula::pred("bg", CmpOp::Lt, 70.0))
            .or(Formula::pred("bg", CmpOp::Gt, 180.0));
        assert_eq!(f.signals(), vec!["bg".to_owned(), "iob".to_owned()]);
    }

    #[test]
    fn thresholds_mut_visits_all_predicates() {
        let mut f = Formula::pred("a", CmpOp::Gt, 1.0)
            .and(Formula::pred("b", CmpOp::Lt, 2.0))
            .implies(Formula::pred("c", CmpOp::Ge, 3.0).not());
        {
            let ts = f.thresholds_mut();
            assert_eq!(ts.len(), 3);
            for t in ts {
                *t += 10.0;
            }
        }
        let vals: Vec<f64> = {
            let mut f2 = f.clone();
            f2.thresholds_mut().iter().map(|t| **t).collect()
        };
        assert_eq!(vals, vec![11.0, 12.0, 13.0]);
    }

    #[test]
    fn predicate_robustness_signs() {
        let ge = Predicate::new("x", CmpOp::Ge, 5.0);
        assert!(ge.robustness_of(6.0) > 0.0);
        assert!(ge.robustness_of(4.0) < 0.0);
        let lt = Predicate::new("x", CmpOp::Lt, 5.0);
        assert!(lt.robustness_of(4.0) > 0.0);
        assert!(lt.robustness_of(6.0) < 0.0);
        let eq = Predicate {
            tolerance: 0.5,
            ..Predicate::new("x", CmpOp::Eq, 2.0)
        };
        assert!(eq.robustness_of(2.2) > 0.0);
        assert!(eq.robustness_of(3.0) < 0.0);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn bad_interval_panics() {
        let _ = Interval::new(3, 2);
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let f = Formula::pred("bg", CmpOp::Gt, 180.0)
            .and(Formula::pred("iob", CmpOp::Lt, 2.0))
            .implies(Formula::pred("u", CmpOp::Eq, 1.0).not())
            .globally(0, 10);
        let text = f.to_string();
        let reparsed = crate::parser::parse(&text).expect("display should be parseable");
        assert_eq!(f, reparsed);
    }
}
