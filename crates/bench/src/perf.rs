//! Campaign-throughput benchmark (`repro bench-campaign`).
//!
//! Measures the quick fault-injection campaign twice on the current
//! machine:
//!
//! * **baseline** — a faithful reconstruction of the seed's hot path:
//!   Bergman patients stepped with the five-`Vec`-per-RK4-step
//!   integrator and a per-step parameter clone, executed by the seed's
//!   mutex-funneled worker loop (one global
//!   `Mutex<Vec<Option<SimTrace>>>` behind an atomic job counter);
//! * **optimized** — the current scalar stack: stack-scratch RK4,
//!   clone-free closed loop, and the lock-free executor of
//!   [`aps_sim::campaign::run_campaign`];
//! * **batched** — the lockstep executor of
//!   [`aps_sim::batch::run_campaign_batched`]: blocks of
//!   [`BATCH_LANES`](aps_sim::batch::BATCH_LANES) jobs share one
//!   structure-of-arrays physics bank, bit-identical to the scalar
//!   paths.
//!
//! All run the identical job grid (2 patients × 1 initial BG ×
//! {fault-free + quick fault grid} × 150 steps). With `sweep_workers`
//! the scalar and batched executors are additionally timed at pinned
//! worker counts (1, 2, 4, …) to record the scaling curve. The report
//! is written to `BENCH_campaign.json` so later PRs can show a
//! trajectory; see the "Performance" section of the `aps_repro` crate
//! docs for how to regenerate it.

use crate::report::Table;
use aps_glucose::ode::Dynamics;
use aps_glucose::patients::glucosym_params;
use aps_glucose::PatientSim;
use aps_sim::batch::{run_campaign_batched, run_campaign_batched_with_workers};
use aps_sim::campaign::{
    campaign_size, run_campaign, run_campaign_with_workers, worker_count, worker_count_from,
    CampaignSpec, WorkerSource,
};
use aps_sim::closed_loop::{run, LoopConfig};
use aps_sim::platform::Platform;
use aps_types::{MgDl, SimTrace, Units, UnitsPerHour};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Worker count and provenance every benchmark executor shares.
///
/// One resolution point (explicit override absent → `APS_WORKERS` env
/// → detection, clamped) replaces the two hand-rolled
/// `available_parallelism().unwrap_or(1)` fallbacks this file used to
/// carry, so the report's `workers`/`worker_source` fields always
/// describe what actually ran — including the seed-faithful executor.
pub fn bench_workers() -> (usize, WorkerSource) {
    worker_count(None)
}

/// One side's measurement.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct Throughput {
    /// Best-of-reps wall time in seconds.
    pub secs: f64,
    /// Simulation runs per second.
    pub runs_per_sec: f64,
    /// Control-cycle steps per second.
    pub steps_per_sec: f64,
}

impl Throughput {
    fn from_secs(secs: f64, runs: usize, steps_per_run: u32) -> Throughput {
        Throughput {
            secs,
            runs_per_sec: runs as f64 / secs,
            steps_per_sec: runs as f64 * f64::from(steps_per_run) / secs,
        }
    }
}

/// One point of the workers-scaling sweep: the scalar and batched
/// executors timed at the same pinned worker count.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct WorkerSweepPoint {
    /// Pinned worker-thread count for both measurements.
    pub workers: usize,
    /// Scalar lock-free executor at this worker count.
    pub scalar: Throughput,
    /// Batched lockstep executor at this worker count.
    pub batched: Throughput,
}

/// The `BENCH_campaign.json` document.
///
/// Container-level `#[serde(default)]`: the committed report must keep
/// loading (the CI `--guard` path reads it) as fields are added.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct CampaignBenchReport {
    /// Campaign preset measured.
    pub campaign: String,
    /// Number of simulation runs in the grid.
    pub runs: usize,
    /// Control cycles per run.
    pub steps_per_run: u32,
    /// Worker threads each executor used.
    pub workers: usize,
    /// Where that worker count came from.
    pub worker_source: WorkerSource,
    /// Timing repetitions (best is reported).
    pub reps: usize,
    /// Seed-faithful pre-optimization measurement.
    pub baseline: Throughput,
    /// Current scalar implementation.
    pub optimized: Throughput,
    /// Batched lockstep implementation.
    pub batched: Throughput,
    /// `baseline.secs / optimized.secs`.
    pub speedup: f64,
    /// `baseline.secs / batched.secs` — the headline speedup over the
    /// seed, guarded by CI like `speedup`.
    pub batched_speedup: f64,
    /// `optimized.secs / batched.secs` — what lockstep batching buys
    /// over the already-optimized scalar path.
    pub batched_vs_optimized: f64,
    /// Workers-scaling curve (empty unless the benchmark ran with
    /// `sweep_workers`).
    pub sweep: Vec<WorkerSweepPoint>,
}

/// Runs the benchmark and returns the report. With `sweep_workers` the
/// scalar and batched executors are additionally timed at pinned
/// worker counts 1, 2, 4, … (doubling up to the detected ambient
/// parallelism, minimum 2) to record the scaling curve.
pub fn run_campaign_bench(reps: usize, sweep_workers: bool) -> CampaignBenchReport {
    let reps = reps.max(1);
    let spec = CampaignSpec::quick(Platform::GlucosymOref0);
    let runs = campaign_size(&spec);
    let (workers, worker_source) = bench_workers();

    // Warm-up + correctness guards: all paths must produce the same
    // number of traces; the batched engine must agree with the scalar
    // one bit for bit (that is its contract), the seed baseline on at
    // least 90% of hazard labels.
    let opt_traces = run_campaign(&spec, None);
    let base_traces = seed_baseline::run_campaign(&spec);
    assert_eq!(
        opt_traces.len(),
        base_traces.len(),
        "executor grid mismatch"
    );
    let batched_traces = run_campaign_batched(&spec, None);
    assert_eq!(
        batched_traces, opt_traces,
        "batched executor diverged from the scalar path"
    );
    let agree = opt_traces
        .iter()
        .zip(&base_traces)
        .filter(|(a, b)| a.is_hazardous() == b.is_hazardous())
        .count();
    assert!(
        agree * 10 >= opt_traces.len() * 9,
        "baseline and optimized campaigns disagree on hazards ({agree}/{})",
        opt_traces.len()
    );

    let time_best = |f: &dyn Fn() -> usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            let n = f();
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(n, runs, "campaign size changed mid-benchmark");
            best = best.min(secs);
        }
        best
    };

    let base_secs = time_best(&|| seed_baseline::run_campaign(&spec).len());
    let opt_secs = time_best(&|| run_campaign(&spec, None).len());
    let batched_secs = time_best(&|| run_campaign_batched(&spec, None).len());

    let mut sweep = Vec::new();
    if sweep_workers {
        // The sweep ceiling comes from *detected* parallelism, not the
        // resolved count: CI pins APS_WORKERS=1 to keep the headline
        // single-core ratios machine-comparable, and that pin must not
        // collapse the scaling curve. Each sweep point pins its own
        // worker count explicitly (Override beats Env in
        // `worker_count_from`), so the env var never distorts a row.
        let detected = worker_count_from(
            None,
            None,
            std::thread::available_parallelism()
                .map(std::num::NonZero::get)
                .map_err(|e| e.to_string()),
        )
        .0;
        let mut w = 1;
        while w <= detected.max(2) {
            let scalar_secs = time_best(&|| {
                let mut n = 0;
                run_campaign_with_workers(&spec, None, Some(w), |_, _| n += 1);
                n
            });
            let lane_secs = time_best(&|| {
                let mut n = 0;
                run_campaign_batched_with_workers(&spec, None, Some(w), |_, _| n += 1);
                n
            });
            sweep.push(WorkerSweepPoint {
                workers: w,
                scalar: Throughput::from_secs(scalar_secs, runs, spec.steps),
                batched: Throughput::from_secs(lane_secs, runs, spec.steps),
            });
            w *= 2;
        }
    }

    CampaignBenchReport {
        campaign: "quick".to_owned(),
        runs,
        steps_per_run: spec.steps,
        workers,
        worker_source,
        reps,
        baseline: Throughput::from_secs(base_secs, runs, spec.steps),
        optimized: Throughput::from_secs(opt_secs, runs, spec.steps),
        batched: Throughput::from_secs(batched_secs, runs, spec.steps),
        speedup: base_secs / opt_secs,
        batched_speedup: base_secs / batched_secs,
        batched_vs_optimized: opt_secs / batched_secs,
        sweep,
    }
}

/// Runs the benchmark, prints a table, and writes
/// `BENCH_campaign.json` to `out_path`.
pub fn bench_campaign(reps: usize, out_path: &str, sweep_workers: bool) -> CampaignBenchReport {
    let report = run_campaign_bench(reps, sweep_workers);
    let mut table = Table::new(&["path", "wall (s)", "runs/s", "steps/s"]);
    let fmt = |t: &Throughput| {
        vec![
            format!("{:.4}", t.secs),
            format!("{:.1}", t.runs_per_sec),
            format!("{:.0}", t.steps_per_sec),
        ]
    };
    let mut base_row = vec!["baseline (seed-faithful)".to_owned()];
    base_row.extend(fmt(&report.baseline));
    let mut opt_row = vec!["optimized (scalar)".to_owned()];
    opt_row.extend(fmt(&report.optimized));
    let mut lane_row = vec!["batched (lockstep)".to_owned()];
    lane_row.extend(fmt(&report.batched));
    table.row(&base_row);
    table.row(&opt_row);
    table.row(&lane_row);
    println!(
        "campaign throughput — {} runs x {} steps, {} worker(s), best of {}\n",
        report.runs, report.steps_per_run, report.workers, report.reps
    );
    println!("{}", table.render());
    println!("speedup (scalar):  {:.2}x", report.speedup);
    println!(
        "speedup (batched): {:.2}x vs seed, {:.2}x vs scalar",
        report.batched_speedup, report.batched_vs_optimized
    );
    if !report.sweep.is_empty() {
        let mut sweep_table = Table::new(&["workers", "scalar runs/s", "batched runs/s"]);
        for point in &report.sweep {
            sweep_table.row(&[
                point.workers.to_string(),
                format!("{:.1}", point.scalar.runs_per_sec),
                format!("{:.1}", point.batched.runs_per_sec),
            ]);
        }
        println!("\nworkers-scaling sweep\n\n{}", sweep_table.render());
    }
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(out_path, json + "\n") {
                eprintln!("warning: cannot write {out_path}: {e}");
            } else {
                println!("[report written to {out_path}]");
            }
        }
        Err(e) => eprintln!("warning: cannot serialize report: {e}"),
    }
    report
}

/// Fraction of the committed speedup a fresh measurement must retain
/// for the CI perf-regression guard to pass.
pub const GUARD_MIN_FRACTION: f64 = 0.8;

/// Perf-regression guard: compares a freshly measured report against
/// the committed baseline report and returns `Err` when the fresh
/// speedup fell below `min_fraction` of the committed one (CI uses
/// [`GUARD_MIN_FRACTION`]). The speedup *ratio* is machine-portable —
/// both sides of it are measured on the same host in the same process
/// — which is what makes this guard meaningful on arbitrary CI
/// hardware where absolute wall times are not.
pub fn check_speedup_guard(
    fresh: &CampaignBenchReport,
    committed: &CampaignBenchReport,
    min_fraction: f64,
) -> Result<(), String> {
    let floor = committed.speedup * min_fraction;
    if !fresh.speedup.is_finite() || fresh.speedup < floor {
        return Err(format!(
            "campaign speedup regressed: fresh {:.2}x < {:.2}x \
             ({}% of the committed {:.2}x)",
            fresh.speedup,
            floor,
            (min_fraction * 100.0).round(),
            committed.speedup,
        ));
    }
    // The batched guard only arms once a batched speedup has been
    // committed (serde defaults the field to 0 for reports recorded
    // before the lockstep executor existed).
    if committed.batched_speedup > 0.0 {
        let floor = committed.batched_speedup * min_fraction;
        if !fresh.batched_speedup.is_finite() || fresh.batched_speedup < floor {
            return Err(format!(
                "batched campaign speedup regressed: fresh {:.2}x < {:.2}x \
                 ({}% of the committed {:.2}x)",
                fresh.batched_speedup,
                floor,
                (min_fraction * 100.0).round(),
                committed.batched_speedup,
            ));
        }
    }
    Ok(())
}

/// Runs [`bench_campaign`] and enforces [`check_speedup_guard`]
/// against the report committed at `baseline_path`. Exits the process
/// with a failure code on regression — this is the CI entry point.
pub fn bench_campaign_guarded(
    reps: usize,
    out_path: &str,
    baseline_path: &str,
    sweep_workers: bool,
) {
    let committed: CampaignBenchReport = match std::fs::read_to_string(baseline_path) {
        Ok(json) => match serde_json::from_str(&json) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: cannot parse baseline {baseline_path}: {e}");
                std::process::exit(2);
            }
        },
        Err(e) => {
            eprintln!("error: cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    let fresh = bench_campaign(reps, out_path, sweep_workers);
    match check_speedup_guard(&fresh, &committed, GUARD_MIN_FRACTION) {
        Ok(()) => println!(
            "perf guard ok: scalar {:.2}x, batched {:.2}x >= {}% of committed \
             (scalar {:.2}x, batched {:.2}x)",
            fresh.speedup,
            fresh.batched_speedup,
            (GUARD_MIN_FRACTION * 100.0).round(),
            committed.speedup,
            committed.batched_speedup
        ),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}

/// Multi-core scaling gate over a recorded workers sweep: the
/// 2-worker scalar throughput must be at least `min_ratio` times the
/// 1-worker throughput. Like the speedup guard, the *ratio* is
/// machine-portable — both points come from the same host and process
/// — so the gate is meaningful on arbitrary CI hardware. Returns a
/// human-readable summary on success.
pub fn check_sweep_gate(report: &CampaignBenchReport, min_ratio: f64) -> Result<String, String> {
    let point = |workers: usize| {
        report
            .sweep
            .iter()
            .find(|p| p.workers == workers)
            .ok_or_else(|| {
                format!(
                    "sweep gate needs a {workers}-worker point; report has {:?} \
                     (run bench-campaign with --sweep-workers)",
                    report.sweep.iter().map(|p| p.workers).collect::<Vec<_>>()
                )
            })
    };
    let one = point(1)?;
    let two = point(2)?;
    let ratio = two.scalar.runs_per_sec / one.scalar.runs_per_sec;
    if !ratio.is_finite() {
        return Err(format!(
            "sweep gate: non-finite scalar ratio ({} / {} runs/s)",
            two.scalar.runs_per_sec, one.scalar.runs_per_sec
        ));
    }
    if ratio < min_ratio {
        return Err(format!(
            "multi-core scaling regressed: 2-worker scalar throughput is \
             {ratio:.2}x the 1-worker throughput (< required {min_ratio:.2}x; \
             {:.1} vs {:.1} runs/s)",
            two.scalar.runs_per_sec, one.scalar.runs_per_sec
        ));
    }
    let batched_ratio = two.batched.runs_per_sec / one.batched.runs_per_sec;
    Ok(format!(
        "sweep gate ok: scalar 2-worker/1-worker = {ratio:.2}x (>= {min_ratio:.2}x); \
         batched = {batched_ratio:.2}x (informative)"
    ))
}

/// Faithful reconstruction of the seed's simulation hot path, kept as
/// the pre-optimization baseline. Everything here intentionally
/// mirrors the seed commit: do not "fix" it.
pub mod seed_baseline {
    use super::*;
    use aps_controllers::oref0::Oref0Profile;
    use aps_controllers::{Controller, StateVar};
    use aps_fault::{campaign_grid, FaultInjector, FaultScenario};
    use aps_glucose::bergman::{BergmanParams, EXERCISE_GEZI_GAIN};
    use aps_glucose::iob::IobCurve;

    /// The seed's `rk4_step`: five fresh `Vec` allocations per step.
    fn rk4_step_alloc<D: Dynamics + ?Sized>(dyn_: &D, t: f64, x: &mut [f64], dt: f64) {
        let n = x.len();
        let mut k1 = vec![0.0; n];
        let mut k2 = vec![0.0; n];
        let mut k3 = vec![0.0; n];
        let mut k4 = vec![0.0; n];
        let mut tmp = vec![0.0; n];
        dyn_.derivative(t, x, &mut k1);
        for i in 0..n {
            tmp[i] = x[i] + 0.5 * dt * k1[i];
        }
        dyn_.derivative(t + 0.5 * dt, &tmp, &mut k2);
        for i in 0..n {
            tmp[i] = x[i] + 0.5 * dt * k2[i];
        }
        dyn_.derivative(t + 0.5 * dt, &tmp, &mut k3);
        for i in 0..n {
            tmp[i] = x[i] + dt * k3[i];
        }
        dyn_.derivative(t + dt, &tmp, &mut k4);
        for i in 0..n {
            x[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }

    fn integrate_alloc<D: Dynamics + ?Sized>(
        dyn_: &D,
        t0: f64,
        x: &mut [f64],
        duration: f64,
        max_dt: f64,
    ) {
        let steps = (duration / max_dt).ceil() as usize;
        let dt = duration / steps as f64;
        let mut t = t0;
        for _ in 0..steps {
            rk4_step_alloc(dyn_, t, x, dt);
            t += dt;
        }
    }

    const ISC: usize = 0;
    const IP: usize = 1;
    const IEFF: usize = 2;
    const BG: usize = 3;
    const QGUT1: usize = 4;
    const QGUT2: usize = 5;
    const NSTATE: usize = 6;

    /// The seed's `BergmanPatient::step`: clones the parameter struct
    /// (one `String` heap allocation) every control cycle and
    /// integrates with the allocating RK4.
    pub struct SeedBergmanPatient {
        params: BergmanParams,
        state: [f64; NSTATE],
        t_minutes: f64,
        exercise_minutes_left: f64,
        exercise_intensity: f64,
    }

    impl SeedBergmanPatient {
        /// Builds the patient at 120 mg/dL equilibrium.
        pub fn new(params: BergmanParams) -> SeedBergmanPatient {
            let mut p = SeedBergmanPatient {
                params,
                state: [0.0; NSTATE],
                t_minutes: 0.0,
                exercise_minutes_left: 0.0,
                exercise_intensity: 0.0,
            };
            p.reset(MgDl(120.0));
            p
        }
    }

    impl PatientSim for SeedBergmanPatient {
        fn name(&self) -> &str {
            &self.params.name
        }

        fn bg(&self) -> MgDl {
            MgDl(self.state[BG]).clamp_physiological()
        }

        fn step(&mut self, rate: UnitsPerHour, minutes: f64) {
            let rate = rate.max_zero();
            let id_uu_per_min = rate.value() * 1e6 / 60.0;
            let p = self.params.clone();
            let active = self.exercise_minutes_left.min(minutes);
            let intensity = if active > 0.0 {
                self.exercise_intensity
            } else {
                0.0
            };
            let gezi = p.gezi * (1.0 + EXERCISE_GEZI_GAIN * intensity * (active / minutes));
            self.exercise_minutes_left = (self.exercise_minutes_left - minutes).max(0.0);
            let dynamics = move |_t: f64, x: &[f64], d: &mut [f64]| {
                let ra = p.carb_gain * x[QGUT2] / p.tau_meal;
                d[ISC] = id_uu_per_min / (p.tau1 * p.ci) - x[ISC] / p.tau1;
                d[IP] = (x[ISC] - x[IP]) / p.tau2;
                d[IEFF] = -p.p2 * x[IEFF] + p.p2 * p.si * x[IP];
                d[BG] = -(gezi + x[IEFF]) * x[BG] + p.egp + ra;
                d[QGUT1] = -x[QGUT1] / p.tau_meal;
                d[QGUT2] = (x[QGUT1] - x[QGUT2]) / p.tau_meal;
            };
            integrate_alloc(&dynamics, self.t_minutes, &mut self.state, minutes, 1.0);
            self.state[BG] = self.state[BG].max(10.0);
            self.t_minutes += minutes;
        }

        fn reset(&mut self, bg0: MgDl) {
            let basal = self.params.equilibrium_basal(MgDl(120.0));
            let id_uu_per_min = basal.value() * 1e6 / 60.0;
            let ip = id_uu_per_min / self.params.ci;
            self.state = [0.0; NSTATE];
            self.state[ISC] = ip;
            self.state[IP] = ip;
            self.state[IEFF] = self.params.si * ip;
            self.state[BG] = bg0.value();
            self.t_minutes = 0.0;
            self.exercise_minutes_left = 0.0;
            self.exercise_intensity = 0.0;
        }

        fn ingest(&mut self, carbs_g: f64) {
            self.state[QGUT1] += carbs_g.max(0.0);
        }

        fn exert(&mut self, intensity: f64, duration_min: f64) {
            self.exercise_intensity = intensity.clamp(0.0, 1.0);
            self.exercise_minutes_left = duration_min.max(0.0);
        }

        fn equilibrium_basal(&self, target: MgDl) -> UnitsPerHour {
            self.params.equilibrium_basal(target)
        }
    }

    /// The seed's `IobEstimator`: recomputes the full `exp`-heavy
    /// activity-curve window sum on *every* read (the current one
    /// caches it and memoizes the curve on the cycle grid).
    struct SeedIobEstimator {
        curve: IobCurve,
        deliveries: std::collections::VecDeque<(f64, f64)>,
        baseline: f64,
        last_iob: Option<f64>,
        cycle_minutes: f64,
    }

    impl SeedIobEstimator {
        fn new(curve: IobCurve, cycle_minutes: f64) -> SeedIobEstimator {
            SeedIobEstimator {
                curve,
                deliveries: std::collections::VecDeque::new(),
                baseline: 0.0,
                last_iob: None,
                cycle_minutes,
            }
        }

        fn set_basal_baseline(&mut self, basal: UnitsPerHour) {
            let per_min = basal.value() / 60.0;
            let horizon = self.curve.horizon_minutes();
            let mut sum = 0.0;
            let mut t = 0.0;
            while t < horizon {
                sum += self.curve.remaining(t);
                t += 1.0;
            }
            self.baseline = per_min * sum;
        }

        fn record(&mut self, delivered: UnitsPerHour) {
            let amount = delivered
                .max_zero()
                .over_minutes(self.cycle_minutes)
                .value();
            for entry in &mut self.deliveries {
                entry.0 += self.cycle_minutes;
            }
            self.deliveries.push_back((0.0, amount));
            let horizon = self.curve.horizon_minutes();
            while let Some(&(age, _)) = self.deliveries.front() {
                if age > horizon {
                    self.deliveries.pop_front();
                } else {
                    break;
                }
            }
            self.last_iob = Some(self.raw_iob());
        }

        fn raw_iob(&self) -> f64 {
            let total: f64 = self
                .deliveries
                .iter()
                .map(|&(age, amount)| amount * self.curve.remaining(age))
                .sum();
            total - self.baseline
        }

        fn iob(&self) -> Units {
            // Seed behavior: full window recomputation per read.
            Units(self.last_iob.map(|_| self.raw_iob()).unwrap_or(0.0))
        }

        fn reset(&mut self) {
            self.deliveries.clear();
            self.last_iob = None;
        }

        fn prefill_basal(&mut self, basal: UnitsPerHour) {
            self.reset();
            let horizon = self.curve.horizon_minutes();
            let steps = (horizon / self.cycle_minutes).ceil() as usize;
            let amount = basal.max_zero().over_minutes(self.cycle_minutes).value();
            for k in (1..=steps).rev() {
                self.deliveries
                    .push_back((k as f64 * self.cycle_minutes, amount));
            }
            self.last_iob = Some(self.raw_iob());
        }
    }

    /// The seed's oref0 controller hot path: per-cycle profile clone,
    /// a `Vec`-collecting `avg_delta`, `HashMap`-backed variable
    /// state, and the recompute-per-read IOB estimator above. The
    /// decision *logic* is identical to the current controller.
    pub struct SeedOref0Controller {
        profile: Oref0Profile,
        estimator: SeedIobEstimator,
        bg_history: std::collections::VecDeque<f64>,
        prev_rate: UnitsPerHour,
        overrides: std::collections::HashMap<&'static str, f64>,
        last_vars: std::collections::HashMap<&'static str, f64>,
    }

    impl SeedOref0Controller {
        /// Builds the controller the Glucosym platform would use.
        pub fn new(profile: Oref0Profile) -> SeedOref0Controller {
            let mut estimator = SeedIobEstimator::new(
                IobCurve::default_exponential(),
                aps_types::CONTROL_CYCLE_MINUTES,
            );
            estimator.set_basal_baseline(UnitsPerHour(profile.basal));
            estimator.prefill_basal(UnitsPerHour(profile.basal));
            let prev_rate = UnitsPerHour(profile.basal);
            SeedOref0Controller {
                profile,
                estimator,
                bg_history: std::collections::VecDeque::new(),
                prev_rate,
                overrides: std::collections::HashMap::new(),
                last_vars: std::collections::HashMap::new(),
            }
        }

        fn take_override(&mut self, var: &'static str, fallback: f64) -> f64 {
            self.overrides.remove(var).unwrap_or(fallback)
        }

        fn avg_delta(&self) -> f64 {
            let h: Vec<f64> = self.bg_history.iter().copied().collect();
            let n = h.len();
            if n < 2 {
                return 0.0;
            }
            let span = (n - 1).min(3);
            (h[n - 1] - h[n - 1 - span]) / span as f64
        }
    }

    impl Controller for SeedOref0Controller {
        fn name(&self) -> &str {
            "oref0-seed"
        }

        fn decide(&mut self, _step: aps_types::Step, bg: MgDl) -> UnitsPerHour {
            let p = self.profile;
            let glucose = self.take_override("glucose", bg.value());
            self.bg_history.push_back(glucose);
            if self.bg_history.len() > 5 {
                self.bg_history.pop_front();
            }
            let delta = self.take_override("delta", self.avg_delta());
            let iob = self.take_override("iob", self.estimator.iob().value());
            let target = self.take_override("target_bg", p.target_bg);
            let isf = self.take_override("isf", p.isf).max(1.0);
            let trend = delta * p.trend_horizon_min / aps_types::CONTROL_CYCLE_MINUTES;
            let naive_eventual = glucose - iob * isf;
            let eventual_bg = self.take_override("eventual_bg", naive_eventual + trend);
            let mut rate = if glucose < p.suspend_bg || eventual_bg < p.suspend_eventual_bg {
                0.0
            } else {
                let error = eventual_bg - target;
                let insulin_req = error / isf;
                let correction = insulin_req * 60.0 / p.correction_horizon_min;
                p.basal + correction
            };
            if rate > p.basal && iob >= p.max_iob {
                rate = p.basal;
            }
            rate = rate.clamp(0.0, p.max_basal);
            let rate = self.take_override("rate", rate);
            let rate = UnitsPerHour(rate.clamp(0.0, p.max_basal));
            self.last_vars.insert("glucose", glucose);
            self.last_vars.insert("delta", delta);
            self.last_vars.insert("iob", iob);
            self.last_vars.insert("eventual_bg", eventual_bg);
            self.last_vars.insert("rate", rate.value());
            self.last_vars.insert("target_bg", target);
            self.last_vars.insert("isf", isf);
            self.prev_rate = rate;
            rate
        }

        fn iob(&self) -> Units {
            self.estimator.iob()
        }

        fn previous_rate(&self) -> UnitsPerHour {
            self.prev_rate
        }

        fn target_bg(&self) -> MgDl {
            MgDl(self.profile.target_bg)
        }

        fn basal_rate(&self) -> UnitsPerHour {
            UnitsPerHour(self.profile.basal)
        }

        fn reset(&mut self) {
            self.estimator
                .set_basal_baseline(UnitsPerHour(self.profile.basal));
            self.estimator
                .prefill_basal(UnitsPerHour(self.profile.basal));
            self.bg_history.clear();
            self.prev_rate = UnitsPerHour(self.profile.basal);
            self.overrides.clear();
            self.last_vars.clear();
        }

        fn observe_delivery(&mut self, delivered: UnitsPerHour) {
            self.estimator.record(delivered);
        }

        fn state_vars(&self) -> Vec<StateVar> {
            let p = &self.profile;
            vec![
                StateVar {
                    name: "glucose",
                    min: 40.0,
                    max: 400.0,
                },
                StateVar {
                    name: "iob",
                    min: 0.0,
                    max: p.max_iob * 2.0,
                },
                StateVar {
                    name: "eventual_bg",
                    min: 40.0,
                    max: 400.0,
                },
                StateVar {
                    name: "rate",
                    min: 0.0,
                    max: p.max_basal,
                },
                StateVar {
                    name: "target_bg",
                    min: 80.0,
                    max: 200.0,
                },
                StateVar {
                    name: "isf",
                    min: 10.0,
                    max: 120.0,
                },
                StateVar {
                    name: "delta",
                    min: -20.0,
                    max: 20.0,
                },
            ]
        }

        fn get_state(&self, var: &str) -> Option<f64> {
            self.last_vars.get(var).copied()
        }

        fn set_state(&mut self, var: &str, value: f64) -> bool {
            let known = self.state_vars().into_iter().find(|v| v.name == var);
            match known {
                Some(v) => {
                    self.overrides.insert(v.name, value);
                    true
                }
                None => false,
            }
        }
    }

    struct Job {
        patient_idx: usize,
        initial_bg: f64,
        scenario: Option<FaultScenario>,
    }

    fn expand(spec: &CampaignSpec) -> Vec<Job> {
        let platform = spec.platform;
        let probe = platform.patients().remove(0);
        let targets = platform.primary_targets(probe.as_ref());
        let scenarios = campaign_grid(&targets, &spec.faults);
        let mut jobs = Vec::new();
        for &pi in &spec.patient_indices {
            for &bg0 in &spec.initial_bgs {
                if spec.include_fault_free {
                    jobs.push(Job {
                        patient_idx: pi,
                        initial_bg: bg0,
                        scenario: None,
                    });
                }
                for s in &scenarios {
                    jobs.push(Job {
                        patient_idx: pi,
                        initial_bg: bg0,
                        scenario: Some(s.clone()),
                    });
                }
            }
        }
        jobs
    }

    fn run_job(spec: &CampaignSpec, job: &Job) -> SimTrace {
        let params = glucosym_params().remove(job.patient_idx);
        let mut patient = SeedBergmanPatient::new(params);
        // The profile the Glucosym platform would build for this
        // patient, driven through the seed-faithful controller.
        let basal = patient.equilibrium_basal(MgDl(120.0)).value().max(0.05);
        let mut controller = SeedOref0Controller::new(Oref0Profile {
            basal,
            max_basal: (4.0 * basal).max(2.0),
            ..Oref0Profile::default()
        });
        let mut injector = job.scenario.clone().map(FaultInjector::new);
        let config = LoopConfig {
            steps: spec.steps,
            initial_bg: job.initial_bg,
            cgm: spec.cgm,
            ..LoopConfig::default()
        };
        run(
            &mut patient,
            &mut controller,
            None,
            injector.as_mut(),
            &config,
        )
    }

    /// The seed's executor: an atomic job counter feeding scoped
    /// workers that all write through one global mutex-guarded result
    /// vector.
    pub fn run_campaign(spec: &CampaignSpec) -> Vec<SimTrace> {
        let jobs = expand(spec);
        let n = jobs.len();
        // Worker resolution is shared with the modern executors (the
        // seed's raw `available_parallelism().unwrap_or(1)` fallback
        // lived here *and* at the report top — one helper now), so the
        // reported provenance covers this executor too.
        let workers = bench_workers().0.min(n.max(1));
        if workers <= 1 {
            return jobs.iter().map(|j| run_job(spec, j)).collect();
        }
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<SimTrace>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let trace = run_job(spec, &jobs[i]);
                    // A poisoned lock still holds valid data: writers
                    // only ever fill disjoint slots, so recover the
                    // guard instead of propagating the panic.
                    results
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)[i] = Some(trace);
                });
            }
        });
        let collected: Vec<SimTrace> = results
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .into_iter()
            .flatten()
            .collect();
        // Every index < n is claimed exactly once by the atomic
        // counter; a shorter vector means a worker died mid-job.
        assert_eq!(collected.len(), n, "seed executor dropped a job");
        collected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_patient_matches_optimized_patient() {
        // The baseline must be *faithful*: its trajectory agrees with
        // the optimized patient (the integrator rewrite is
        // bit-identical, so so are the patients).
        use aps_glucose::bergman::BergmanPatient;
        let params = glucosym_params().remove(0);
        let mut seed = seed_baseline::SeedBergmanPatient::new(params.clone());
        let mut opt = BergmanPatient::new(params);
        seed.reset(MgDl(140.0));
        opt.reset(MgDl(140.0));
        for i in 0..100 {
            let rate = UnitsPerHour(0.5 + 0.1 * f64::from(i % 7));
            seed.step(rate, 5.0);
            opt.step(rate, 5.0);
            assert_eq!(seed.bg(), opt.bg(), "diverged at cycle {i}");
        }
    }

    #[test]
    fn speedup_guard_thresholds() {
        let t = Throughput::from_secs(1.0, 62, 150);
        let report = |speedup: f64, batched_speedup: f64| CampaignBenchReport {
            campaign: "quick".to_owned(),
            runs: 62,
            steps_per_run: 150,
            workers: 1,
            reps: 1,
            baseline: t.clone(),
            optimized: t.clone(),
            speedup,
            batched_speedup,
            ..CampaignBenchReport::default()
        };
        let committed = report(3.4, 6.0);
        assert!(check_speedup_guard(&report(3.4, 6.0), &committed, 0.8).is_ok());
        assert!(check_speedup_guard(&report(2.8, 4.9), &committed, 0.8).is_ok());
        // Below 80% of the committed value: regression.
        assert!(check_speedup_guard(&report(2.6, 6.0), &committed, 0.8).is_err());
        assert!(check_speedup_guard(&report(f64::NAN, 6.0), &committed, 0.8).is_err());
        // The batched speedup is guarded independently.
        assert!(check_speedup_guard(&report(3.4, 4.7), &committed, 0.8).is_err());
        assert!(check_speedup_guard(&report(3.4, f64::NAN), &committed, 0.8).is_err());
        // A faster run always passes.
        assert!(check_speedup_guard(&report(5.0, 9.0), &committed, 0.8).is_ok());
        // Pre-batching committed reports (serde-default 0) leave the
        // batched guard unarmed.
        let legacy = report(3.4, 0.0);
        assert!(check_speedup_guard(&report(3.4, 0.0), &legacy, 0.8).is_ok());
        assert!(check_speedup_guard(&report(3.4, f64::NAN), &legacy, 0.8).is_ok());
    }

    #[test]
    fn sweep_gate_enforces_two_worker_ratio() {
        let point = |workers: usize, scalar_rps: f64, batched_rps: f64| WorkerSweepPoint {
            workers,
            scalar: Throughput {
                secs: 1.0,
                runs_per_sec: scalar_rps,
                steps_per_sec: scalar_rps * 150.0,
            },
            batched: Throughput {
                secs: 1.0,
                runs_per_sec: batched_rps,
                steps_per_sec: batched_rps * 150.0,
            },
        };
        let report = |two_rps: f64| CampaignBenchReport {
            sweep: vec![point(1, 1000.0, 4000.0), point(2, two_rps, 6000.0)],
            ..CampaignBenchReport::default()
        };
        // 1.8x scaling clears the 1.3x bar.
        assert!(check_sweep_gate(&report(1800.0), 1.3).is_ok());
        // 1.1x does not.
        let err = check_sweep_gate(&report(1100.0), 1.3).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        // Missing sweep points and degenerate throughputs are typed
        // failures, not panics.
        let empty = CampaignBenchReport::default();
        assert!(check_sweep_gate(&empty, 1.3)
            .unwrap_err()
            .contains("--sweep-workers"));
        assert!(check_sweep_gate(&report(f64::NAN), 1.3).is_err());
        let zero_base = CampaignBenchReport {
            sweep: vec![point(1, 0.0, 0.0), point(2, 1000.0, 1000.0)],
            ..CampaignBenchReport::default()
        };
        assert!(check_sweep_gate(&zero_base, 1.3).is_err());
    }

    #[test]
    fn bench_report_shape() {
        let report = run_campaign_bench(1, true);
        assert_eq!(report.runs, 62);
        assert!(report.baseline.secs > 0.0 && report.optimized.secs > 0.0);
        assert!(report.batched.secs > 0.0);
        assert!(report.speedup > 0.0);
        assert!(report.batched_speedup > 0.0);
        assert!(report.batched_vs_optimized > 0.0);
        // Sweep starts at one worker and doubles.
        assert!(report.sweep.len() >= 2);
        assert_eq!(report.sweep[0].workers, 1);
        assert_eq!(report.sweep[1].workers, 2);
        assert!(report
            .sweep
            .iter()
            .all(|p| p.scalar.secs > 0.0 && p.batched.secs > 0.0));
        let json = serde_json::to_string(&report).unwrap();
        let back: CampaignBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn legacy_bench_report_json_still_loads() {
        // A pre-batching BENCH_campaign.json (no batched/sweep fields)
        // must keep deserializing — the CI guard reads the committed
        // file before overwriting it.
        let legacy = r#"{
            "campaign": "quick", "runs": 62, "steps_per_run": 150,
            "workers": 1, "reps": 5,
            "baseline": {"secs": 0.04, "runs_per_sec": 1550.0, "steps_per_sec": 232500.0},
            "optimized": {"secs": 0.008, "runs_per_sec": 7750.0, "steps_per_sec": 1162500.0},
            "speedup": 5.0
        }"#;
        let report: CampaignBenchReport = serde_json::from_str(legacy).unwrap();
        assert_eq!(report.speedup, 5.0);
        assert_eq!(report.batched_speedup, 0.0);
        assert!(report.sweep.is_empty());
        assert_eq!(report.worker_source, WorkerSource::Detected);
    }
}
