//! The monitor zoo: construction and training of every monitor the
//! paper compares.

use crate::opts::ExpOpts;
use aps_core::learning::{learn_thresholds, traces_for_patient, LearnConfig};
use aps_core::monitors::{
    CawMonitor, ForecastBand, ForecastMonitor, GuidelineConfig, GuidelineMonitor, HazardMonitor,
    LstmMonitor, MlMonitor, MonitorBank, MpcMonitor, RiskIndexMonitor,
};
use aps_core::scs::Scs;
use aps_ml::data::{Dataset, StandardScaler};
use aps_ml::forecast::ForecastModel;
use aps_ml::lstm::{Lstm, LstmConfig, SeqDataset};
use aps_ml::mlp::{Mlp, MlpConfig};
use aps_ml::tree::{DecisionTree, TreeConfig};
use aps_sim::dataset::{balance, build_dataset, build_seq_dataset, LabelMode};
use aps_sim::platform::Platform;
use aps_types::{SimTrace, UnitsPerHour};
use std::collections::HashMap;

/// The monitors of Tables V–VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MonitorKind {
    /// Medical-guidelines baseline (Table III).
    Guideline,
    /// Model-predictive-control baseline (Eq. 6).
    Mpc,
    /// Context-aware, guideline-default thresholds.
    Cawot,
    /// Context-aware with learned patient-specific thresholds.
    Cawt,
    /// Context-aware with population-based thresholds (Table VIII).
    CawtPopulation,
    /// Decision-tree baseline (binary).
    Dt,
    /// MLP baseline (binary).
    Mlp,
    /// LSTM baseline (binary, 30-minute window).
    Lstm,
    /// Decision tree retrained as 3-class (§VI ablation).
    DtMulti,
    /// MLP retrained as 3-class (§VI ablation).
    MlpMulti,
    /// Streaming BG-risk-index ground truth (alerts at hazard onset;
    /// the reaction-time floor every predictive monitor should beat).
    RiskIndex,
    /// Learned predictive glucose forecaster (`repro train` artifact):
    /// an incremental LSTM predicting BG at a fixed horizon, alerting
    /// when the prediction crosses the risk-derived hazard band.
    Forecast,
}

impl MonitorKind {
    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            MonitorKind::Guideline => "Guideline",
            MonitorKind::Mpc => "MPC",
            MonitorKind::Cawot => "CAWOT",
            MonitorKind::Cawt => "CAWT",
            MonitorKind::CawtPopulation => "CAWT-pop",
            MonitorKind::Dt => "DT",
            MonitorKind::Mlp => "MLP",
            MonitorKind::Lstm => "LSTM",
            MonitorKind::DtMulti => "DT-3c",
            MonitorKind::MlpMulti => "MLP-3c",
            MonitorKind::RiskIndex => "RiskIdx",
            MonitorKind::Forecast => "Forecast",
        }
    }

    /// `true` for monitors needing trained artifacts.
    pub fn needs_training(&self) -> bool {
        !matches!(
            self,
            MonitorKind::Guideline | MonitorKind::Mpc | MonitorKind::Cawot | MonitorKind::RiskIndex
        )
    }
}

/// The LSTM monitor's sliding-window length (30 minutes).
pub const LSTM_WINDOW: usize = 6;

/// Trained artifacts for one platform, built from one training set.
pub struct Zoo {
    platform: Platform,
    basal_by_patient: HashMap<String, UnitsPerHour>,
    cawot: Scs,
    cawt_by_patient: HashMap<String, Scs>,
    cawt_population: Scs,
    ml: Option<MlArtifacts>,
    forecast: Option<ForecastModel>,
}

/// Trained ML baselines (scaler + models), built on demand.
pub struct MlArtifacts {
    scaler: StandardScaler,
    dt: DecisionTree,
    dt_multi: DecisionTree,
    mlp: Mlp,
    mlp_multi: Mlp,
    lstm: Lstm,
}

/// Deterministically caps a flat dataset at `cap` samples (stride
/// subsampling; 0 disables).
fn cap_dataset(ds: Dataset, cap: usize) -> Dataset {
    if cap == 0 || ds.len() <= cap {
        return ds;
    }
    let stride = ds.len().div_ceil(cap);
    let idx: Vec<usize> = (0..ds.len()).step_by(stride).collect();
    ds.subset(&idx)
}

fn cap_seq(ds: SeqDataset, cap: usize) -> SeqDataset {
    if cap == 0 || ds.len() <= cap {
        return ds;
    }
    let stride = ds.len().div_ceil(cap);
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in (0..ds.len()).step_by(stride) {
        x.push(ds.x[i].clone());
        y.push(ds.y[i]);
    }
    SeqDataset::new(x, y)
}

/// Groups traces by patient and builds a flat dataset with the right
/// per-patient basal for context reconstruction.
fn dataset_across_patients(
    traces: &[SimTrace],
    basal_by_patient: &HashMap<String, UnitsPerHour>,
    mode: LabelMode,
) -> Dataset {
    let mut x = Vec::new();
    let mut y = Vec::new();
    let mut by_patient: HashMap<&str, Vec<SimTrace>> = HashMap::new();
    for t in traces {
        by_patient
            .entry(t.meta.patient.as_str())
            .or_default()
            .push(t.clone());
    }
    let mut keys: Vec<&str> = by_patient.keys().copied().collect();
    keys.sort_unstable();
    for patient in keys {
        let basal = basal_by_patient
            .get(patient)
            .copied()
            .unwrap_or(UnitsPerHour(1.0));
        let ds = build_dataset(&by_patient[patient], basal, mode);
        x.extend(ds.x);
        y.extend(ds.y);
    }
    Dataset::new(x, y)
}

fn seq_dataset_across_patients(
    traces: &[SimTrace],
    basal_by_patient: &HashMap<String, UnitsPerHour>,
    mode: LabelMode,
) -> SeqDataset {
    let mut x = Vec::new();
    let mut y = Vec::new();
    let mut by_patient: HashMap<&str, Vec<SimTrace>> = HashMap::new();
    for t in traces {
        by_patient
            .entry(t.meta.patient.as_str())
            .or_default()
            .push(t.clone());
    }
    let mut keys: Vec<&str> = by_patient.keys().copied().collect();
    keys.sort_unstable();
    for patient in keys {
        let basal = basal_by_patient
            .get(patient)
            .copied()
            .unwrap_or(UnitsPerHour(1.0));
        let ds = build_seq_dataset(&by_patient[patient], basal, mode, LSTM_WINDOW);
        x.extend(ds.x);
        y.extend(ds.y);
    }
    SeqDataset::new(x, y)
}

impl Zoo {
    /// Trains only the threshold-learning artifacts (CAWT); cheap.
    pub fn train(platform: Platform, opts: &ExpOpts, train_traces: &[SimTrace]) -> Zoo {
        Zoo::train_inner(platform, opts, train_traces, false)
    }

    /// Trains thresholds *and* the ML baselines (DT/MLP/LSTM).
    pub fn train_full(platform: Platform, opts: &ExpOpts, train_traces: &[SimTrace]) -> Zoo {
        Zoo::train_inner(platform, opts, train_traces, true)
    }

    fn train_inner(
        platform: Platform,
        opts: &ExpOpts,
        train_traces: &[SimTrace],
        with_ml: bool,
    ) -> Zoo {
        let basal_by_patient: HashMap<String, UnitsPerHour> = platform
            .patients()
            .iter()
            .map(|p| (p.name().to_owned(), platform.basal_for(p.as_ref())))
            .collect();
        let cawot = Scs::with_default_thresholds(platform.target());

        // Threshold learning: patient-specific and population.
        let learn_cfg = LearnConfig::default();
        let mut cawt_by_patient = HashMap::new();
        for (patient, basal) in &basal_by_patient {
            let subset = traces_for_patient(train_traces, patient);
            let (scs, _fits) = learn_thresholds(&cawot, &subset, *basal, &learn_cfg);
            cawt_by_patient.insert(patient.clone(), scs);
        }
        let mean_basal = UnitsPerHour(
            basal_by_patient.values().map(|b| b.value()).sum::<f64>()
                / basal_by_patient.len().max(1) as f64,
        );
        let (cawt_population, _) = learn_thresholds(&cawot, train_traces, mean_basal, &learn_cfg);

        let ml = with_ml.then(|| {
            // ML datasets (balanced, capped, standardized).
            let flat = dataset_across_patients(train_traces, &basal_by_patient, LabelMode::Binary);
            let flat = cap_dataset(balance(&flat, 3), opts.train_cap);
            let scaler = StandardScaler::fit(&flat);
            let flat_scaled = scaler.transform_dataset(&flat);

            let flat3 =
                dataset_across_patients(train_traces, &basal_by_patient, LabelMode::MultiClass);
            let flat3 = cap_dataset(balance(&flat3, 3), opts.train_cap);
            let flat3_scaled = scaler.transform_dataset(&flat3);

            let seq =
                seq_dataset_across_patients(train_traces, &basal_by_patient, LabelMode::Binary);
            let seq = cap_seq(seq, opts.seq_train_cap);
            let seq_scaled = SeqDataset::new(
                seq.x
                    .iter()
                    .map(|s| s.iter().map(|f| scaler.transform(f)).collect())
                    .collect(),
                seq.y.clone(),
            );

            let tree_cfg = TreeConfig::default();
            let dt = DecisionTree::fit(&flat_scaled, &tree_cfg);
            let dt_multi = DecisionTree::fit(&flat3_scaled, &tree_cfg);

            let mlp_cfg = MlpConfig {
                hidden: opts.mlp_hidden.clone(),
                max_epochs: opts.max_epochs,
                ..MlpConfig::default()
            };
            let mlp = Mlp::fit(&flat_scaled, &mlp_cfg);
            let mlp_multi = Mlp::fit(&flat3_scaled, &mlp_cfg);

            let lstm_cfg = LstmConfig {
                hidden: opts.lstm_hidden.clone(),
                max_epochs: opts.max_epochs.min(30),
                ..LstmConfig::default()
            };
            let lstm = Lstm::fit(&seq_scaled, &lstm_cfg);
            MlArtifacts {
                scaler,
                dt,
                dt_multi,
                mlp,
                mlp_multi,
                lstm,
            }
        });

        Zoo {
            platform,
            basal_by_patient,
            cawot,
            cawt_by_patient,
            cawt_population,
            ml,
            forecast: None,
        }
    }

    /// Attaches a trained forecast bundle (the `repro train` artifact),
    /// enabling [`MonitorKind::Forecast`].
    pub fn with_forecast(mut self, model: ForecastModel) -> Zoo {
        self.forecast = Some(model);
        self
    }

    /// The platform the zoo was trained for.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// The learned patient-specific SCS for one patient.
    pub fn cawt_scs(&self, patient: &str) -> &Scs {
        self.cawt_by_patient
            .get(patient)
            .unwrap_or(&self.cawt_population)
    }

    /// The learned population SCS.
    pub fn population_scs(&self) -> &Scs {
        &self.cawt_population
    }

    /// Basal rate for a patient (monitor context reference).
    pub fn basal(&self, patient: &str) -> UnitsPerHour {
        self.basal_by_patient
            .get(patient)
            .copied()
            .unwrap_or(UnitsPerHour(1.0))
    }

    /// Builds a [`MonitorBank`] of fresh monitors for one patient, in
    /// the given order (the first kind is the primary member). Attach
    /// it to a session via repeated
    /// `SessionBuilder::monitor` calls or feed the members to any bank
    /// consumer — the whole zoo then scores a *single* physics pass.
    ///
    /// # Panics
    ///
    /// As [`Zoo::make`], for ML kinds on a thresholds-only zoo.
    pub fn bank(&self, kinds: &[MonitorKind], patient: &str) -> MonitorBank {
        kinds.iter().map(|&k| self.make(k, patient)).collect()
    }

    /// Builds a fresh monitor of `kind` for a trace's patient.
    ///
    /// # Panics
    ///
    /// Panics when an ML monitor is requested from a zoo trained with
    /// [`Zoo::train`] (thresholds only) instead of
    /// [`Zoo::train_full`], or [`MonitorKind::Forecast`] without a
    /// [`Zoo::with_forecast`] model.
    pub fn make(&self, kind: MonitorKind, patient: &str) -> Box<dyn HazardMonitor> {
        let basal = self.basal(patient);
        let target = self.platform.target();
        let ml = || {
            self.ml
                .as_ref()
                .expect("zoo was trained without ML artifacts")
        };
        match kind {
            MonitorKind::Guideline => Box::new(GuidelineMonitor::new(GuidelineConfig::default())),
            MonitorKind::Mpc => Box::new(MpcMonitor::population()),
            MonitorKind::Cawot => Box::new(CawMonitor::new("cawot", self.cawot.clone(), basal)),
            MonitorKind::Cawt => Box::new(CawMonitor::new(
                "cawt",
                self.cawt_scs(patient).clone(),
                basal,
            )),
            MonitorKind::CawtPopulation => Box::new(CawMonitor::new(
                "cawt-pop",
                self.cawt_population.clone(),
                basal,
            )),
            MonitorKind::Dt => Box::new(MlMonitor::binary(
                "dt",
                Box::new(ml().dt.clone()),
                ml().scaler.clone(),
                basal,
                target,
            )),
            MonitorKind::DtMulti => Box::new(MlMonitor::multiclass(
                "dt-3c",
                Box::new(ml().dt_multi.clone()),
                ml().scaler.clone(),
                basal,
                target,
            )),
            MonitorKind::Mlp => Box::new(MlMonitor::binary(
                "mlp",
                Box::new(ml().mlp.clone()),
                ml().scaler.clone(),
                basal,
                target,
            )),
            MonitorKind::MlpMulti => Box::new(MlMonitor::multiclass(
                "mlp-3c",
                Box::new(ml().mlp_multi.clone()),
                ml().scaler.clone(),
                basal,
                target,
            )),
            MonitorKind::RiskIndex => Box::new(RiskIndexMonitor::default()),
            MonitorKind::Forecast => Box::new(ForecastMonitor::from_model(
                self.forecast
                    .as_ref()
                    .expect("zoo has no forecast model attached (see Zoo::with_forecast)"),
                ForecastBand::default(),
            )),
            MonitorKind::Lstm => Box::new(LstmMonitor::binary(
                "lstm",
                Box::new(ml().lstm.clone()),
                ml().scaler.clone(),
                basal,
                target,
                LSTM_WINDOW,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_sim::campaign::{run_campaign, CampaignSpec};

    #[test]
    fn zoo_trains_and_builds_every_monitor() {
        let platform = Platform::GlucosymOref0;
        let spec = CampaignSpec {
            patient_indices: vec![0],
            initial_bgs: vec![140.0],
            ..CampaignSpec::quick(platform)
        };
        let traces = run_campaign(&spec, None);
        let opts = ExpOpts::quick();
        let zoo = Zoo::train_full(platform, &opts, &traces);
        let kinds = [
            MonitorKind::Guideline,
            MonitorKind::Mpc,
            MonitorKind::Cawot,
            MonitorKind::Cawt,
            MonitorKind::CawtPopulation,
            MonitorKind::Dt,
            MonitorKind::Mlp,
            MonitorKind::Lstm,
            MonitorKind::DtMulti,
            MonitorKind::MlpMulti,
            MonitorKind::RiskIndex,
        ];
        for kind in kinds {
            let mut m = zoo.make(kind, "glucosym/patientA");
            // A monitor must at least survive a few checks.
            let replayed = aps_sim::replay::replay_monitor(&traces[1], m.as_mut());
            assert_eq!(replayed.len(), traces[1].len(), "{}", kind.name());
        }
    }

    #[test]
    fn zoo_builds_monitor_banks_in_order() {
        let platform = Platform::GlucosymOref0;
        let zoo = Zoo::train(platform, &ExpOpts::quick(), &[]);
        let bank = zoo.bank(
            &[
                MonitorKind::Guideline,
                MonitorKind::Cawot,
                MonitorKind::RiskIndex,
            ],
            "glucosym/patientA",
        );
        assert_eq!(bank.len(), 3);
        assert_eq!(bank.names(), vec!["guideline", "cawot", "risk-index"]);
    }

    #[test]
    fn zoo_builds_forecast_monitor_when_attached() {
        let platform = Platform::GlucosymOref0;
        let opts = ExpOpts {
            patients: vec![0],
            steps: 40,
            lstm_hidden: vec![6],
            mlp_hidden: vec![6],
            max_epochs: 1,
            forecast_epochs: 1,
            seq_train_cap: 20,
            out_dir: None,
            ..ExpOpts::quick()
        };
        let model = crate::experiments::train::train_model(&opts);
        let zoo = Zoo::train(platform, &opts, &[]).with_forecast(model);
        let mut m = zoo.make(MonitorKind::Forecast, "glucosym/patientA");
        assert_eq!(m.name(), "forecast");
        let spec = CampaignSpec {
            patient_indices: vec![0],
            initial_bgs: vec![140.0],
            steps: 40,
            ..CampaignSpec::quick(platform)
        };
        let trace = &run_campaign(&spec, None)[0];
        let replayed = aps_sim::replay::replay_monitor(trace, m.as_mut());
        assert_eq!(replayed.len(), trace.len());
    }

    #[test]
    #[should_panic(expected = "no forecast model")]
    fn forecast_kind_without_model_panics() {
        let zoo = Zoo::train(Platform::GlucosymOref0, &ExpOpts::quick(), &[]);
        let _ = zoo.make(MonitorKind::Forecast, "glucosym/patientA");
    }

    #[test]
    fn cap_helpers_respect_limits() {
        let ds = Dataset::new((0..100).map(|i| vec![i as f64]).collect(), vec![0; 100]);
        assert_eq!(cap_dataset(ds.clone(), 0).len(), 100);
        assert!(cap_dataset(ds, 25).len() <= 25);
    }
}
