//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p aps-bench --bin repro -- <experiment> [flags]
//!
//! experiments:
//!   fig3                  loss-function shapes
//!   fig7                  hazard coverage per patient + TTH distribution
//!   fig8                  hazard coverage by fault type x initial BG
//!   fig9                  reaction time per monitor
//!   table5                CAWT vs Guideline/MPC/CAWOT (both platforms)
//!   table6                CAWT vs DT/MLP/LSTM (sample + simulation level)
//!   table7                mitigation: recovery rate / new hazards / risk
//!   table8                patient-specific vs population thresholds
//!   ablation-adversarial  faulty vs fault-free threshold training
//!   ablation-multiclass   binary vs 3-class ML monitors
//!   ablation-faultfree    monitors on fault-free data
//!   ablation-hms          Eq.2 deadlines + context-dependent mitigation
//!   ablation-noise        CAWT accuracy under CGM sensor error
//!   train                 stream a campaign into the forecast dataset, train
//!                         the LSTM + MLP glucose forecasters, save the model
//!                         bundle to results/forecast_model.json
//!   zoo                   monitor zoo via MonitorBank: one physics pass per
//!                         scenario, reaction-time/TTH incl. RiskIdx floor
//!                         and the trained ForecastMonitor row
//!   run --spec F          one session described by a JSON SessionSpec
//!   summary               digest of all recorded results
//!   bench-campaign        campaign-throughput baseline -> BENCH_campaign.json
//!                         (--sweep-workers adds the worker-scaling curve;
//!                         --store PATH also streams the quick campaign into
//!                         a binary trace store)
//!   convert               JSONL <-> binary trace store (--to-store /
//!                         --to-jsonl / --verify / --gen-quick)
//!   lint                  aps-lint static analysis vs the committed baseline
//!   serve                 campaign-service daemon on a Unix socket
//!   submit/status/fetch/cancel/shutdown
//!                         campaign-service client commands
//!   sweep-gate            multi-core scaling gate over a --sweep-workers report
//!   all                   everything above, in order
//!
//! flags (workload scaling):
//!   --quick | --full      presets (default: reduced single-core scale)
//!   --patients 0,1,2      cohort indices
//!   --bgs 100,140,180     initial glucose values
//!   --starts 20,60        fault start steps
//!   --durations 12,30     fault durations (steps)
//!   --folds N             cross-validation folds
//!   --steps N             cycles per simulation (150 = 12 h)
//!   --epochs N            max training epochs for MLP/LSTM
//!   --out DIR | --no-out  JSON result directory (default: results/)
//! ```

use aps_bench::experiments::{
    ablations, accuracy, fig3, hms, mitigation, patient_specific, resilience, train, zoo_report,
};
use aps_bench::ftrun::FtFlags;
use aps_bench::opts::ExpOpts;
use aps_sim::session::{Session, SessionSpec};
use std::time::Instant;

/// `repro run --spec file.json`: one closed-loop session described as
/// data — the scriptable single-run counterpart to the campaign
/// experiments.
fn run_spec(args: &[String]) -> ! {
    let path = match args.iter().position(|a| a == "--spec") {
        Some(pos) => match args.get(pos + 1) {
            Some(p) => p.clone(),
            None => {
                eprintln!("error: missing value for --spec");
                std::process::exit(2);
            }
        },
        None => {
            eprintln!("usage: repro run --spec <file.json>");
            std::process::exit(2);
        }
    };
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read `{path}`: {e}");
            std::process::exit(2);
        }
    };
    let spec: SessionSpec = match serde_json::from_str(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: `{path}` is not a valid session spec: {e:?}");
            std::process::exit(2);
        }
    };
    let mut session = match Session::from_spec(&spec) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let trace = session.run();
    println!("patient    : {}", trace.meta.patient);
    println!(
        "fault      : {}",
        if trace.meta.fault_name.is_empty() {
            "(fault-free)"
        } else {
            &trace.meta.fault_name
        }
    );
    println!("steps      : {}", trace.len());
    println!(
        "hazard     : {}",
        match (trace.meta.hazard_type, trace.meta.hazard_onset) {
            (Some(h), Some(s)) => format!("{h:?} at {} min", s.minutes().value()),
            _ => "none".to_owned(),
        }
    );
    for track in &trace.monitor_tracks {
        println!(
            "monitor {:<11}: first alert {}",
            track.monitor,
            match track.first_alert() {
                Some(s) => format!("at {} min", s.minutes().value()),
                None => "never".to_owned(),
            }
        );
    }
    std::process::exit(0);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = args.first().cloned() else {
        eprintln!("usage: repro <experiment> [flags]   (see --help)");
        std::process::exit(2);
    };
    if which == "--help" || which == "-h" || which == "help" {
        print!("{}", HELP);
        return;
    }
    if which == "run" {
        run_spec(&args[1..]);
    }
    if which == "lint" {
        // Static analysis has its own flag set (baseline paths, ratchet
        // modes) — dispatch before the experiment flag parser.
        std::process::exit(aps_bench::lintcmd::run_lint(&args[1..]));
    }
    if which == "convert" {
        // Corpus conversion likewise has its own flag set (input
        // sniffing, output formats, verification).
        std::process::exit(aps_bench::convert::run_convert(&args[1..]));
    }
    if matches!(
        which.as_str(),
        "serve" | "submit" | "status" | "fetch" | "cancel" | "shutdown" | "sweep-gate"
    ) {
        // Campaign-service daemon/client commands and the CI scaling
        // gate: own flag sets, dispatched before the experiment parser.
        std::process::exit(aps_bench::servicecmd::run_service(&which, &args[1..]));
    }
    // `--guard <baseline.json>` is a bench-campaign-only flag: compare
    // the fresh speedup against a committed report and fail the
    // process below 80% of it (the CI perf-regression guard).
    let guard_baseline = args.iter().position(|a| a == "--guard").map(|pos| {
        if pos + 1 >= args.len() {
            eprintln!("error: missing value for --guard");
            std::process::exit(2);
        }
        let path = args.remove(pos + 1);
        args.remove(pos);
        path
    });
    if guard_baseline.is_some() && which != "bench-campaign" {
        eprintln!("error: --guard only applies to bench-campaign");
        std::process::exit(2);
    }
    // `--store <path>` is bench-campaign-only: additionally stream the
    // quick campaign into a binary trace store at that path (the
    // direct campaign→store emission path).
    let store_path = args.iter().position(|a| a == "--store").map(|pos| {
        if pos + 1 >= args.len() {
            eprintln!("error: missing value for --store");
            std::process::exit(2);
        }
        let path = args.remove(pos + 1);
        args.remove(pos);
        path
    });
    if store_path.is_some() && which != "bench-campaign" {
        eprintln!("error: --store only applies to bench-campaign");
        std::process::exit(2);
    }
    // `--sweep-workers` is likewise bench-campaign-only: re-times the
    // campaign at 1/2/4/... pinned workers (scalar and batched) and
    // records the scaling curve in BENCH_campaign.json.
    let sweep_workers = match args.iter().position(|a| a == "--sweep-workers") {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    };
    if sweep_workers && which != "bench-campaign" {
        eprintln!("error: --sweep-workers only applies to bench-campaign");
        std::process::exit(2);
    }
    // Fault-tolerance flags switch bench-campaign from throughput
    // benchmarking to the hardened executor (ledger, chaos,
    // checkpoint/resume). They are extracted before ExpOpts sees the
    // argument list.
    let ft_flags = match FtFlags::extract(&mut args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if ft_flags.is_some() && which != "bench-campaign" {
        eprintln!("error: fault-tolerance flags only apply to bench-campaign");
        std::process::exit(2);
    }
    if ft_flags.is_some() && guard_baseline.is_some() {
        eprintln!("error: --guard measures the clean path; drop the fault-tolerance flags");
        std::process::exit(2);
    }
    if ft_flags.is_some() && sweep_workers {
        eprintln!("error: --sweep-workers measures the clean path; drop the fault-tolerance flags");
        std::process::exit(2);
    }
    let opts = match ExpOpts::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let start = Instant::now();
    let run_one = |name: &str| match name {
        "fig3" => fig3::run(&opts),
        "fig7" => resilience::fig7(&opts),
        "fig8" => resilience::fig8(&opts),
        "fig9" => accuracy::fig9(&opts),
        "table5" => accuracy::table5(&opts),
        "table6" => accuracy::table6(&opts),
        "table7" => mitigation::table7(&opts),
        "table8" => patient_specific::table8(&opts),
        "ablation-adversarial" => ablations::adversarial(&opts),
        "ablation-multiclass" => ablations::multiclass(&opts),
        "ablation-faultfree" => ablations::fault_free_eval(&opts),
        "ablation-hms" => hms::hms_mitigation(&opts),
        "ablation-noise" => ablations::sensor_noise(&opts),
        "train" => train::train(&opts),
        "zoo" => zoo_report::zoo(&opts),
        "summary" => {
            let dir = opts.out_dir.clone().unwrap_or_else(|| "results".to_owned());
            aps_bench::summary::print_summary(std::path::Path::new(&dir));
        }
        "bench-campaign" => {
            // Perf baseline, not a paper experiment: measures quick-
            // campaign throughput (seed-faithful hot path vs current)
            // and records BENCH_campaign.json for the perf trajectory.
            // With fault-tolerance flags, runs the hardened executor
            // instead (see `aps_bench::ftrun`).
            if let Some(path) = &store_path {
                match aps_bench::convert::emit_quick_store(std::path::Path::new(path)) {
                    Ok(stats) => println!(
                        "store: wrote {path}: {} traces, {} records, {} B",
                        stats.traces, stats.records, stats.bytes
                    ),
                    Err(e) => {
                        eprintln!("error: --store {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            match (&ft_flags, &guard_baseline) {
                (Some(flags), _) => {
                    std::process::exit(aps_bench::ftrun::run_ft_campaign(&opts, flags))
                }
                (None, Some(path)) => aps_bench::perf::bench_campaign_guarded(
                    5,
                    "BENCH_campaign.json",
                    path,
                    sweep_workers,
                ),
                (None, None) => {
                    aps_bench::perf::bench_campaign(5, "BENCH_campaign.json", sweep_workers);
                }
            }
        }
        other => {
            eprintln!("unknown experiment `{other}` (see --help)");
            std::process::exit(2);
        }
    };

    if which == "all" {
        for name in [
            "fig3",
            "fig7",
            "fig8",
            "table5",
            "table6",
            "fig9",
            "table7",
            "table8",
            "ablation-adversarial",
            "ablation-multiclass",
            "ablation-faultfree",
            "ablation-hms",
            "ablation-noise",
            "train",
            "zoo",
        ] {
            println!("\n{}\n## {}\n{}", "=".repeat(72), name, "=".repeat(72));
            run_one(name);
        }
    } else {
        run_one(&which);
    }
    eprintln!("\n[{} finished in {:.1?}]", which, start.elapsed());
}

const HELP: &str = r#"repro — regenerate the paper's tables and figures

usage: repro <experiment> [flags]

experiments:
  fig3, fig7, fig8, fig9, table5, table6, table7, table8,
  ablation-adversarial, ablation-multiclass, ablation-faultfree,
  ablation-hms, ablation-noise, train, zoo, summary, all

prediction:
  train                      stream a fault campaign into the forecast
                             dataset (bounded memory), train the LSTM +
                             MLP glucose forecasters, report val RMSE vs
                             the persistence baseline, and save
                             results/forecast_model.json for the zoo and
                             MonitorSpec::Forecast sessions

sessions:
  run --spec <file.json>     one closed-loop run described as data (a
                             serde SessionSpec: platform, patient,
                             monitors, fault, loop config); prints the
                             hazard verdict and every monitor's first
                             alert

perf:
  bench-campaign             quick-campaign throughput baseline; writes
                             BENCH_campaign.json (seed-faithful vs
                             optimized scalar vs batched lockstep)
  bench-campaign --guard F   also compare against the committed report F
                             and exit non-zero below 80% of its scalar
                             or batched speedup
  bench-campaign --sweep-workers
                             additionally re-time the campaign at
                             1/2/4/... pinned workers (scalar and
                             batched) and record the scaling curve
  bench-campaign --store F   additionally stream the quick campaign
                             into a binary trace store at F

trace storage:
  convert <input>            move a trace corpus between formats; the
                             input format is sniffed (APSTRACE magic =
                             store, else JSONL)
  convert --gen-quick        use a freshly run quick campaign as the
                             corpus instead of reading a file
  convert ... --to-store F   write the corpus as a binary trace store
  convert ... --to-jsonl F   write the corpus as JSON Lines
  convert ... --verify       round-trip in memory, check the store read
                             path is bit-identical, measure read
                             throughput + size vs JSONL, and record
                             results/convert_verify.json (exit 1 on any
                             mismatch)

static analysis:
  lint                       scan the workspace with aps-lint (rule
                             families: alloc, nan, det, serde, sound,
                             unwrap; see lint.toml) and diff against the
                             committed lint.baseline; writes
                             results/lint.json
  lint --deny-new            exit non-zero on any violation not in the
                             baseline (the CI gate)
  lint --write-baseline      regenerate lint.baseline; refuses to grow it
  lint --root/--config/--baseline/--out/--no-out
                             override the default paths

campaign service (daemon + client over a length-prefixed JSON wire
protocol on a Unix socket; shard-resumable, content-addressed cache):
  serve --socket P --data D  run the daemon in the foreground
        [--workers N] [--checkpoint-every N] [--throttle-ms N]
  submit --socket P (--quick | --spec F)
        [--steps N] [--bgs 120,160] [--shards N] [--priority N]
        [--seed S] [--wait] [--verify-serial] [--expect-cached]
                             submit a campaign; --verify-serial waits
                             and requires the service digest to be
                             bit-identical to an in-process serial run;
                             --expect-cached fails unless the result
                             was served from the content-addressed
                             cache with zero executor work
  status --socket P [--job ID] [--wait [--timeout-s N]]
                             job manifests; --wait polls to terminal
  fetch --socket P --job ID [--out F] [--verify-serial]
                             locate/copy a finished job's trace store
  cancel --socket P --job ID / shutdown --socket P
  sweep-gate <report.json> [--min-ratio X]
                             fail unless the recorded 2-worker scalar
                             throughput is >= X times the 1-worker one
                             (default 1.3; the CI scaling gate)

fault tolerance (any of these switches bench-campaign to the hardened
executor: isolated jobs, error ledger, partial results):
  --chaos-seed N             deterministic chaos injection (panics,
                             delays, poisoned specs); same seed =>
                             byte-identical ledger
  --retry N                  attempts per job (default 1)
  --backoff-ms N             base backoff between attempts (doubles per
                             retry, capped)
  --deadline-ms N            per-job wall-clock budget
  --checkpoint PATH          snapshot a resumable checkpoint here
  --checkpoint-every N       snapshot cadence in jobs (default 10)
  --resume PATH              skip jobs a checkpoint already completed;
                             bit-identical to an uninterrupted run
  --workers N                worker threads (also: APS_WORKERS env var)

flags:
  --quick | --full           workload presets
  --patients 0,1,2           cohort indices (default 0..4)
  --bgs 100,140,180          initial glucose values
  --starts 20,60             fault start steps
  --durations 12,30          fault durations in steps
  --folds N                  cross-validation folds (default 4)
  --steps N                  cycles per simulation (default 150)
  --epochs N                 max MLP/LSTM training epochs
  --forecast-epochs N        max forecaster training epochs (train/zoo)
  --out DIR | --no-out       JSON result directory (default results/)
"#;
