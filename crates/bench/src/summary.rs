//! `repro summary` — one-page digest of everything in `results/`.
//!
//! Each experiment subcommand writes a JSON record; this module reads
//! whatever subset exists and prints a single table of headline
//! numbers, so the state of a reproduction run can be reviewed without
//! re-executing anything.

use crate::report::Table;
use serde_json::Value;
use std::collections::BTreeMap;
use std::path::Path;

/// Known experiment files (basename → human title), in report order.
pub const KNOWN: &[(&str, &str)] = &[
    ("fig7", "Fig. 7 — controller resilience"),
    ("table5", "Table V — CAWT vs non-ML monitors"),
    ("table6", "Table VI — CAWT vs ML monitors"),
    ("fig9", "Fig. 9 — reaction time"),
    ("table7", "Table VII — mitigation"),
    ("table8", "Table VIII — patient-specific thresholds"),
    ("ablation_adversarial", "Ablation — adversarial training"),
    ("ablation_multiclass", "Ablation — multi-class ML"),
    ("ablation_faultfree", "Ablation — fault-free overfitting"),
    ("ablation_hms", "Extension — HMS / Eq. 2"),
    ("ablation_noise", "Extension — CGM sensor error"),
];

/// Loads every known result file that exists under `dir`.
pub fn load_results(dir: &Path) -> BTreeMap<String, Value> {
    let mut out = BTreeMap::new();
    for (name, _) in KNOWN {
        let path = dir.join(format!("{name}.json"));
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        if let Ok(value) = serde_json::from_str::<Value>(&text) {
            out.insert((*name).to_owned(), value);
        }
    }
    out
}

/// Extracts the headline line for one experiment's JSON, if possible.
pub fn headline(name: &str, value: &Value) -> Option<String> {
    let rows = value.get("rows").and_then(Value::as_array);
    let pick = |key: &str, row: &Value| row.get(key).and_then(Value::as_f64);
    let find_row = |field: &str, want: &str| -> Option<Value> {
        rows?
            .iter()
            .find(|r| {
                r.get(field)
                    .and_then(Value::as_str)
                    .is_some_and(|s| s.to_ascii_lowercase().contains(&want.to_ascii_lowercase()))
            })
            .cloned()
    };
    match name {
        "fig7" => {
            let coverage = value.get("overall_coverage").and_then(Value::as_f64)?;
            let tth = value.get("tth_mean_min").and_then(Value::as_f64);
            Some(match tth {
                Some(t) => {
                    format!(
                        "hazard coverage {:.1}%, mean TTH {t:.0} min",
                        coverage * 100.0
                    )
                }
                None => format!("hazard coverage {:.1}%", coverage * 100.0),
            })
        }
        "table5" | "table6" => {
            let cawt = find_row("monitor", "cawt")?;
            // Table VI nests sample-level metrics one level down.
            let metrics = cawt.get("sample").cloned().unwrap_or_else(|| cawt.clone());
            Some(format!(
                "CAWT F1 {:.2}, FPR {:.2}, FNR {:.2}",
                pick("f1", &metrics)?,
                pick("fpr", &metrics)?,
                pick("fnr", &metrics)?,
            ))
        }
        "fig9" => {
            let cawt = find_row("monitor", "cawt")?;
            Some(format!(
                "CAWT mean reaction {:.0} min, EDR {:.0}%",
                pick("mean_min", &cawt)?,
                pick("edr", &cawt)? * 100.0,
            ))
        }
        "table7" => {
            let cawt = find_row("monitor", "cawt")?;
            Some(format!(
                "CAWT recovery {:.1}%, {} new hazards, risk {:.2}",
                pick("recovery_rate", &cawt)? * 100.0,
                cawt.get("new_hazards").and_then(Value::as_u64)?,
                pick("avg_risk", &cawt)?,
            ))
        }
        "ablation_hms" => {
            let ctx = find_row("policy", "context")?;
            Some(format!(
                "context-aware recovery {:.1}%, TIR {:.1}%",
                pick("recovery_rate", &ctx)? * 100.0,
                pick("tir", &ctx)? * 100.0,
            ))
        }
        "ablation_noise" => {
            let worst = find_row("condition", "degraded")?;
            Some(format!(
                "degraded-sensor F1 {:.2} (MARD {:.1}%)",
                pick("f1", &worst)?,
                pick("mard", &worst)? * 100.0,
            ))
        }
        _ => {
            let n = rows.map(|r| r.len()).unwrap_or(0);
            (n > 0).then(|| format!("{n} result rows recorded"))
        }
    }
}

/// Prints the digest for `dir`; returns how many experiments were
/// found.
pub fn print_summary(dir: &Path) -> usize {
    let results = load_results(dir);
    println!(
        "reproduction summary — {} of {} experiments recorded in {}\n",
        results.len(),
        KNOWN.len(),
        dir.display()
    );
    let mut table = Table::new(&["experiment", "headline"]);
    for (name, title) in KNOWN {
        let line = match results.get(*name) {
            Some(v) => headline(name, v).unwrap_or_else(|| "recorded (no headline)".into()),
            None => "— not run".into(),
        };
        table.row(&[(*title).to_owned(), line]);
    }
    println!("{}", table.render());
    results.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn headline_for_mitigation_table() {
        let v = json!({"rows": [
            {"monitor": "cawt", "recovery_rate": 0.54, "new_hazards": 8, "avg_risk": 0.02},
            {"monitor": "dt", "recovery_rate": 0.40, "new_hazards": 227, "avg_risk": 0.76},
        ]});
        let h = headline("table7", &v).unwrap();
        assert!(h.contains("54.0%") && h.contains("8 new hazards"), "{h}");
    }

    #[test]
    fn headline_for_hms_extension() {
        let v = json!({"rows": [
            {"policy": "fixed (Algorithm 1)", "recovery_rate": 0.78, "tir": 0.989},
            {"policy": "context-aware f(rho,u)", "recovery_rate": 0.785, "tir": 0.989},
        ]});
        let h = headline("ablation_hms", &v).unwrap();
        assert!(h.contains("78.5%"), "{h}");
    }

    #[test]
    fn headline_tolerates_missing_fields() {
        assert_eq!(headline("table7", &json!({"rows": []})), None);
        assert_eq!(headline("table5", &json!({})), None);
        let generic = headline("ablation_multiclass", &json!({"rows": [{}, {}]}));
        assert_eq!(generic.as_deref(), Some("2 result rows recorded"));
    }

    #[test]
    fn load_results_skips_missing_and_malformed() {
        let dir = std::env::temp_dir().join("aps_summary_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("table7.json"), r#"{"rows": []}"#).unwrap();
        std::fs::write(dir.join("fig9.json"), "not json").unwrap();
        let results = load_results(&dir);
        assert!(results.contains_key("table7"));
        assert!(!results.contains_key("fig9"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn print_summary_counts_found_experiments() {
        let dir = std::env::temp_dir().join("aps_summary_count_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("ablation_noise.json"),
            r#"{"rows": [{"condition": "degraded sensor", "f1": 0.67, "mard": 0.086}]}"#,
        )
        .unwrap();
        assert_eq!(print_summary(&dir), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
