//! `repro lint` — run the [`aps_lint`] static analyzer over the
//! workspace and diff the findings against the committed baseline.
//!
//! Exit codes follow the `ftrun` convention: `0` clean (or violations
//! all baselined), `1` hard failure (new violations under
//! `--deny-new`, ratchet refusal, bad config, I/O), `2` usage.

use crate::report;
use aps_lint::baseline::{diff_new, write_ratchet, Baseline, WriteOutcome};
use aps_lint::config::LintConfig;
use aps_lint::rules::RuleId;
use serde_json::{json, Value};
use std::path::PathBuf;
use std::time::Instant;

/// Parsed `repro lint` flags.
struct LintFlags {
    root: PathBuf,
    config: Option<PathBuf>,
    baseline: Option<PathBuf>,
    deny_new: bool,
    write_baseline: bool,
    out_dir: Option<String>,
}

impl LintFlags {
    fn parse(args: &[String]) -> Result<LintFlags, String> {
        let mut flags = LintFlags {
            root: PathBuf::from("."),
            config: None,
            baseline: None,
            deny_new: false,
            write_baseline: false,
            out_dir: Some("results".to_owned()),
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut path_value = |name: &str| -> Result<PathBuf, String> {
                it.next()
                    .map(PathBuf::from)
                    .ok_or_else(|| format!("missing value for {name}"))
            };
            match arg.as_str() {
                "--deny-new" => flags.deny_new = true,
                "--write-baseline" => flags.write_baseline = true,
                "--root" => flags.root = path_value("--root")?,
                "--config" => flags.config = Some(path_value("--config")?),
                "--baseline" => flags.baseline = Some(path_value("--baseline")?),
                "--out" => {
                    flags.out_dir = Some(path_value("--out")?.to_string_lossy().into_owned());
                }
                "--no-out" => flags.out_dir = None,
                other => return Err(format!("unknown lint flag `{other}`")),
            }
        }
        Ok(flags)
    }
}

/// Runs the lint subcommand; returns the process exit code.
pub fn run_lint(args: &[String]) -> i32 {
    let flags = match LintFlags::parse(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: repro lint [--deny-new] [--write-baseline] [--root DIR] \
                 [--config FILE] [--baseline FILE] [--out DIR | --no-out]"
            );
            return 2;
        }
    };
    let config_path = flags
        .config
        .clone()
        .unwrap_or_else(|| flags.root.join("lint.toml"));
    let baseline_path = flags
        .baseline
        .clone()
        .unwrap_or_else(|| flags.root.join("lint.baseline"));

    let config_text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", config_path.display());
            return 1;
        }
    };
    let cfg = match LintConfig::parse(&config_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {}: {e}", config_path.display());
            return 1;
        }
    };

    let start = Instant::now();
    let run = match aps_lint::lint_workspace(&flags.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: lint walk failed: {e}");
            return 1;
        }
    };
    let elapsed = start.elapsed();

    if flags.write_baseline {
        return match write_ratchet(&baseline_path, &run.violations) {
            Ok(Ok(WriteOutcome::Created { accepted })) => {
                println!(
                    "lint: created {} with {accepted} accepted instance(s)",
                    baseline_path.display()
                );
                0
            }
            Ok(Ok(WriteOutcome::Ratcheted { removed })) => {
                println!(
                    "lint: rewrote {} (ratcheted down by {removed} instance(s))",
                    baseline_path.display()
                );
                0
            }
            Ok(Err(grown)) => {
                eprintln!(
                    "lint: REFUSING to grow the baseline — fix these first \
                     (or add the lines by hand in review):"
                );
                for key in grown {
                    eprintln!("  + {}", key.replace('\t', "  "));
                }
                1
            }
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", baseline_path.display());
                1
            }
        };
    }

    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b.unwrap_or_default(),
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", baseline_path.display());
            return 1;
        }
    };
    let new = diff_new(&run.violations, &baseline);

    // Per-rule summary.
    println!(
        "lint: {} file(s), {} violation(s) ({} baselined, {} new) in {:.0?}",
        run.files_scanned,
        run.violations.len(),
        run.violations.len() - new.len(),
        new.len(),
        elapsed
    );
    for rule in RuleId::ALL {
        let total = run.violations.iter().filter(|v| v.rule == rule).count();
        let fresh = new.iter().filter(|v| v.rule == rule).count();
        if total > 0 {
            println!("  {:<6} {total:>4} ({fresh} new)", rule.as_str());
        }
    }
    if !new.is_empty() {
        println!("\nnew violations (not in {}):", baseline_path.display());
        for v in &new {
            println!(
                "  {}:{}: [{}] {} in `{}`",
                v.file,
                v.line,
                v.rule.as_str(),
                v.what,
                v.scope
            );
        }
    }

    // JSON artifact for CI.
    let new_rows: Vec<Value> = new
        .iter()
        .map(|v| {
            json!({
                "rule": v.rule.as_str(),
                "file": v.file.as_str(),
                "line": v.line,
                "scope": v.scope.as_str(),
                "what": v.what.as_str(),
            })
        })
        .collect();
    let per_rule: Vec<Value> = RuleId::ALL
        .iter()
        .map(|r| {
            json!({
                "rule": r.as_str(),
                "total": run.violations.iter().filter(|v| v.rule == *r).count(),
                "new": new.iter().filter(|v| v.rule == *r).count(),
            })
        })
        .collect();
    let doc = json!({
        "files_scanned": run.files_scanned,
        "total": run.violations.len(),
        "baselined": run.violations.len() - new_rows.len(),
        "new": Value::Array(new_rows),
        "per_rule": Value::Array(per_rule),
        "deny_new": flags.deny_new,
    });
    report::write_json(&flags.out_dir, "lint", &doc);

    if flags.deny_new && !new.is_empty() {
        eprintln!(
            "\nlint: {} new violation(s); fix them or (for accepted debt) add \
             the lines to {} by hand",
            new.len(),
            baseline_path.display()
        );
        return 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        let f = LintFlags::parse(&[
            "--deny-new".to_owned(),
            "--root".to_owned(),
            "/tmp/x".to_owned(),
            "--no-out".to_owned(),
        ])
        .unwrap();
        assert!(f.deny_new);
        assert!(!f.write_baseline);
        assert_eq!(f.root, PathBuf::from("/tmp/x"));
        assert!(f.out_dir.is_none());
        assert!(LintFlags::parse(&["--bogus".to_owned()]).is_err());
        assert!(LintFlags::parse(&["--config".to_owned()]).is_err());
    }
}
