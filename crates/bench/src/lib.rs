//! Experiment harness reproducing every table and figure of the
//! paper's evaluation (§V) plus the discussion ablations (§VI).
//!
//! The `repro` binary exposes one subcommand per experiment; this
//! library holds the shared machinery:
//!
//! * [`opts::ExpOpts`] — workload scaling (patients, initial BGs,
//!   fault grid, folds) with `--full` for paper-scale runs;
//! * [`zoo`] — construction and training of every monitor the paper
//!   compares (Guideline, MPC, CAWOT, CAWT, DT, MLP, LSTM);
//! * [`experiments`] — one module per table/figure;
//! * [`report`] — aligned text tables and JSON result dumps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod experiments;
pub mod ftrun;
pub mod lintcmd;
pub mod opts;
pub mod perf;
pub mod report;
pub mod servicecmd;
pub mod summary;
pub mod zoo;
