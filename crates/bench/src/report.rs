//! Text-table rendering and JSON result persistence.

use serde_json::Value;
use std::fs;
use std::path::Path;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (missing cells become empty).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_owned()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as the paper prints them (`<0.01` below 1%).
pub fn rate(v: f64) -> String {
    if v > 0.0 && v < 0.01 {
        "<0.01".to_owned()
    } else {
        format!("{v:.2}")
    }
}

/// Writes a JSON result document under `out_dir` (created on demand).
/// No-op when `out_dir` is `None`.
pub fn write_json(out_dir: &Option<String>, name: &str, value: &Value) {
    let Some(dir) = out_dir else { return };
    let path = Path::new(dir);
    if let Err(e) = fs::create_dir_all(path) {
        eprintln!("warning: cannot create {dir}: {e}");
        return;
    }
    let file = path.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = fs::write(&file, s) {
                eprintln!("warning: cannot write {}: {e}", file.display());
            } else {
                println!("  [results written to {}]", file.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["monitor", "F1"]);
        t.row(&["guideline".to_owned(), "0.73".to_owned()]);
        t.row(&["cawt".to_owned(), "0.97".to_owned()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("monitor"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].starts_with("guideline"));
        // Columns aligned: "F1" starts at the same offset everywhere.
        let col = lines[0].find("F1").unwrap();
        assert_eq!(&lines[2][col..col + 4], "0.73");
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(rate(0.005), "<0.01");
        assert_eq!(rate(0.0), "0.00");
        assert_eq!(rate(0.25), "0.25");
    }

    #[test]
    fn write_json_none_is_noop() {
        write_json(&None, "x", &serde_json::json!({"a": 1}));
    }
}
