//! `repro` service subcommands — the CLI face of the campaign
//! orchestrator daemon in [`aps_service`]:
//!
//! * `serve` — run the daemon on a Unix socket;
//! * `submit` / `status` / `fetch` / `cancel` / `shutdown` — the
//!   client side, speaking the length-prefixed JSON wire protocol;
//! * `sweep-gate` — the multi-core scaling gate over a recorded
//!   `bench-campaign --sweep-workers` report.
//!
//! Output is line-oriented `key        : value` pairs so CI shell
//! steps can extract fields with `grep`/`awk` (e.g.
//! `grep '^job' | awk '{print $3}'`).

use std::path::Path;
use std::time::{Duration, Instant};

use crate::perf::{check_sweep_gate, CampaignBenchReport};
use aps_service::{run_daemon, Client, JobManifest, ServiceConfig};
use aps_sim::campaign::{run_campaign_ft, CampaignOptions, CampaignSpec};
use aps_sim::platform::Platform;
use aps_tracestore::{read_store, TraceStoreReader};

/// Dispatches one service subcommand. Returns the process exit code:
/// `0` success, `1` operational failure, `2` usage error.
pub fn run_service(cmd: &str, args: &[String]) -> i32 {
    let args = args.to_vec();
    let result = match cmd {
        "serve" => run_serve(args),
        "submit" => run_submit(args),
        "status" => run_status(args),
        "fetch" => run_fetch(args),
        "cancel" => run_cancel(args),
        "shutdown" => run_shutdown(args),
        "sweep-gate" => run_sweep_gate(args),
        other => Err(Failure::usage(format!("unknown service command `{other}`"))),
    };
    match result {
        Ok(code) => code,
        Err(failure) => {
            eprintln!("error: {}", failure.detail);
            failure.code
        }
    }
}

/// A failed subcommand: message plus the exit code it maps to.
#[derive(Debug)]
struct Failure {
    code: i32,
    detail: String,
}

impl Failure {
    fn usage(detail: impl Into<String>) -> Failure {
        Failure {
            code: 2,
            detail: detail.into(),
        }
    }

    fn run(detail: impl Into<String>) -> Failure {
        Failure {
            code: 1,
            detail: detail.into(),
        }
    }
}

/// Removes a boolean switch from the argument list.
fn take_switch(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

/// Removes `name VALUE` from the argument list.
fn take_value(args: &mut Vec<String>, name: &str) -> Result<Option<String>, Failure> {
    match args.iter().position(|a| a == name) {
        Some(pos) => {
            if pos + 1 >= args.len() {
                return Err(Failure::usage(format!("missing value for {name}")));
            }
            let value = args.remove(pos + 1);
            args.remove(pos);
            Ok(Some(value))
        }
        None => Ok(None),
    }
}

/// Removes and parses `name VALUE`.
fn take_parsed<T: std::str::FromStr>(
    args: &mut Vec<String>,
    name: &str,
) -> Result<Option<T>, Failure> {
    match take_value(args, name)? {
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| Failure::usage(format!("bad value for {name}: `{raw}`"))),
        None => Ok(None),
    }
}

fn require(value: Option<String>, what: &str) -> Result<String, Failure> {
    value.ok_or_else(|| Failure::usage(format!("missing required {what}")))
}

/// Everything left after flag extraction is an unknown flag.
fn reject_leftovers(args: &[String]) -> Result<(), Failure> {
    match args.first() {
        Some(stray) => Err(Failure::usage(format!("unknown flag `{stray}`"))),
        None => Ok(()),
    }
}

fn connect(socket: &str) -> Result<Client, Failure> {
    Client::connect(Path::new(socket))
        .map_err(|e| Failure::run(format!("cannot connect to {socket}: {e}")))
}

/// `repro serve --socket PATH --data DIR [--workers N]
/// [--checkpoint-every N] [--throttle-ms N]` — run the daemon in the
/// foreground until a client sends `Shutdown`.
fn run_serve(mut args: Vec<String>) -> Result<i32, Failure> {
    let socket = require(take_value(&mut args, "--socket")?, "--socket PATH")?;
    let data = require(take_value(&mut args, "--data")?, "--data DIR")?;
    let workers = take_parsed::<usize>(&mut args, "--workers")?;
    let checkpoint_every = take_parsed::<usize>(&mut args, "--checkpoint-every")?;
    let throttle_ms = take_parsed::<u64>(&mut args, "--throttle-ms")?;
    reject_leftovers(&args)?;

    let mut config = ServiceConfig::new(&socket, &data);
    config.workers = workers;
    if let Some(every) = checkpoint_every {
        config.checkpoint_every = every;
    }
    if let Some(ms) = throttle_ms {
        config.throttle_ms = ms;
    }
    println!("socket     : {socket}");
    println!("data dir   : {data}");
    match run_daemon(config) {
        Ok(()) => {
            println!("daemon     : clean shutdown");
            Ok(0)
        }
        Err(e) => Err(Failure::run(format!("daemon: {e}"))),
    }
}

/// Builds the campaign spec for `submit` from `--quick` or `--spec F`,
/// with optional `--steps` / `--bgs` overrides.
fn load_spec(args: &mut Vec<String>) -> Result<CampaignSpec, Failure> {
    let spec_path = take_value(args, "--spec")?;
    let quick = take_switch(args, "--quick");
    let mut spec = match (quick, spec_path) {
        (true, None) => CampaignSpec::quick(Platform::GlucosymOref0),
        (false, Some(path)) => {
            let json = std::fs::read_to_string(&path)
                .map_err(|e| Failure::run(format!("cannot read `{path}`: {e}")))?;
            serde_json::from_str(&json)
                .map_err(|e| Failure::run(format!("`{path}` is not a campaign spec: {e:?}")))?
        }
        _ => {
            return Err(Failure::usage(
                "submit needs exactly one of --quick or --spec <file.json>",
            ))
        }
    };
    if let Some(steps) = take_parsed::<u32>(args, "--steps")? {
        spec.steps = steps;
    }
    if let Some(raw) = take_value(args, "--bgs")? {
        let mut bgs = Vec::new();
        for part in raw.split(',') {
            bgs.push(
                part.trim()
                    .parse::<f64>()
                    .map_err(|_| Failure::usage(format!("bad value in --bgs: `{part}`")))?,
            );
        }
        spec.initial_bgs = bgs;
    }
    Ok(spec)
}

/// `repro submit --socket PATH (--quick | --spec F) [--steps N]
/// [--bgs 120,160] [--shards N] [--priority N] [--seed S] [--wait]
/// [--verify-serial] [--expect-cached] [--timeout-s N]`.
fn run_submit(mut args: Vec<String>) -> Result<i32, Failure> {
    let socket = require(take_value(&mut args, "--socket")?, "--socket PATH")?;
    let spec = load_spec(&mut args)?;
    let shards = take_parsed::<usize>(&mut args, "--shards")?.unwrap_or(4);
    let priority = take_parsed::<u32>(&mut args, "--priority")?.unwrap_or(0);
    let seed = take_value(&mut args, "--seed")?.unwrap_or_else(|| String::from("0"));
    let wait = take_switch(&mut args, "--wait");
    let verify_serial = take_switch(&mut args, "--verify-serial");
    let expect_cached = take_switch(&mut args, "--expect-cached");
    let timeout_s = take_parsed::<u64>(&mut args, "--timeout-s")?.unwrap_or(300);
    reject_leftovers(&args)?;

    let mut client = connect(&socket)?;
    let submitted = client
        .submit(spec.clone(), shards, priority, &seed)
        .map_err(|e| Failure::run(format!("submit: {e}")))?;
    println!("job        : {}", submitted.job);
    println!("state      : {}", submitted.state);
    println!("cached     : {}", submitted.cached);
    println!("total jobs : {}", submitted.total_jobs);
    if expect_cached && !submitted.cached {
        return Err(Failure::run(
            "expected the submission to be served from cache, but it was queued",
        ));
    }

    if wait || verify_serial || expect_cached {
        // Executed-job count right after submission: a cache hit must
        // not grow it (a re-served job keeps its historical count, so
        // "zero new work" is the invariant, not "zero lifetime work").
        let executed_at_submit = connect(&socket)?
            .status(&submitted.job)
            .ok()
            .and_then(|jobs| jobs.first().map(|m| m.executed_jobs));
        let manifest = wait_terminal(&socket, &submitted.job, timeout_s)?;
        print_manifest(&manifest);
        if manifest.state != "done" {
            return Err(Failure::run(format!(
                "job {} finished in state `{}`",
                manifest.job, manifest.state
            )));
        }
        if expect_cached && Some(manifest.executed_jobs) != executed_at_submit {
            return Err(Failure::run(format!(
                "cache hit still executed jobs ({:?} at submit, {} at completion)",
                executed_at_submit, manifest.executed_jobs
            )));
        }
        if verify_serial {
            // Recompute the whole campaign serially in-process; the
            // sharded/resumed service digest must be bit-identical.
            let reference = run_campaign_ft(&spec, None, &CampaignOptions::default())
                .map_err(|e| Failure::run(format!("serial reference run: {e}")))?;
            if reference.report.digest != manifest.digest {
                return Err(Failure::run(format!(
                    "digest mismatch: service {} != serial {}",
                    manifest.digest, reference.report.digest
                )));
            }
            println!(
                "verify     : digest bit-identical to the uninterrupted serial run ({})",
                manifest.digest
            );
        }
    }
    Ok(0)
}

/// `repro status --socket PATH [--job ID] [--wait] [--timeout-s N]` —
/// with `--wait`, polls until the job is terminal and exits non-zero
/// unless it finished `done`.
fn run_status(mut args: Vec<String>) -> Result<i32, Failure> {
    let socket = require(take_value(&mut args, "--socket")?, "--socket PATH")?;
    let job = take_value(&mut args, "--job")?.unwrap_or_default();
    let wait = take_switch(&mut args, "--wait");
    let timeout_s = take_parsed::<u64>(&mut args, "--timeout-s")?.unwrap_or(300);
    reject_leftovers(&args)?;

    if wait {
        if job.is_empty() {
            return Err(Failure::usage("--wait needs --job ID"));
        }
        let manifest = wait_terminal(&socket, &job, timeout_s)?;
        print_manifest(&manifest);
        return if manifest.state == "done" {
            Ok(0)
        } else {
            Err(Failure::run(format!(
                "job {job} finished in state `{}`",
                manifest.state
            )))
        };
    }

    let jobs = connect(&socket)?
        .status(&job)
        .map_err(|e| Failure::run(format!("status: {e}")))?;
    if jobs.is_empty() {
        println!("(no jobs)");
    }
    for (i, manifest) in jobs.iter().enumerate() {
        if i > 0 {
            println!();
        }
        print_manifest(manifest);
    }
    Ok(0)
}

/// `repro fetch --socket PATH --job ID [--out PATH]
/// [--verify-serial]` — locate (and optionally copy) the finished
/// job's result store; with `--verify-serial`, re-run the campaign
/// serially and require trace-level bit-identity.
fn run_fetch(mut args: Vec<String>) -> Result<i32, Failure> {
    let socket = require(take_value(&mut args, "--socket")?, "--socket PATH")?;
    let job = require(take_value(&mut args, "--job")?, "--job ID")?;
    let out = take_value(&mut args, "--out")?;
    let verify_serial = take_switch(&mut args, "--verify-serial");
    reject_leftovers(&args)?;

    let mut client = connect(&socket)?;
    let (path, info) = client
        .fetch(&job)
        .map_err(|e| Failure::run(format!("fetch: {e}")))?;
    println!("store      : {path}");
    println!("traces     : {}", info.traces);
    println!("records    : {}", info.records);
    println!("bytes      : {}", info.bytes);
    println!("spec hash  : {}", info.spec_hash);
    if let Some(out) = out {
        std::fs::copy(&path, &out)
            .map_err(|e| Failure::run(format!("cannot copy store to `{out}`: {e}")))?;
        println!("copied     : {out}");
    }

    if verify_serial {
        let manifests = client
            .status(&job)
            .map_err(|e| Failure::run(format!("status: {e}")))?;
        let manifest = manifests
            .first()
            .ok_or_else(|| Failure::run(format!("job {job} has no manifest")))?;
        let spec = manifest
            .spec
            .clone()
            .ok_or_else(|| Failure::run(format!("job {job} manifest carries no spec")))?;
        let reference = run_campaign_ft(&spec, None, &CampaignOptions::default())
            .map_err(|e| Failure::run(format!("serial reference run: {e}")))?;
        let serial: Vec<_> = reference
            .outcomes
            .iter()
            .filter_map(|o| o.trace().cloned())
            .collect();
        let reader = TraceStoreReader::open(Path::new(&path))
            .map_err(|e| Failure::run(format!("cannot open store `{path}`: {e}")))?;
        let merged = read_store(&reader);
        if merged != serial {
            return Err(Failure::run(format!(
                "store traces differ from the serial run ({} vs {} traces)",
                merged.len(),
                serial.len()
            )));
        }
        if reference.report.digest != manifest.digest {
            return Err(Failure::run(format!(
                "digest mismatch: service {} != serial {}",
                manifest.digest, reference.report.digest
            )));
        }
        println!(
            "verify     : {} traces bit-identical to the serial run",
            merged.len()
        );
    }
    Ok(0)
}

/// `repro cancel --socket PATH --job ID`.
fn run_cancel(mut args: Vec<String>) -> Result<i32, Failure> {
    let socket = require(take_value(&mut args, "--socket")?, "--socket PATH")?;
    let job = require(take_value(&mut args, "--job")?, "--job ID")?;
    reject_leftovers(&args)?;
    connect(&socket)?
        .cancel(&job)
        .map_err(|e| Failure::run(format!("cancel: {e}")))?;
    println!("cancelled  : {job}");
    Ok(0)
}

/// `repro shutdown --socket PATH`.
fn run_shutdown(mut args: Vec<String>) -> Result<i32, Failure> {
    let socket = require(take_value(&mut args, "--socket")?, "--socket PATH")?;
    reject_leftovers(&args)?;
    connect(&socket)?
        .shutdown()
        .map_err(|e| Failure::run(format!("shutdown: {e}")))?;
    println!("daemon asked to shut down");
    Ok(0)
}

/// `repro sweep-gate <report.json> [--min-ratio X]` — the CI
/// multi-core scaling gate over a `--sweep-workers` report.
fn run_sweep_gate(mut args: Vec<String>) -> Result<i32, Failure> {
    let min_ratio = take_parsed::<f64>(&mut args, "--min-ratio")?.unwrap_or(1.3);
    if args.len() != 1 {
        return Err(Failure::usage(
            "usage: repro sweep-gate <report.json> [--min-ratio X]",
        ));
    }
    let path = args.remove(0);
    let json = std::fs::read_to_string(&path)
        .map_err(|e| Failure::run(format!("cannot read `{path}`: {e}")))?;
    let report: CampaignBenchReport = serde_json::from_str(&json)
        .map_err(|e| Failure::run(format!("`{path}` is not a bench report: {e:?}")))?;
    match check_sweep_gate(&report, min_ratio) {
        Ok(msg) => {
            println!("{msg}");
            Ok(0)
        }
        Err(msg) => Err(Failure::run(msg)),
    }
}

fn wait_terminal(socket: &str, job: &str, timeout_s: u64) -> Result<JobManifest, Failure> {
    let deadline = Instant::now() + Duration::from_secs(timeout_s);
    loop {
        // Reconnect per poll: the daemon may be restarting underneath
        // us (that is exactly the resume scenario CI exercises).
        if let Ok(mut client) = Client::connect(Path::new(socket)) {
            if let Ok(jobs) = client.status(job) {
                if let Some(manifest) = jobs.first() {
                    if manifest.is_terminal() {
                        return Ok(manifest.clone());
                    }
                }
            }
        }
        if Instant::now() >= deadline {
            return Err(Failure::run(format!(
                "timed out after {timeout_s}s waiting for job {job}"
            )));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn print_manifest(m: &JobManifest) {
    println!("job        : {}", m.job);
    println!("state      : {}", m.state);
    println!("cached     : {}", m.cached);
    println!("executed   : {}/{}", m.executed_jobs, m.total_jobs);
    println!("completed  : {}", m.completed_jobs);
    println!("failed     : {}", m.failed_jobs);
    println!("shards     : {}/{}", m.shards_done, m.shards);
    println!("digest     : {}", m.digest);
    if !m.detail.is_empty() {
        println!("detail     : {}", m.detail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{Throughput, WorkerSweepPoint};

    fn strs(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| String::from(*s)).collect()
    }

    #[test]
    fn flag_extraction() {
        let mut args = strs(&["--socket", "/tmp/x.sock", "--wait", "--shards", "3"]);
        assert_eq!(
            take_value(&mut args, "--socket").unwrap().as_deref(),
            Some("/tmp/x.sock")
        );
        assert!(take_switch(&mut args, "--wait"));
        assert!(!take_switch(&mut args, "--wait"));
        assert_eq!(
            take_parsed::<usize>(&mut args, "--shards").unwrap(),
            Some(3)
        );
        assert!(reject_leftovers(&args).is_ok());

        let mut args = strs(&["--shards"]);
        assert!(take_value(&mut args, "--shards").is_err());
        let mut args = strs(&["--shards", "three"]);
        assert!(take_parsed::<usize>(&mut args, "--shards").is_err());
        assert!(reject_leftovers(&strs(&["--bogus"])).is_err());
    }

    #[test]
    fn spec_loading_applies_overrides() {
        let mut args = strs(&["--quick", "--steps", "20", "--bgs", "120,160"]);
        let spec = load_spec(&mut args).unwrap();
        assert_eq!(spec.steps, 20);
        assert_eq!(spec.initial_bgs, vec![120.0, 160.0]);
        assert!(args.is_empty());

        // Exactly one source is required.
        assert!(load_spec(&mut strs(&[])).is_err());
        assert!(load_spec(&mut strs(&["--quick", "--spec", "x.json"])).is_err());
    }

    #[test]
    fn sweep_gate_cli_reads_reports() {
        let point = |workers: usize, rps: f64| WorkerSweepPoint {
            workers,
            scalar: Throughput {
                secs: 1.0,
                runs_per_sec: rps,
                steps_per_sec: rps * 150.0,
            },
            batched: Throughput {
                secs: 1.0,
                runs_per_sec: rps,
                steps_per_sec: rps * 150.0,
            },
        };
        let report = CampaignBenchReport {
            sweep: vec![point(1, 1000.0), point(2, 1700.0)],
            ..CampaignBenchReport::default()
        };
        let dir = std::env::temp_dir().join(format!("apssg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        std::fs::write(&path, serde_json::to_string(&report).unwrap()).unwrap();
        let path = path.display().to_string();

        assert_eq!(run_sweep_gate(strs(&[&path])).unwrap(), 0);
        assert!(run_sweep_gate(strs(&[&path, "--min-ratio", "1.9"])).is_err());
        assert!(run_sweep_gate(strs(&["/nonexistent.json"])).is_err());
        assert!(run_sweep_gate(strs(&[])).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
