//! Table V (CAWT vs non-ML monitors), Table VI (CAWT vs ML monitors)
//! and Fig. 9 (reaction time) — prediction-accuracy experiments.

use crate::experiments::{fold_indices, replay_all, sample_counts, select, simulation_counts};
use crate::opts::ExpOpts;
use crate::report::{rate, write_json, Table};
use crate::zoo::{MonitorKind, Zoo};
use aps_metrics::timing::{early_detection_rate, reaction_time, TimingStats};
use aps_sim::campaign::run_campaign;
use aps_sim::platform::Platform;
use aps_types::SimTrace;
use serde_json::json;
use std::collections::HashMap;

/// Cross-validated replay: trains the zoo per fold (with or without
/// ML artifacts) and replays each monitor kind over that fold's test
/// traces. Returns, per kind, the full campaign with alerts attached
/// (each trace evaluated exactly once, by a model that never saw it).
pub fn cv_replay(
    platform: Platform,
    opts: &ExpOpts,
    traces: &[SimTrace],
    kinds: &[MonitorKind],
    with_ml: bool,
) -> HashMap<MonitorKind, Vec<SimTrace>> {
    let mut out: HashMap<MonitorKind, Vec<SimTrace>> =
        kinds.iter().map(|&k| (k, Vec::new())).collect();
    let needs_training = kinds.iter().any(|k| k.needs_training());
    if !needs_training {
        // No trained artifacts: single pass, no folds needed.
        let zoo = Zoo::train(platform, opts, &[]);
        for &kind in kinds {
            out.entry(kind)
                .or_default()
                .extend(replay_all(&zoo, kind, traces));
        }
        return out;
    }
    for (fold, (train_idx, test_idx)) in fold_indices(traces.len(), opts.folds)
        .into_iter()
        .enumerate()
    {
        eprintln!(
            "  fold {}/{} (train {}, test {})",
            fold + 1,
            opts.folds,
            train_idx.len(),
            test_idx.len()
        );
        let train = select(traces, &train_idx);
        let test = select(traces, &test_idx);
        let zoo = if with_ml {
            Zoo::train_full(platform, opts, &train)
        } else {
            Zoo::train(platform, opts, &train)
        };
        for &kind in kinds {
            out.entry(kind)
                .or_default()
                .extend(replay_all(&zoo, kind, &test));
        }
    }
    out
}

/// Paper reference numbers for Table V, keyed by (platform, monitor):
/// (FPR, FNR, ACC, F1).
fn paper_table5(platform: Platform, kind: MonitorKind) -> Option<(f64, f64, f64, f64)> {
    use MonitorKind::*;
    match (platform, kind) {
        (Platform::GlucosymOref0, Guideline) => Some((0.02, 0.32, 0.95, 0.73)),
        (Platform::GlucosymOref0, Mpc) => Some((0.02, 0.33, 0.95, 0.73)),
        (Platform::GlucosymOref0, Cawot) => Some((0.01, 0.21, 0.96, 0.84)),
        (Platform::GlucosymOref0, Cawt) => Some((0.005, 0.005, 0.99, 0.97)),
        (Platform::T1dsBasalBolus, Guideline) => Some((0.99, 0.00, 0.26, 0.41)),
        (Platform::T1dsBasalBolus, Mpc) => Some((0.01, 0.005, 0.99, 0.96)),
        (Platform::T1dsBasalBolus, Cawot) => Some((0.05, 0.005, 0.96, 0.87)),
        (Platform::T1dsBasalBolus, Cawt) => Some((0.005, 0.02, 1.00, 0.98)),
        _ => None,
    }
}

/// Table V: CAWT vs Guideline / MPC / CAWOT on both platforms.
pub fn table5(opts: &ExpOpts) {
    println!("Table V — CAWT vs non-ML monitors (sample level, tolerance window)\n");
    let mut results = Vec::new();
    for platform in Platform::ALL {
        println!("== {} ==", platform.name());
        let traces = run_campaign(&opts.campaign(platform), None);
        let hazardous =
            traces.iter().filter(|t| t.is_hazardous()).count() as f64 / traces.len() as f64;
        println!(
            "{} simulations, {:.1}% hazardous",
            traces.len(),
            hazardous * 100.0
        );

        let kinds = [
            MonitorKind::Guideline,
            MonitorKind::Mpc,
            MonitorKind::Cawot,
            MonitorKind::Cawt,
        ];
        // Untrained monitors in one pass; CAWT cross-validated.
        let untrained = cv_replay(platform, opts, &traces, &kinds[..3], false);
        let trained = cv_replay(platform, opts, &traces, &kinds[3..], false);

        let mut table = Table::new(&[
            "monitor", "FPR", "FNR", "ACC", "F1", "| paper:", "FPR", "FNR", "ACC", "F1",
        ]);
        for kind in kinds {
            let Some(replayed) = untrained.get(&kind).or_else(|| trained.get(&kind)) else {
                continue; // monitor kind produced no replays: no row
            };
            let c = sample_counts(replayed);
            let mut row = vec![
                kind.name().to_owned(),
                rate(c.fpr()),
                rate(c.fnr()),
                format!("{:.2}", c.accuracy()),
                format!("{:.2}", c.f1()),
                "|".to_owned(),
            ];
            if let Some((fpr, fnr, acc, f1)) = paper_table5(platform, kind) {
                row.extend([
                    rate(fpr),
                    rate(fnr),
                    format!("{acc:.2}"),
                    format!("{f1:.2}"),
                ]);
            }
            results.push(json!({
                "platform": platform.name(),
                "monitor": kind.name(),
                "fpr": c.fpr(), "fnr": c.fnr(), "acc": c.accuracy(), "f1": c.f1(),
            }));
            table.row(&row);
        }
        println!("{}", table.render());
    }
    println!(
        "reproduction target: CAWT holds the best F1 on both platforms; CAWOT sits\n\
         between CAWT and the Guideline/MPC baselines on Glucosym."
    );
    write_json(&opts.out_dir, "table5", &json!({ "rows": results }));
}

/// Paper reference numbers for Table VI (sample level): (FPR, FNR, ACC, F1).
fn paper_table6(platform: Platform, kind: MonitorKind) -> Option<(f64, f64, f64, f64)> {
    use MonitorKind::*;
    match (platform, kind) {
        (Platform::GlucosymOref0, Dt) => Some((0.08, 0.005, 0.93, 0.81)),
        (Platform::GlucosymOref0, Mlp) => Some((0.05, 0.03, 0.96, 0.86)),
        (Platform::GlucosymOref0, Lstm) => Some((0.04, 0.01, 0.96, 0.88)),
        (Platform::GlucosymOref0, Cawt) => Some((0.01, 0.005, 0.99, 0.97)),
        (Platform::T1dsBasalBolus, Dt) => Some((0.20, 0.005, 0.83, 0.62)),
        (Platform::T1dsBasalBolus, Mlp) => Some((0.01, 0.45, 0.93, 0.67)),
        (Platform::T1dsBasalBolus, Lstm) => Some((0.01, 0.03, 0.98, 0.94)),
        (Platform::T1dsBasalBolus, Cawt) => Some((0.005, 0.02, 1.00, 0.98)),
        _ => None,
    }
}

/// Table VI: CAWT vs the ML monitors, sample and simulation level.
pub fn table6(opts: &ExpOpts) {
    println!("Table VI — CAWT vs ML monitors (sample + simulation level)\n");
    let kinds = [
        MonitorKind::Dt,
        MonitorKind::Mlp,
        MonitorKind::Lstm,
        MonitorKind::Cawt,
    ];
    let mut results = Vec::new();
    for platform in Platform::ALL {
        println!("== {} ==", platform.name());
        let traces = run_campaign(&opts.campaign(platform), None);
        let replayed = cv_replay(platform, opts, &traces, &kinds, true);

        let mut table = Table::new(&[
            "monitor",
            "FPR",
            "FNR",
            "ACC",
            "F1",
            "| sim:",
            "FPR",
            "FNR",
            "ACC",
            "F1",
            "| paper F1:",
            "sample",
        ]);
        for kind in kinds {
            let ts = &replayed[&kind];
            let s = sample_counts(ts);
            let sim = simulation_counts(ts);
            let mut row = vec![
                kind.name().to_owned(),
                rate(s.fpr()),
                rate(s.fnr()),
                format!("{:.2}", s.accuracy()),
                format!("{:.2}", s.f1()),
                "|".to_owned(),
                rate(sim.fpr()),
                rate(sim.fnr()),
                format!("{:.2}", sim.accuracy()),
                format!("{:.2}", sim.f1()),
                "|".to_owned(),
            ];
            if let Some((_, _, _, f1)) = paper_table6(platform, kind) {
                row.push(format!("{f1:.2}"));
            }
            results.push(json!({
                "platform": platform.name(), "monitor": kind.name(),
                "sample": {"fpr": s.fpr(), "fnr": s.fnr(), "acc": s.accuracy(), "f1": s.f1()},
                "simulation": {"fpr": sim.fpr(), "fnr": sim.fnr(), "acc": sim.accuracy(), "f1": sim.f1()},
            }));
            table.row(&row);
        }
        println!("{}", table.render());
    }
    println!(
        "reproduction target: CAWT keeps the lowest FPR and best F1; the DT trades\n\
         a very low FNR for a much higher FPR."
    );
    write_json(&opts.out_dir, "table6", &json!({ "rows": results }));
}

/// Fig. 9: average reaction time (minutes before hazard onset) and
/// early-detection rate per monitor.
pub fn fig9(opts: &ExpOpts) {
    println!("Fig. 9 — reaction time per monitor (minutes, positive = early)\n");
    let platform = Platform::GlucosymOref0;
    let traces = run_campaign(&opts.campaign(platform), None);
    let kinds = [
        MonitorKind::Guideline,
        MonitorKind::Mpc,
        MonitorKind::Cawot,
        MonitorKind::Cawt,
        MonitorKind::Dt,
        MonitorKind::Mlp,
        MonitorKind::Lstm,
    ];
    let replayed = cv_replay(platform, opts, &traces, &kinds, true);

    let mut table = Table::new(&["monitor", "mean", "sd", "n", "EDR", "paper mean"]);
    let paper_mean: HashMap<MonitorKind, f64> = [
        (MonitorKind::Guideline, 20.0),
        (MonitorKind::Mpc, 25.0),
        (MonitorKind::Cawt, 120.0),
        (MonitorKind::Dt, 160.0),
        (MonitorKind::Mlp, 160.0),
        (MonitorKind::Lstm, 160.0),
    ]
    .into_iter()
    .collect();
    let mut results = Vec::new();
    for kind in kinds {
        let ts = &replayed[&kind];
        let rts: Vec<f64> = ts.iter().filter_map(reaction_time).collect();
        let stats = TimingStats::from_values(&rts);
        let edr = early_detection_rate(ts.iter());
        results.push(json!({
            "monitor": kind.name(), "mean_min": stats.mean, "sd_min": stats.sd,
            "n": stats.n, "edr": edr,
        }));
        table.row(&[
            kind.name().to_owned(),
            format!("{:.0}", stats.mean),
            format!("{:.0}", stats.sd),
            stats.n.to_string(),
            format!("{:.0}%", edr * 100.0),
            paper_mean
                .get(&kind)
                .map(|m| format!("~{m:.0}"))
                .unwrap_or_default(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "reproduction target: the context-aware monitors alert hours ahead with a\n\
         smaller spread than the Guideline/MPC baselines (paper: CAWT ≈ 2 h early,\n\
         ≥ 1.6 h earlier than Guideline/MPC)."
    );
    write_json(&opts.out_dir, "fig9", &json!({ "rows": results }));
}
