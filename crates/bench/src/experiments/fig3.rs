//! Fig. 3 — loss-function shapes (MSE/MAE vs TeLEx vs TMEE).

use crate::opts::ExpOpts;
use crate::report::{write_json, Table};
use aps_optim::LossKind;
use serde_json::json;

/// Sweeps the residual axis and prints all four loss curves, plus the
/// shape checks Fig. 3 illustrates: symmetric losses are minimized at
/// r = 0, TMEE at a small positive r with an exponential violation
/// wall.
pub fn run(opts: &ExpOpts) {
    println!("Fig. 3 — loss functions over the robustness residual r\n");
    let mut table = Table::new(&["r", "MSE", "MAE", "TeLEx", "TMEE"]);
    let mut r = -3.0;
    while r <= 3.0 + 1e-9 {
        table.row(&[
            format!("{r:+.2}"),
            format!("{:.3}", LossKind::Mse.value(r)),
            format!("{:.3}", LossKind::Mae.value(r)),
            format!("{:.3}", LossKind::Telex.value(r)),
            format!("{:.3}", LossKind::Tmee.value(r)),
        ]);
        r += 0.25;
    }
    println!("{}", table.render());

    // Locate each minimum on a fine grid.
    let argmin = |kind: LossKind| -> f64 {
        let mut best = (f64::INFINITY, 0.0);
        let mut x = -3.0;
        while x <= 3.0 {
            let v = kind.value(x);
            if v < best.0 {
                best = (v, x);
            }
            x += 1e-3;
        }
        best.1
    };
    let mins: Vec<(LossKind, f64)> = LossKind::ALL.iter().map(|&k| (k, argmin(k))).collect();
    println!("minima:");
    for (k, m) in &mins {
        println!("  {:<6} argmin r = {m:+.3}", k.name());
    }
    let tmee_min = argmin(LossKind::Tmee);
    println!(
        "\nshape checks (paper Fig. 3):\n  \
         MSE/MAE minimized at r=0 (can overshoot into violation): {}\n  \
         TMEE minimized at small positive r (tight & safe): {} (r*={tmee_min:.2})\n  \
         TMEE violation wall: TMEE(-1)/TMEE(+1) = {:.1}",
        mins.iter()
            .filter(|(k, _)| matches!(k, LossKind::Mse | LossKind::Mae))
            .all(|(_, m)| m.abs() < 0.01),
        tmee_min > 0.0 && tmee_min < 1.0,
        LossKind::Tmee.value(-1.0) / LossKind::Tmee.value(1.0),
    );

    write_json(
        &opts.out_dir,
        "fig3",
        &json!({
            "minima": mins.iter().map(|(k, m)| json!({"loss": k.name(), "argmin": m})).collect::<Vec<_>>(),
            "tmee_wall_ratio": LossKind::Tmee.value(-1.0) / LossKind::Tmee.value(1.0),
        }),
    );
}
