//! Table VIII — patient-specific vs population-based thresholds.

use crate::experiments::{replay_all, sample_counts};
use crate::opts::ExpOpts;
use crate::report::{rate, write_json, Table};
use crate::zoo::{MonitorKind, Zoo};
use aps_metrics::timing::early_detection_rate;
use aps_sim::campaign::run_campaign;
use aps_sim::platform::Platform;
use serde_json::json;

/// Table VIII: for three named patients, compare a monitor with
/// thresholds learned from the patient's own traces against one with
/// population thresholds learned from the *other* patients (the
/// paper's 70/30 split).
pub fn table8(opts: &ExpOpts) {
    println!("Table VIII — patient-specific vs population-based thresholds\n");
    let platform = Platform::GlucosymOref0;
    // The paper reports patients A, H, J.
    let featured: Vec<usize> = [0usize, 7, 9]
        .into_iter()
        .filter(|i| opts.patients.contains(i))
        .collect();
    let featured = if featured.is_empty() {
        opts.patients.iter().copied().take(3).collect()
    } else {
        featured
    };

    // One campaign over all requested patients.
    let traces = run_campaign(&opts.campaign(platform), None);

    let mut table = Table::new(&["patient", "thresholds", "FPR", "FNR", "ACC", "F1", "EDR"]);
    let mut results = Vec::new();
    for &pi in &featured {
        let patient_name = platform.patients()[pi].name().to_owned();
        let own: Vec<_> = traces
            .iter()
            .filter(|t| t.meta.patient == patient_name)
            .cloned()
            .collect();
        let others: Vec<_> = traces
            .iter()
            .filter(|t| t.meta.patient != patient_name)
            .cloned()
            .collect();

        // Patient-specific: learned on the patient's own traces
        // (70/30 split within the patient).
        let split = (own.len() * 7) / 10;
        let (own_train, own_test) = own.split_at(split.max(1).min(own.len() - 1));
        let zoo_specific = Zoo::train(platform, opts, own_train);
        // Population: learned on every *other* patient, tested on the
        // same held-out traces.
        let zoo_population = Zoo::train(platform, opts, &others);

        for (label, zoo, kind) in [
            ("patient-specific", &zoo_specific, MonitorKind::Cawt),
            ("population", &zoo_population, MonitorKind::CawtPopulation),
        ] {
            let replayed = replay_all(zoo, kind, own_test);
            let c = sample_counts(&replayed);
            let edr = early_detection_rate(replayed.iter());
            table.row(&[
                patient_name.clone(),
                label.to_owned(),
                rate(c.fpr()),
                rate(c.fnr()),
                format!("{:.2}", c.accuracy()),
                format!("{:.2}", c.f1()),
                format!("{:.0}%", edr * 100.0),
            ]);
            results.push(json!({
                "patient": patient_name, "thresholds": label,
                "fpr": c.fpr(), "fnr": c.fnr(), "acc": c.accuracy(),
                "f1": c.f1(), "edr": edr,
            }));
        }
    }
    println!("{}", table.render());
    println!(
        "reproduction target: patient-specific thresholds keep FNR lower and reach a\n\
         higher F1/EDR than population thresholds (paper: up to +24.4% F1, +5.3% EDR)."
    );
    write_json(&opts.out_dir, "table8", &json!({ "rows": results }));
}
