//! HMS extension ablation — fixed Algorithm-1 mitigation vs the
//! context-dependent policy, with data-driven deadline (`t_s`)
//! learning and Eq. 2 compliance checking.
//!
//! The paper evaluates mitigation with a deliberately fixed policy
//! ("we instead use a fixed maximum value of insulin to enable a fair
//! comparison") and leaves both the context-dependent selection
//! function `f(ρ(µ(x)), u_t)` and learning the deadline `t_s` as
//! future work. This experiment implements that future work and
//! quantifies what it buys: the CAWT monitor drives either policy on
//! the same fault campaign, and the mitigated runs are additionally
//! audited against the learned HMS deadlines.

use crate::opts::ExpOpts;
use crate::report::{write_json, Table};
use crate::zoo::{MonitorKind, Zoo};
use aps_core::hms::{Hms, TsLearnConfig};
use aps_core::monitors::HazardMonitor;
use aps_metrics::glycemic::GlycemicSummary;
use aps_metrics::outcome::{average_risk, new_hazards, recovery_rate, RiskContribution};
use aps_risk::mean_risk_index;
use aps_sim::campaign::{run_campaign, CampaignSpec, ScenarioCtx};
use aps_sim::platform::Platform;
use aps_types::Hazard;
use serde_json::json;

/// `repro ablation-hms`: learned mitigation deadlines + fixed vs
/// context-dependent mitigation under the same CAWT monitor.
pub fn hms_mitigation(opts: &ExpOpts) {
    println!("HMS extension — Eq. 2 deadlines and context-dependent mitigation\n");
    let platform = Platform::GlucosymOref0;
    let spec = opts.campaign(platform);

    eprintln!("  baseline campaign ...");
    let baseline = run_campaign(&spec, None);
    let zoo = Zoo::train(platform, opts, &baseline);

    // Deadline learning from the campaign's TTH distribution.
    let scs = zoo.population_scs().clone();
    let mut hms = Hms::for_scs(&scs);
    let updated = hms.learn_ts(&baseline, &TsLearnConfig::default());
    let ts_of = |h: Hazard| {
        hms.rules
            .iter()
            .find(|r| r.hazard == h)
            .map(|r| r.ts_minutes())
            .unwrap_or(f64::NAN)
    };
    println!(
        "learned deadlines t_s from {} hazardous traces ({} rules updated):",
        baseline.iter().filter(|t| t.is_hazardous()).count(),
        updated,
    );
    println!(
        "  H1 (hypoglycemia side): mitigate within {:.0} min",
        ts_of(Hazard::H1)
    );
    println!(
        "  H2 (hyperglycemia side): mitigate within {:.0} min\n",
        ts_of(Hazard::H2)
    );

    let mut table = Table::new(&[
        "mitigation policy",
        "recovery",
        "new hazards",
        "avg risk",
        "TIR",
        "TBR",
        "HMS deadline compliance",
    ]);
    let mut results = Vec::new();
    for (label, context_mitigate) in [
        ("fixed (Algorithm 1)", false),
        ("context-aware f(rho,u)", true),
    ] {
        eprintln!("  mitigated campaign, {label} ...");
        let spec_mit = CampaignSpec {
            mitigate: true,
            context_mitigate,
            ..spec.clone()
        };
        let factory = |ctx: &ScenarioCtx| -> Box<dyn HazardMonitor> {
            zoo.make(MonitorKind::Cawt, &ctx.patient)
        };
        let mitigated = run_campaign(&spec_mit, Some(&factory));

        let pairs: Vec<_> = baseline.iter().zip(mitigated.iter()).collect();
        let recovery = recovery_rate(pairs.iter().copied());
        let new = new_hazards(pairs.iter().copied());
        let contributions: Vec<RiskContribution> = pairs
            .iter()
            .map(|(base, mit)| RiskContribution {
                mean_risk_index: mean_risk_index(&mit.bg_true_series()),
                is_false_negative: base.is_hazardous() && mit.is_hazardous(),
                is_new_hazard: !base.is_hazardous() && mit.is_hazardous(),
            })
            .collect();
        let risk = average_risk(&contributions);

        // Eq. 2 audit: of all unsafe-context entries in the mitigated
        // runs, how many saw a safe corrective action in time?
        let (mut entries, mut honored, mut violations) = (0usize, 0usize, 0usize);
        for trace in &mitigated {
            let report = hms.check_trace(&scs, trace);
            entries += report.entries;
            honored += report.honored;
            violations += report.violations.len();
        }
        let compliance = if entries > 0 {
            honored as f64 / (honored + violations).max(1) as f64
        } else {
            1.0
        };

        // Clinical endpoints of the mitigated runs, pooled.
        let glycemic = GlycemicSummary::from_traces(mitigated.iter());

        table.row(&[
            label.to_owned(),
            format!("{:.1}%", recovery * 100.0),
            new.to_string(),
            format!("{risk:.2}"),
            format!("{:.1}%", glycemic.tir * 100.0),
            format!("{:.1}%", glycemic.tbr * 100.0),
            format!("{:.1}% of {} UCA onsets", compliance * 100.0, entries),
        ]);
        results.push(json!({
            "policy": label,
            "recovery_rate": recovery,
            "new_hazards": new,
            "avg_risk": risk,
            "tir": glycemic.tir,
            "tbr": glycemic.tbr,
            "gmi": glycemic.gmi,
            "hms_entries": entries,
            "hms_honored": honored,
            "hms_violations": violations,
        }));
    }
    println!("{}", table.render());
    println!(
        "extension target: the context-dependent policy should match the fixed\n\
         policy's recovery while introducing fewer mitigation-induced hazards\n\
         (its H2 correction is discounted by pending IOB instead of always\n\
         commanding the maximum rate)."
    );
    write_json(
        &opts.out_dir,
        "ablation_hms",
        &json!({
            "ts_minutes": { "h1": ts_of(Hazard::H1), "h2": ts_of(Hazard::H2) },
            "rows": results,
        }),
    );
}
