//! §VI discussion ablations: adversarial vs fault-free training,
//! binary vs multi-class ML monitors, and ML overfitting on fault-free
//! data.

use crate::experiments::{fold_indices, replay_all, sample_counts, select};
use crate::opts::ExpOpts;
use crate::report::{rate, write_json, Table};
use crate::zoo::{MonitorKind, Zoo};
use aps_core::context::ContextBuilder;
use aps_core::scs::{ActionCond, BgCond, IobCond, Scs};
use aps_metrics::timing::early_detection_rate;
use aps_sim::campaign::run_campaign;
use aps_sim::platform::Platform;
use aps_types::{SimTrace, UnitsPerHour};
use serde_json::json;

/// One-class threshold fitting from *fault-free* traces: each rule's β
/// is pushed to the boundary of normal behaviour so that normal
/// operation is never flagged — the paper's "thresholds learned from
/// fault-free data" variant, which lacks the adversarial tightening
/// against actual hazard trajectories.
fn fault_free_thresholds(scs: &Scs, traces: &[SimTrace], basal: UnitsPerHour) -> Scs {
    let mut out = scs.clone();
    for rule in &scs.rules {
        let mut extreme: Option<f64> = None;
        for trace in traces.iter().filter(|t| t.meta.fault_start.is_none()) {
            let mut builder = ContextBuilder::new(basal);
            for rec in trace.iter() {
                let ctx = builder.observe_bg(rec.bg);
                builder.observe_delivery(rec.delivered);
                let action_matches = match rule.action {
                    ActionCond::Forbidden(u) => rec.action == u,
                    ActionCond::Required(u) => rec.action != u,
                };
                if !action_matches {
                    continue;
                }
                let mut relaxed = rule.clone();
                match rule.iob {
                    IobCond::Any => {
                        if matches!(rule.bg, BgCond::BelowBeta) {
                            relaxed.beta = f64::INFINITY;
                        }
                    }
                    _ => relaxed.iob = IobCond::Any,
                }
                if !relaxed.context_matches(&ctx, scs.target) {
                    continue;
                }
                let mu = match rule.iob {
                    IobCond::Any => ctx.bg,
                    _ => ctx.iob,
                };
                extreme = Some(match (extreme, rule.iob) {
                    (None, _) => mu,
                    // BelowBeta rules fire when µ < β: to spare normal
                    // behaviour, β must sit below every normal µ.
                    (Some(prev), IobCond::BelowBeta | IobCond::Any) => prev.min(mu),
                    (Some(prev), IobCond::AboveBeta) => prev.max(mu),
                });
            }
        }
        if let Some(mu) = extreme {
            let margin = if matches!(rule.iob, IobCond::Any) {
                2.0
            } else {
                0.05
            };
            let beta = match rule.iob {
                IobCond::BelowBeta | IobCond::Any => mu - margin,
                IobCond::AboveBeta => mu + margin,
            };
            if let Some(r) = out.rule_mut(rule.id) {
                r.beta = beta;
            }
        }
    }
    out
}

/// Ablation 1: adversarial (fault-injected) training vs fault-free
/// threshold derivation.
pub fn adversarial(opts: &ExpOpts) {
    println!("§VI ablation — adversarial training improves the CAWT monitor\n");
    let platform = Platform::GlucosymOref0;
    let traces = run_campaign(&opts.campaign(platform), None);
    let (train_idx, test_idx) = fold_indices(traces.len(), opts.folds).remove(0);
    let train = select(&traces, &train_idx);
    let test = select(&traces, &test_idx);

    // Adversarial: the standard CAWT pipeline.
    let zoo = Zoo::train(platform, opts, &train);
    let adversarial = replay_all(&zoo, MonitorKind::Cawt, &test);

    // Fault-free: thresholds pushed to the normal-behaviour boundary.
    let probe = platform.patients().remove(0);
    let basal = platform.basal_for(probe.as_ref());
    let ff_scs = fault_free_thresholds(
        &Scs::with_default_thresholds(platform.target()),
        &train,
        basal,
    );
    let ff_replayed: Vec<SimTrace> = test
        .iter()
        .map(|t| {
            let mut m = aps_core::monitors::CawMonitor::new(
                "cawt-ff",
                ff_scs.clone(),
                zoo.basal(&t.meta.patient),
            );
            aps_sim::replay::replay_monitor(t, &mut m)
        })
        .collect();

    let mut table = Table::new(&["training", "FPR", "FNR", "F1", "EDR"]);
    let mut results = Vec::new();
    for (label, ts) in [
        ("adversarial (faulty)", &adversarial),
        ("fault-free only", &ff_replayed),
    ] {
        let c = sample_counts(ts);
        let edr = early_detection_rate(ts.iter());
        table.row(&[
            label.to_owned(),
            rate(c.fpr()),
            rate(c.fnr()),
            format!("{:.2}", c.f1()),
            format!("{:.0}%", edr * 100.0),
        ]);
        results.push(json!({
            "training": label, "fpr": c.fpr(), "fnr": c.fnr(),
            "f1": c.f1(), "edr": edr,
        }));
    }
    println!("{}", table.render());
    println!(
        "reproduction target: adversarial refinement raises EDR and F1 over the\n\
         fault-free-trained monitor (paper: +11.3% EDR, +8.5% F1)."
    );
    write_json(
        &opts.out_dir,
        "ablation_adversarial",
        &json!({ "rows": results }),
    );
}

/// Ablation 2: binary vs multi-class ML monitors.
pub fn multiclass(opts: &ExpOpts) {
    println!("§VI ablation — binary vs multi-class ML monitors\n");
    let platform = Platform::GlucosymOref0;
    let traces = run_campaign(&opts.campaign(platform), None);
    let (train_idx, test_idx) = fold_indices(traces.len(), opts.folds).remove(0);
    let train = select(&traces, &train_idx);
    let test = select(&traces, &test_idx);
    let zoo = Zoo::train_full(platform, opts, &train);

    let mut table = Table::new(&["monitor", "classes", "FPR", "FNR", "ACC", "F1"]);
    let mut results = Vec::new();
    for (kind, label, classes) in [
        (MonitorKind::Dt, "DT", "2"),
        (MonitorKind::DtMulti, "DT", "3"),
        (MonitorKind::Mlp, "MLP", "2"),
        (MonitorKind::MlpMulti, "MLP", "3"),
        (MonitorKind::Cawt, "CAWT", "n/a (from SCS)"),
    ] {
        let ts = replay_all(&zoo, kind, &test);
        let c = sample_counts(&ts);
        table.row(&[
            label.to_owned(),
            classes.to_owned(),
            rate(c.fpr()),
            rate(c.fnr()),
            format!("{:.2}", c.accuracy()),
            format!("{:.2}", c.f1()),
        ]);
        results.push(json!({
            "monitor": label, "classes": classes, "fpr": c.fpr(),
            "fnr": c.fnr(), "acc": c.accuracy(), "f1": c.f1(),
        }));
    }
    println!("{}", table.render());
    println!(
        "reproduction target: moving the ML monitors from binary to 3-class (needed\n\
         for mitigation) costs them FNR/accuracy; CAWT already knows the hazard type\n\
         from its SCS rules (paper: ≥14.3% FNR increase for the ML monitors)."
    );
    write_json(
        &opts.out_dir,
        "ablation_multiclass",
        &json!({ "rows": results }),
    );
}

/// Ablation 3: monitors evaluated on *fault-free* simulations only —
/// the overfitting check.
pub fn fault_free_eval(opts: &ExpOpts) {
    println!("§VI ablation — monitors on fault-free data (overfitting check)\n");
    let platform = Platform::GlucosymOref0;
    let traces = run_campaign(&opts.campaign(platform), None);
    let zoo = Zoo::train_full(platform, opts, &traces);

    // A fresh fault-free set (different initial BGs than training used).
    let mut ff_spec = opts.campaign(platform);
    ff_spec.faults = aps_fault::CampaignConfig {
        starts: vec![],
        durations: vec![],
    };
    ff_spec.include_fault_free = true;
    let fault_free = run_campaign(&ff_spec, None);

    let mut table = Table::new(&["monitor", "FPR", "false-alarm sims"]);
    let mut results = Vec::new();
    for kind in [
        MonitorKind::Cawt,
        MonitorKind::Dt,
        MonitorKind::Mlp,
        MonitorKind::Lstm,
    ] {
        let ts = replay_all(&zoo, kind, &fault_free);
        let c = sample_counts(&ts);
        let alarmed = ts.iter().filter(|t| t.first_alert().is_some()).count();
        table.row(&[
            kind.name().to_owned(),
            rate(c.fpr()),
            format!("{alarmed}/{}", ts.len()),
        ]);
        results.push(json!({
            "monitor": kind.name(), "fpr": c.fpr(),
            "false_alarm_sims": alarmed, "total_sims": ts.len(),
        }));
    }
    println!("{}", table.render());
    println!(
        "reproduction target: the weakly-supervised CAWT degrades least on data it\n\
         never trained on; fully-supervised ML monitors lose far more (paper: ≥48.9%\n\
         F1 drop for ML vs 3.9% for CAWT)."
    );
    write_json(
        &opts.out_dir,
        "ablation_faultfree",
        &json!({ "rows": results }),
    );
}

/// Extension ablation: monitor accuracy under realistic CGM sensor
/// error.
///
/// The paper's threat model assumes the monitor sees fault-free sensor
/// data; its Threats-to-Validity section argues established CGM error
/// models (Facchinetti/Vettoretti) cover the residual sensor noise.
/// This experiment quantifies the assumption: the CAWT monitor is
/// trained on clean-sensor traces, then evaluated on campaigns whose
/// CGM runs progressively worse error models.
pub fn sensor_noise(opts: &ExpOpts) {
    use aps_glucose::sensor::CgmConfig;
    use aps_glucose::sensor_error::{mard, ErrorModelConfig};
    use aps_sim::campaign::ScenarioCtx;

    println!("extension ablation — CAWT accuracy under CGM sensor error\n");
    let platform = Platform::GlucosymOref0;
    let clean_spec = opts.campaign(platform);

    eprintln!("  clean-sensor training campaign ...");
    let clean = run_campaign(&clean_spec, None);
    let zoo = Zoo::train(platform, opts, &clean);

    let conditions: Vec<(&str, CgmConfig)> = vec![
        ("clean (paper assumption)", CgmConfig::default()),
        (
            "white noise sd=5",
            CgmConfig {
                noise_sd: 5.0,
                ..CgmConfig::default()
            },
        ),
        (
            "Dexcom-like AR+cal",
            CgmConfig {
                error_model: Some(ErrorModelConfig::dexcom_like()),
                ..CgmConfig::default()
            },
        ),
        (
            "degraded sensor",
            CgmConfig {
                error_model: Some(ErrorModelConfig::degraded()),
                ..CgmConfig::default()
            },
        ),
    ];

    let mut table = Table::new(&["sensor condition", "MARD", "FPR", "FNR", "ACC", "F1"]);
    let mut results = Vec::new();
    for (label, cgm) in conditions {
        eprintln!("  evaluation campaign, {label} ...");
        let spec = aps_sim::campaign::CampaignSpec {
            cgm,
            ..clean_spec.clone()
        };
        let factory = |ctx: &ScenarioCtx| -> Box<dyn aps_core::monitors::HazardMonitor> {
            zoo.make(MonitorKind::Cawt, &ctx.patient)
        };
        let traces = run_campaign(&spec, Some(&factory));
        let c = sample_counts(&traces);
        // Observed MARD of the condition, pooled over all traces.
        let (mut t_all, mut d_all) = (Vec::new(), Vec::new());
        for t in &traces {
            t_all.extend(t.bg_true_series());
            d_all.extend(t.bg_series());
        }
        let m = mard(&t_all, &d_all);
        table.row(&[
            label.to_owned(),
            format!("{:.1}%", m * 100.0),
            rate(c.fpr()),
            rate(c.fnr()),
            format!("{:.2}", c.accuracy()),
            format!("{:.2}", c.f1()),
        ]);
        results.push(json!({
            "condition": label, "mard": m, "fpr": c.fpr(), "fnr": c.fnr(),
            "acc": c.accuracy(), "f1": c.f1(),
        }));
    }
    println!("{}", table.render());
    println!(
        "extension target: graceful degradation — the SCS trend dead-bands and the\n\
         tolerance window should absorb realistic sensor error without the FPR\n\
         blowing up (colored noise can even dither borderline contexts into\n\
         slightly earlier detections)."
    );
    write_json(&opts.out_dir, "ablation_noise", &json!({ "rows": results }));
}
