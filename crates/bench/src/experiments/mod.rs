//! One module per paper table/figure, plus shared evaluation helpers.

pub mod ablations;
pub mod accuracy;
pub mod fig3;
pub mod hms;
pub mod mitigation;
pub mod patient_specific;
pub mod resilience;
pub mod train;
pub mod zoo_report;

use crate::zoo::{MonitorKind, Zoo};
use aps_metrics::simulation::campaign_simulation_counts;
use aps_metrics::tolerance::{trace_tolerance_counts, DEFAULT_TOLERANCE};
use aps_metrics::ConfusionCounts;
use aps_sim::replay::replay_monitor;
use aps_types::SimTrace;

/// Replays one monitor kind over a set of traces.
pub fn replay_all(zoo: &Zoo, kind: MonitorKind, traces: &[SimTrace]) -> Vec<SimTrace> {
    traces
        .iter()
        .map(|t| {
            let mut m = zoo.make(kind, &t.meta.patient);
            replay_monitor(t, m.as_mut())
        })
        .collect()
}

/// Aggregated sample-level (tolerance-window) counts over traces that
/// already carry alerts.
pub fn sample_counts(traces: &[SimTrace]) -> ConfusionCounts {
    traces
        .iter()
        .map(|t| trace_tolerance_counts(t, DEFAULT_TOLERANCE))
        .sum()
}

/// Aggregated simulation-level (two-region) counts.
pub fn simulation_counts(traces: &[SimTrace]) -> ConfusionCounts {
    campaign_simulation_counts(traces)
}

/// Deterministic k-fold split over trace indices.
pub fn fold_indices(n: usize, folds: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    aps_ml::data::kfold_indices(n, folds.max(2), 0x5eed)
}

/// Selects traces by index.
pub fn select(traces: &[SimTrace], idx: &[usize]) -> Vec<SimTrace> {
    idx.iter().map(|&i| traces[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition() {
        let folds = fold_indices(37, 4);
        assert_eq!(folds.len(), 4);
        let total: usize = folds.iter().map(|(_, test)| test.len()).sum();
        assert_eq!(total, 37);
    }
}
