//! Fig. 7 (hazard coverage per patient, TTH distribution) and Fig. 8
//! (coverage by fault kind × initial BG) — resilience of the bare
//! controller under fault injection.

use crate::opts::ExpOpts;
use crate::report::{write_json, Table};
use aps_metrics::outcome::hazard_coverage;
use aps_metrics::timing::{time_to_hazard, TimingStats};
use aps_sim::campaign::run_campaign;
use aps_sim::platform::Platform;
use aps_types::SimTrace;
use serde_json::json;
use std::collections::BTreeMap;

fn group_by<F: Fn(&SimTrace) -> Option<String>>(
    traces: &[SimTrace],
    key: F,
) -> BTreeMap<String, Vec<&SimTrace>> {
    let mut out: BTreeMap<String, Vec<&SimTrace>> = BTreeMap::new();
    for t in traces {
        if let Some(k) = key(t) {
            out.entry(k).or_default().push(t);
        }
    }
    out
}

/// Fig. 7: per-patient hazard coverage and the TTH distribution.
pub fn fig7(opts: &ExpOpts) {
    let platform = Platform::GlucosymOref0;
    println!("Fig. 7 — resilience of the bare {} loop\n", platform.name());
    let traces = run_campaign(&opts.campaign(platform), None);
    let overall = hazard_coverage(&traces);
    println!(
        "{} simulations, overall hazard coverage {:.1}% (paper: 33.9%)\n",
        traces.len(),
        overall * 100.0
    );

    // (a) per-patient coverage.
    let mut table = Table::new(&["patient", "coverage", ""]);
    let per_patient = group_by(&traces, |t| Some(t.meta.patient.clone()));
    let mut coverages = Vec::new();
    for (patient, ts) in &per_patient {
        let cov = hazard_coverage(ts.iter().copied());
        coverages.push(json!({"patient": patient, "coverage": cov}));
        table.row(&[
            patient.clone(),
            format!("{:>5.1}%", cov * 100.0),
            "#".repeat((cov * 40.0) as usize),
        ]);
    }
    println!("{}", table.render());
    let values: Vec<f64> = per_patient
        .values()
        .map(|ts| hazard_coverage(ts.iter().copied()))
        .collect();
    let (lo, hi) = (
        values.iter().cloned().fold(f64::INFINITY, f64::min),
        values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    println!(
        "per-patient spread {:.1}%..{:.1}% (paper: 6.7%..92.4% — motivates patient-specific thresholds)\n",
        lo * 100.0,
        hi * 100.0
    );

    // (b) TTH distribution.
    let tths: Vec<f64> = traces.iter().filter_map(time_to_hazard).collect();
    let stats = TimingStats::from_values(&tths);
    let negative = tths.iter().filter(|&&t| t < 0.0).count();
    println!(
        "TTH: n={} mean={:.0} min (paper: ~180 min) sd={:.0} range=[{:.0},{:.0}]",
        stats.n, stats.mean, stats.sd, stats.min, stats.max
    );
    println!(
        "TTH < 0 in {:.1}% of hazardous runs (paper: 7.1% — hazards pre-dating the fault)\n",
        if stats.n == 0 {
            0.0
        } else {
            100.0 * negative as f64 / stats.n as f64
        }
    );
    let mut hist = Table::new(&["TTH bucket", "count", ""]);
    let buckets: [(&str, f64, f64); 6] = [
        ("< 0", f64::NEG_INFINITY, 0.0),
        ("0-1 h", 0.0, 60.0),
        ("1-2 h", 60.0, 120.0),
        ("2-4 h", 120.0, 240.0),
        ("4-8 h", 240.0, 480.0),
        ("> 8 h", 480.0, f64::INFINITY),
    ];
    for (label, lo, hi) in buckets {
        let n = tths.iter().filter(|&&t| t >= lo && t < hi).count();
        hist.row(&[label.to_owned(), n.to_string(), "#".repeat(n.min(60))]);
    }
    println!("{}", hist.render());

    write_json(
        &opts.out_dir,
        "fig7",
        &json!({
            "overall_coverage": overall,
            "per_patient": coverages,
            "tth_mean_min": stats.mean,
            "tth_sd_min": stats.sd,
            "tth_negative_fraction":
                if stats.n == 0 { 0.0 } else { negative as f64 / stats.n as f64 },
        }),
    );
}

/// Fig. 8: coverage by fault kind and by initial BG.
pub fn fig8(opts: &ExpOpts) {
    let platform = Platform::GlucosymOref0;
    println!(
        "Fig. 8 — hazard coverage by fault type and initial BG ({})\n",
        platform.name()
    );
    let traces = run_campaign(&opts.campaign(platform), None);

    let kind_of = |t: &SimTrace| -> Option<String> {
        let name = &t.meta.fault_name;
        if name.is_empty() {
            None
        } else {
            name.split('@').next().map(|s| s.to_owned())
        }
    };

    // Rows: fault kind; columns: initial BG.
    let mut header: Vec<String> = vec!["fault".to_owned()];
    header.extend(opts.initial_bgs.iter().map(|b| format!("bg0={b:.0}")));
    header.push("all".to_owned());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    let kinds = group_by(&traces, kind_of);
    let mut results = Vec::new();
    for (kind, ts) in &kinds {
        let mut row = vec![kind.clone()];
        let mut cells = Vec::new();
        for bg0 in &opts.initial_bgs {
            let sub: Vec<&SimTrace> = ts
                .iter()
                .copied()
                .filter(|t| (t.meta.initial_bg - bg0).abs() < 1e-9)
                .collect();
            let cov = hazard_coverage(sub);
            cells.push(cov);
            row.push(format!("{:>5.1}%", cov * 100.0));
        }
        let all = hazard_coverage(ts.iter().copied());
        row.push(format!("{:>5.1}%", all * 100.0));
        results.push(json!({"fault": kind, "by_bg": cells, "overall": all}));
        table.row(&row);
    }
    println!("{}", table.render());
    println!(
        "paper shape: max-rate / max-glucose faults dominate; bitflip faults are mild;\n\
         coverage tends to grow with the initial BG for about half the fault kinds."
    );

    write_json(&opts.out_dir, "fig8", &json!({ "rows": results }));
}
