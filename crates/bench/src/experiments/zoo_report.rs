//! The monitor-zoo latency report: every monitor scored against **one
//! physics pass per scenario** via the session engine's
//! [`MonitorBank`], with reaction-time and time-to-hazard columns —
//! including the streaming [`RiskIndexMonitor`]'s detection-latency
//! floor, the ROADMAP item this report closes.
//!
//! Before the bank existed, scoring M monitors *live* meant M
//! identical patient-ODE integrations per scenario. Here each scenario
//! is simulated exactly once with the whole zoo attached, and a
//! step-count probe on the patient model asserts the 1×physics +
//! M×monitor cost model (the run aborts if any monitor secretly
//! re-simulates).
//!
//! [`MonitorBank`]: aps_core::monitors::MonitorBank
//! [`RiskIndexMonitor`]: aps_core::monitors::RiskIndexMonitor

use crate::opts::ExpOpts;
use crate::report::{write_json, Table};
use crate::zoo::{MonitorKind, Zoo};
use aps_glucose::{BoxedPatient, PatientSim};
use aps_metrics::timing::{time_to_hazard, TimingStats};
use aps_sim::campaign::{campaign_jobs, run_campaign};
use aps_sim::closed_loop::LoopConfig;
use aps_sim::platform::Platform;
use aps_sim::session::Session;
use aps_types::{MgDl, SimTrace, UnitsPerHour, CONTROL_CYCLE_MINUTES};
use serde_json::json;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Patient decorator counting ODE steps — the probe proving the zoo
/// runs one physics pass per scenario regardless of monitor count.
struct CountingPatient {
    inner: BoxedPatient,
    steps: Arc<AtomicUsize>,
}

impl PatientSim for CountingPatient {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn bg(&self) -> MgDl {
        self.inner.bg()
    }
    fn step(&mut self, rate: UnitsPerHour, minutes: f64) {
        self.steps.fetch_add(1, Ordering::Relaxed);
        self.inner.step(rate, minutes);
    }
    fn reset(&mut self, bg0: MgDl) {
        self.inner.reset(bg0);
    }
    fn ingest(&mut self, carbs_g: f64) {
        self.inner.ingest(carbs_g);
    }
    fn exert(&mut self, intensity: f64, duration_min: f64) {
        self.inner.exert(intensity, duration_min);
    }
    fn equilibrium_basal(&self, target: MgDl) -> UnitsPerHour {
        self.inner.equilibrium_basal(target)
    }
}

/// The zoo members this report scores (everything that needs at most
/// threshold training plus the trained forecaster; the ML
/// *classifier* monitors live in Table VI).
const KINDS: [MonitorKind; 6] = [
    MonitorKind::Guideline,
    MonitorKind::Mpc,
    MonitorKind::Cawot,
    MonitorKind::Cawt,
    MonitorKind::RiskIndex,
    MonitorKind::Forecast,
];

/// Runs the zoo report; see the [module docs](self).
pub fn zoo(opts: &ExpOpts) {
    println!("Monitor zoo — one physics pass per scenario (MonitorBank)\n");
    let platform = Platform::GlucosymOref0;
    let spec = opts.campaign(platform);

    // Threshold training (CAWT) on the recorded campaign. In-sample on
    // purpose: this report measures detection *latency*, not
    // generalization — Table V/VI own the cross-validated accuracy.
    // The forecast model comes from `repro train` (loaded when its
    // artifact exists, trained-and-saved from the same recorded traces
    // otherwise — no second physics pass).
    let train = run_campaign(&spec, None);
    let forecast = crate::experiments::train::load_or_train(opts, &train);
    let zoo = Zoo::train(platform, opts, &train).with_forecast(forecast);

    let jobs = campaign_jobs(&spec);
    let physics_steps = Arc::new(AtomicUsize::new(0));
    let mut banked_traces: Vec<SimTrace> = Vec::with_capacity(jobs.len());

    for job in &jobs {
        let inner = platform
            .patient(job.patient_idx)
            .expect("campaign grid indexes an existing cohort member");
        let patient_name = inner.name().to_owned();
        let counting = CountingPatient {
            inner,
            steps: Arc::clone(&physics_steps),
        };
        let mut builder = Session::builder(platform)
            .patient_sim(Box::new(counting))
            .monitor_bank(zoo.bank(&KINDS, &patient_name))
            .config(LoopConfig {
                steps: spec.steps,
                initial_bg: job.initial_bg,
                cgm: spec.cgm,
                ..LoopConfig::default()
            });
        if let Some(scenario) = &job.scenario {
            builder = builder.inject(scenario.clone());
        }
        // One simulation carries every member's alert stream in its
        // `monitor_tracks` — no per-monitor copies needed.
        banked_traces.push(
            builder
                .run()
                .expect("campaign grid produces valid sessions"),
        );
    }

    // The probe: M monitors, exactly jobs × steps patient-ODE steps.
    let stepped = physics_steps.load(Ordering::Relaxed);
    let expected = jobs.len() * spec.steps as usize;
    assert_eq!(
        stepped,
        expected,
        "zoo re-simulated physics: {stepped} patient steps for {} scenarios × {} cycles",
        jobs.len(),
        spec.steps
    );
    println!(
        "{} scenarios × {} monitors: {} patient-ODE steps ({} per scenario — one physics pass, \
         monitor count free)\n",
        jobs.len(),
        KINDS.len(),
        stepped,
        spec.steps
    );

    // Campaign-level hazard timing (monitor-independent).
    let tths: Vec<f64> = banked_traces.iter().filter_map(time_to_hazard).collect();
    let tth = TimingStats::from_values(&tths);
    println!(
        "time-to-hazard over the campaign: mean {:.0} min (sd {:.0}, n {}, min {:.0}, max {:.0})\n",
        tth.mean, tth.sd, tth.n, tth.min, tth.max
    );

    let mut table = Table::new(&["monitor", "RT mean", "RT sd", "n", "EDR", "alerts"]);
    let mut results = Vec::new();
    let hazardous = banked_traces
        .iter()
        .filter(|t| t.hazard_onset().is_some())
        .count();
    for (i, kind) in KINDS.into_iter().enumerate() {
        // Timing metrics straight off each trace's i-th alert track —
        // the same quantities `reaction_time`/`early_detection_rate`
        // compute from a projected alert column, without cloning.
        let onset_and_alert = |t: &SimTrace| {
            let onset = t.hazard_onset()?;
            Some((onset, t.monitor_tracks[i].first_alert()))
        };
        let rts: Vec<f64> = banked_traces
            .iter()
            .filter_map(|t| {
                let (onset, alert) = onset_and_alert(t)?;
                Some((onset - alert?) as f64 * CONTROL_CYCLE_MINUTES)
            })
            .collect();
        let stats = TimingStats::from_values(&rts);
        let early = banked_traces
            .iter()
            .filter_map(onset_and_alert)
            .filter(|&(onset, alert)| alert.is_some_and(|a| a < onset))
            .count();
        let edr = if hazardous == 0 {
            0.0
        } else {
            early as f64 / hazardous as f64
        };
        let alerting = banked_traces
            .iter()
            .filter(|t| t.monitor_tracks[i].first_alert().is_some())
            .count();
        results.push(json!({
            "monitor": kind.name(),
            "reaction_mean_min": stats.mean,
            "reaction_sd_min": stats.sd,
            "n": stats.n,
            "edr": edr,
            "alerting_traces": alerting,
        }));
        table.row(&[
            kind.name().to_owned(),
            format!("{:.0}", stats.mean),
            format!("{:.0}", stats.sd),
            stats.n.to_string(),
            format!("{:.0}%", edr * 100.0),
            alerting.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "RiskIdx is the ground-truth risk labeler run *online*: its (negative) reaction time\n\
         is the detection-latency floor — how long after onset a purely risk-threshold\n\
         detector needs before the rolling LBGI/HBGI window confirms the hazard. Any monitor\n\
         worth deploying must sit above that row; the context-aware monitors' margin over it\n\
         is their prediction value. Forecast is the learned predictive arm (`repro train`):\n\
         an incremental LSTM whose horizon-BG prediction crosses the same risk-derived band\n\
         — its row is the data-driven counterpart to CAWOT/CAWT's rule-based early warning."
    );
    write_json(
        &opts.out_dir,
        "zoo",
        &json!({
            "platform": platform.name(),
            "scenarios": jobs.len(),
            "physics_steps": stepped,
            "monitors": KINDS.len(),
            "tth": { "mean_min": tth.mean, "sd_min": tth.sd, "n": tth.n },
            "rows": results,
        }),
    );
}
