//! Table VII — mitigation performance: recovery rate, new hazards,
//! average risk, with the same Algorithm-1 strategy under every
//! monitor.

use crate::opts::ExpOpts;
use crate::report::{write_json, Table};
use crate::zoo::{MonitorKind, Zoo};
use aps_core::monitors::HazardMonitor;
use aps_metrics::outcome::{average_risk, new_hazards, recovery_rate, RiskContribution};
use aps_risk::mean_risk_index;
use aps_sim::campaign::{run_campaign, CampaignSpec, ScenarioCtx};
use aps_sim::platform::Platform;
use serde_json::json;

/// Table VII: rerun the campaign with each monitor driving Algorithm-1
/// mitigation and compare patient outcomes against the unmitigated
/// baseline.
pub fn table7(opts: &ExpOpts) {
    println!("Table VII — hazard mitigation with the fixed Algorithm-1 strategy\n");
    let platform = Platform::GlucosymOref0;
    let spec = opts.campaign(platform);

    // Baseline: no monitor (also the training data for CAWT/ML).
    eprintln!("  baseline campaign ...");
    let baseline = run_campaign(&spec, None);
    let zoo = Zoo::train_full(platform, opts, &baseline);

    let kinds = [
        MonitorKind::Cawt,
        MonitorKind::Dt,
        MonitorKind::Mlp,
        MonitorKind::Mpc,
    ];
    let paper: &[(MonitorKind, f64, u64, f64)] = &[
        (MonitorKind::Cawt, 0.54, 8, 0.02),
        (MonitorKind::Dt, 0.403, 227, 0.76),
        (MonitorKind::Mlp, 0.39, 177, 0.68),
        (MonitorKind::Mpc, 0.043, 123, 0.22),
    ];

    let mut table = Table::new(&[
        "monitor",
        "recovery",
        "new hazards",
        "avg risk",
        "| paper:",
        "recovery",
        "new",
        "risk",
    ]);
    let mut results = Vec::new();
    for kind in kinds {
        eprintln!("  mitigated campaign with {} ...", kind.name());
        let spec_mit = CampaignSpec {
            mitigate: true,
            ..spec.clone()
        };
        let factory =
            |ctx: &ScenarioCtx| -> Box<dyn HazardMonitor> { zoo.make(kind, &ctx.patient) };
        let mitigated = run_campaign(&spec_mit, Some(&factory));

        let pairs: Vec<_> = baseline.iter().zip(mitigated.iter()).collect();
        let recovery = recovery_rate(pairs.iter().copied());
        let new = new_hazards(pairs.iter().copied());
        let contributions: Vec<RiskContribution> = pairs
            .iter()
            .map(|(base, mit)| RiskContribution {
                mean_risk_index: mean_risk_index(&mit.bg_true_series()),
                // Harm persists: the scenario still ends hazardous
                // despite (or without) mitigation.
                is_false_negative: base.is_hazardous() && mit.is_hazardous(),
                is_new_hazard: !base.is_hazardous() && mit.is_hazardous(),
            })
            .collect();
        let risk = average_risk(&contributions);
        let Some(p) = paper.iter().find(|(k, _, _, _)| *k == kind) else {
            continue; // no paper reference row for this monitor
        };
        table.row(&[
            kind.name().to_owned(),
            format!("{:.1}%", recovery * 100.0),
            new.to_string(),
            format!("{risk:.2}"),
            "|".to_owned(),
            format!("{:.1}%", p.1 * 100.0),
            p.2.to_string(),
            format!("{:.2}", p.3),
        ]);
        results.push(json!({
            "monitor": kind.name(),
            "recovery_rate": recovery,
            "new_hazards": new,
            "avg_risk": risk,
        }));
    }
    println!("{}", table.render());
    println!(
        "reproduction target: CAWT prevents the most hazards while introducing the\n\
         fewest new ones (lowest average risk); MPC recovers the least; the ML\n\
         monitors pay for their FPR with mitigation-induced hazards."
    );
    write_json(&opts.out_dir, "table7", &json!({ "rows": results }));
}
