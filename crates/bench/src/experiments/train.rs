//! `repro train` — the train-on-campaign forecasting pipeline.
//!
//! Streams a fault-injection campaign through the bounded-memory
//! [`TraceDataset`] sink (`run_campaign_with`: traces are windowed and
//! reservoir-capped as they arrive, never materialized as a
//! collection), standardizes features, and trains the two glucose
//! forecasters of `aps_ml::forecast` — the streaming LSTM and the
//! flattened-window MLP baseline — on BG-at-horizon targets at every
//! timestep. The trained [`ForecastModel`] bundle (scaler + both
//! networks + held-out RMSEs) is serialized to
//! `<out>/forecast_model.json`, where `repro zoo` and
//! `MonitorSpec::Forecast` pick it up.
//!
//! Everything is deterministic under the fixed seed: rerunning the
//! command on the same campaign reproduces the committed weights bit
//! for bit (pinned in `tests/forecast_pipeline.rs`), so no opaque
//! artifacts live in the repository — only outputs of this command.

use crate::opts::ExpOpts;
use crate::report::{write_json, Table};
use aps_ml::data::{StandardScaler, TraceDataset};
use aps_ml::forecast::{ForecastConfig, ForecastModel, LstmForecaster, MlpForecaster};
use aps_sim::campaign::run_campaign_with;
use aps_sim::platform::Platform;
use serde_json::json;
use std::path::{Path, PathBuf};

/// Forecast horizon in control cycles (12 × 5 min = 60 minutes). A
/// 30-minute horizon also beats the RiskIdx floor but alerts ~17 min
/// later at quick scale; the hour-ahead prediction is what first
/// pushes the zoo's Forecast reaction time *positive* (alerts before
/// labeled onset).
pub const FORECAST_HORIZON: usize = 12;

/// Reservoir seed for dataset construction.
pub const DATASET_SEED: u64 = 42;

/// Model filename under the results directory.
pub const MODEL_FILE: &str = "forecast_model.json";

/// The model file path for the given options (`None` with `--no-out`).
pub fn model_path(opts: &ExpOpts) -> Option<PathBuf> {
    opts.out_dir
        .as_ref()
        .map(|dir| Path::new(dir).join(MODEL_FILE))
}

/// An empty [`TraceDataset`] sized for the options' runs. One
/// subsequence per trace, anchored at step 0 with `window = steps −
/// horizon`: exactly the cold-start stream an online monitor sees, so
/// training and deployment share one distribution.
fn empty_dataset(opts: &ExpOpts) -> TraceDataset {
    let window = (opts.steps as usize)
        .saturating_sub(FORECAST_HORIZON)
        .max(1);
    TraceDataset::with_cap(window, FORECAST_HORIZON, opts.seq_train_cap, DATASET_SEED)
}

/// Builds the forecast dataset by streaming the options' campaign
/// through a [`TraceDataset`] sink — the bounded-memory path `repro
/// train` uses (no trace collection ever materializes).
pub fn build_dataset(opts: &ExpOpts, platform: Platform) -> TraceDataset {
    let spec = opts.campaign(platform);
    let mut dataset = empty_dataset(opts);
    run_campaign_with(&spec, None, |_, trace| dataset.push_trace(&trace));
    dataset
}

/// Trains the full forecast bundle by streaming the options' campaign.
pub fn train_model(opts: &ExpOpts) -> ForecastModel {
    fit_dataset(opts, build_dataset(opts, Platform::GlucosymOref0))
}

/// Trains the full forecast bundle from already-recorded campaign
/// traces (identical result to [`train_model`] on the campaign that
/// produced them — the dataset adapter consumes traces in the same
/// order either way). Lets callers that already hold the traces (e.g.
/// the zoo report's threshold training) avoid a second physics pass.
pub fn train_model_from(opts: &ExpOpts, traces: &[aps_types::SimTrace]) -> ForecastModel {
    let mut dataset = empty_dataset(opts);
    for trace in traces {
        dataset.push_trace(trace);
    }
    fit_dataset(opts, dataset)
}

/// The shared fitting path behind both `train_model` variants.
fn fit_dataset(opts: &ExpOpts, dataset: TraceDataset) -> ForecastModel {
    let window = dataset.window();
    let horizon = dataset.horizon();
    println!(
        "forecast dataset: {} windows of {} cycles (dim {}) from {} traces ({} offered)",
        dataset.len(),
        window,
        TraceDataset::DIM,
        dataset.traces(),
        dataset.seen(),
    );
    let raw = dataset.into_set();
    assert!(!raw.is_empty(), "campaign produced no training windows");

    // Held-out split BEFORE any fitting: reported RMSEs are honest.
    // Only the validation windows keep a raw copy (the persistence
    // baseline reads unscaled BG); the training side standardizes in
    // place.
    let (raw_train, raw_val) = raw.split(0.2, DATASET_SEED);
    let trained_pairs = raw_train.len();
    let scaler = StandardScaler::fit_sequences(&raw_train.x);
    let mut train_set = raw_train;
    train_set.standardize(&scaler);
    let mut val_set = raw_val.clone();
    val_set.standardize(&scaler);

    let config = ForecastConfig {
        hidden: opts.lstm_hidden.clone(),
        mlp_hidden: opts.mlp_hidden.clone(),
        learning_rate: 3e-3,
        max_epochs: opts.forecast_epochs,
        patience: 12,
        seed: DATASET_SEED,
        ..ForecastConfig::default()
    };
    let lstm = LstmForecaster::fit(&train_set, &config);
    let mlp = MlpForecaster::fit(&train_set, &config);

    // Deployment-view evaluation: stream each held-out window through
    // the LSTM exactly as the online monitor does (carried state, one
    // prediction per cycle) and score every cycle past the trend
    // warm-up against the raw-BG persistence baseline ("BG stays where
    // it is"). The MLP consumes whole windows, so its RMSE is the
    // window-end prediction.
    const EVAL_WARMUP: usize = 2;
    let (mut lstm_sq, mut pers_sq, mut steps) = (0.0f64, 0.0f64, 0usize);
    let (mut mlp_sq, mut ends) = (0.0f64, 0usize);
    for i in 0..raw_val.len() {
        let mut state = lstm.state();
        for (t, scaled_row) in val_set.x[i].iter().enumerate() {
            let yhat = lstm.step(&mut state, scaled_row);
            if t < EVAL_WARMUP {
                continue;
            }
            let y = raw_val.y[i][t];
            lstm_sq += (yhat - y) * (yhat - y);
            let pers = raw_val.x[i][t][0];
            pers_sq += (pers - y) * (pers - y);
            steps += 1;
        }
        // Windows with no targets contribute nothing (rather than
        // panicking on a malformed dataset).
        let Some(&y_end) = raw_val.y[i].last() else {
            continue;
        };
        let e = mlp.predict_seq(&val_set.x[i]) - y_end;
        mlp_sq += e * e;
        ends += 1;
    }
    let lstm_val_rmse = (lstm_sq / steps.max(1) as f64).sqrt();
    let persistence_val_rmse = (pers_sq / steps.max(1) as f64).sqrt();
    let mlp_val_rmse = (mlp_sq / ends.max(1) as f64).sqrt();

    ForecastModel {
        window,
        horizon,
        scaler,
        config,
        lstm,
        mlp,
        lstm_val_rmse,
        mlp_val_rmse,
        persistence_val_rmse,
        trained_pairs,
    }
}

/// Loads the saved model when present, otherwise trains one from the
/// caller's already-recorded campaign traces (and saves it) — how
/// `repro zoo` obtains its ForecastMonitor weights without retraining
/// (or re-simulating) on every invocation.
pub fn load_or_train(opts: &ExpOpts, traces: &[aps_types::SimTrace]) -> ForecastModel {
    let expected_window = empty_dataset(opts).window();
    if let Some(path) = model_path(opts) {
        if let Ok(json) = std::fs::read_to_string(&path) {
            match serde_json::from_str::<ForecastModel>(&json) {
                // Geometry must match the requested workload: a model
                // trained at another horizon or step count would
                // silently skew the zoo's Forecast row.
                Ok(model)
                    if model.horizon == FORECAST_HORIZON && model.window == expected_window =>
                {
                    println!(
                        "loaded forecast model from {} (LSTM val RMSE {:.1} mg/dL)",
                        path.display(),
                        model.lstm_val_rmse
                    );
                    return model;
                }
                Ok(model) => eprintln!(
                    "warning: {} was trained at window {} / horizon {} (expected {} / {}); \
                     retraining",
                    path.display(),
                    model.window,
                    model.horizon,
                    expected_window,
                    FORECAST_HORIZON
                ),
                Err(e) => eprintln!(
                    "warning: {} is not a valid forecast model ({e:?}); retraining",
                    path.display()
                ),
            }
        }
    }
    let model = train_model_from(opts, traces);
    save_model(opts, &model);
    model
}

fn save_model(opts: &ExpOpts, model: &ForecastModel) {
    let Some(path) = model_path(opts) else { return };
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
    }
    match serde_json::to_string(model) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("model saved to {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize model: {e:?}"),
    }
}

/// Runs the `train` experiment: build dataset → fit both forecasters →
/// report RMSEs → persist the model bundle.
pub fn train(opts: &ExpOpts) {
    println!("Glucose-forecast training (streamed campaign -> LSTM + MLP)\n");
    let model = train_model(opts);
    save_model(opts, &model);

    let mut table = Table::new(&["forecaster", "val RMSE (mg/dL)", "epochs"]);
    table.row(&[
        "LSTM (per-cycle stream)".to_owned(),
        format!("{:.1}", model.lstm_val_rmse),
        model.lstm.epochs_trained().to_string(),
    ]);
    table.row(&[
        "persistence (per-cycle)".to_owned(),
        format!("{:.1}", model.persistence_val_rmse),
        "-".to_owned(),
    ]);
    table.row(&[
        "MLP (window end)".to_owned(),
        format!("{:.1}", model.mlp_val_rmse),
        model.mlp.epochs_trained().to_string(),
    ]);
    println!(
        "\nhorizon: {} cycles ({} min); window: {} cycles; training pairs: {}\n",
        model.horizon,
        model.horizon * 5,
        model.window,
        model.trained_pairs
    );
    println!("{}", table.render());
    println!(
        "The LSTM is the monitor-grade artifact: it streams O(1) per cycle with carried\n\
         hidden state. `repro zoo` now reports its online reaction time as the `Forecast`\n\
         row; `MonitorSpec::Forecast {{ \"path\": ... }}` attaches it to any session."
    );

    write_json(
        &opts.out_dir,
        "train_forecast",
        &json!({
            "horizon_cycles": model.horizon,
            "window_cycles": model.window,
            "trained_pairs": model.trained_pairs,
            "lstm_val_rmse": model.lstm_val_rmse,
            "mlp_val_rmse": model.mlp_val_rmse,
            "persistence_val_rmse": model.persistence_val_rmse,
            "lstm_epochs": model.lstm.epochs_trained(),
            "mlp_epochs": model.mlp.epochs_trained(),
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ExpOpts {
        ExpOpts {
            patients: vec![0],
            initial_bgs: vec![120.0],
            starts: vec![30],
            durations: vec![24],
            steps: 60,
            lstm_hidden: vec![8],
            mlp_hidden: vec![8],
            max_epochs: 2,
            forecast_epochs: 2,
            seq_train_cap: 40,
            out_dir: None,
            ..ExpOpts::quick()
        }
    }

    #[test]
    fn dataset_streams_the_whole_campaign() {
        let opts = tiny_opts();
        let ds = build_dataset(&opts, Platform::GlucosymOref0);
        assert_eq!(ds.traces(), 31); // quick grid for one patient/bg
        assert_eq!(ds.window(), 60 - FORECAST_HORIZON);
        assert!(!ds.is_empty());
    }

    #[test]
    fn training_is_deterministic() {
        let opts = tiny_opts();
        let a = train_model(&opts);
        let b = train_model(&opts);
        assert_eq!(a, b, "same campaign + seed must give identical models");
        assert!(a.lstm_val_rmse.is_finite());
        // Training from pre-recorded traces is the same pipeline.
        let traces = aps_sim::campaign::run_campaign(&opts.campaign(Platform::GlucosymOref0), None);
        assert_eq!(a, train_model_from(&opts, &traces));
    }
}
