//! Fault-tolerant campaign mode of `repro bench-campaign`.
//!
//! Plain `bench-campaign` measures throughput; adding any of the
//! fault-tolerance flags (`--chaos-seed`, `--retry`, `--backoff-ms`,
//! `--deadline-ms`, `--checkpoint`, `--checkpoint-every`, `--resume`,
//! `--workers`) switches it to the hardened executor
//! ([`aps_sim::campaign::run_campaign_resumable`]): run the campaign,
//! survive job failures into the error ledger, optionally snapshot a
//! [`CampaignCheckpoint`] every N jobs, and resume from one. The
//! process exits 0 whenever the campaign itself ran to completion —
//! failed *jobs* are graceful degradation, reported via the ledger,
//! not a process failure.

use crate::opts::ExpOpts;
use aps_sim::campaign::{
    run_campaign_resumable, CampaignOptions, CampaignReport, CheckpointPolicy, WorkerSource,
};
use aps_sim::chaos::ChaosConfig;
use aps_sim::checkpoint::CampaignCheckpoint;
use aps_sim::outcome::{Backoff, RetryPolicy};
use aps_sim::platform::Platform;
use std::path::PathBuf;
use std::time::Duration;

/// Parsed fault-tolerance flags for `bench-campaign`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FtFlags {
    /// `--chaos-seed N`: run under deterministic chaos injection.
    pub chaos_seed: Option<u64>,
    /// `--retry N`: attempts per job (≥ 1).
    pub retry: Option<u32>,
    /// `--backoff-ms N`: base backoff between attempts.
    pub backoff_ms: Option<u64>,
    /// `--deadline-ms N`: per-job wall-clock budget.
    pub deadline_ms: Option<u64>,
    /// `--checkpoint PATH`: snapshot file.
    pub checkpoint: Option<String>,
    /// `--checkpoint-every N`: snapshot cadence (jobs).
    pub checkpoint_every: Option<usize>,
    /// `--resume PATH`: checkpoint to continue from.
    pub resume: Option<String>,
    /// `--workers N`: explicit worker count (≥ 1).
    pub workers: Option<usize>,
}

impl FtFlags {
    /// Removes every fault-tolerance flag from `args`, validating
    /// values as it goes. Returns `None` when no such flag was
    /// present (plain throughput-benchmark mode).
    ///
    /// # Errors
    ///
    /// A message for a missing value, a non-numeric value, or a
    /// zero where at least one is required (`--retry`, `--workers`,
    /// `--checkpoint-every`).
    pub fn extract(args: &mut Vec<String>) -> Result<Option<FtFlags>, String> {
        let mut flags = FtFlags::default();
        let mut any = false;
        let take = |args: &mut Vec<String>, name: &str| -> Result<String, String> {
            let pos = match args.iter().position(|a| a == name) {
                Some(p) => p,
                None => return Err(String::new()), // sentinel: flag absent
            };
            if pos + 1 >= args.len() {
                return Err(format!("missing value for {name}"));
            }
            let value = args.remove(pos + 1);
            args.remove(pos);
            Ok(value)
        };
        // Each flag may appear at most once; a repeat simply wins on
        // the later scan, which the loop below makes impossible to
        // observe — so scan until the flag stops appearing.
        fn parse_num<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            raw.parse::<T>().map_err(|e| format!("{name}: {e}"))
        }
        loop {
            let before = any;
            match take(args, "--chaos-seed") {
                Ok(v) => {
                    flags.chaos_seed = Some(parse_num("--chaos-seed", &v)?);
                    any = true;
                }
                Err(e) if !e.is_empty() => return Err(e),
                Err(_) => {}
            }
            match take(args, "--retry") {
                Ok(v) => {
                    let n: u32 = parse_num("--retry", &v)?;
                    if n == 0 {
                        return Err("--retry must be at least 1".to_owned());
                    }
                    flags.retry = Some(n);
                    any = true;
                }
                Err(e) if !e.is_empty() => return Err(e),
                Err(_) => {}
            }
            match take(args, "--backoff-ms") {
                Ok(v) => {
                    flags.backoff_ms = Some(parse_num("--backoff-ms", &v)?);
                    any = true;
                }
                Err(e) if !e.is_empty() => return Err(e),
                Err(_) => {}
            }
            match take(args, "--deadline-ms") {
                Ok(v) => {
                    flags.deadline_ms = Some(parse_num("--deadline-ms", &v)?);
                    any = true;
                }
                Err(e) if !e.is_empty() => return Err(e),
                Err(_) => {}
            }
            match take(args, "--checkpoint") {
                Ok(v) => {
                    flags.checkpoint = Some(v);
                    any = true;
                }
                Err(e) if !e.is_empty() => return Err(e),
                Err(_) => {}
            }
            match take(args, "--checkpoint-every") {
                Ok(v) => {
                    let n: usize = parse_num("--checkpoint-every", &v)?;
                    if n == 0 {
                        return Err("--checkpoint-every must be at least 1".to_owned());
                    }
                    flags.checkpoint_every = Some(n);
                    any = true;
                }
                Err(e) if !e.is_empty() => return Err(e),
                Err(_) => {}
            }
            match take(args, "--resume") {
                Ok(v) => {
                    flags.resume = Some(v);
                    any = true;
                }
                Err(e) if !e.is_empty() => return Err(e),
                Err(_) => {}
            }
            match take(args, "--workers") {
                Ok(v) => {
                    let n: usize = parse_num("--workers", &v)?;
                    if n == 0 {
                        return Err("--workers must be at least 1".to_owned());
                    }
                    flags.workers = Some(n);
                    any = true;
                }
                Err(e) if !e.is_empty() => return Err(e),
                Err(_) => {}
            }
            if any == before {
                break;
            }
        }
        if flags.checkpoint_every.is_some() && flags.checkpoint.is_none() {
            return Err("--checkpoint-every requires --checkpoint PATH".to_owned());
        }
        Ok(any.then_some(flags))
    }
}

fn describe_source(source: &WorkerSource) -> String {
    match source {
        WorkerSource::Detected => "detected".to_owned(),
        WorkerSource::Env => "APS_WORKERS".to_owned(),
        WorkerSource::Override => "--workers".to_owned(),
        WorkerSource::InvalidEnv { raw } => {
            format!("detected; ignored invalid APS_WORKERS={raw:?}")
        }
        WorkerSource::DetectFailed { detail } => {
            format!("fallback to 1 worker: {detail}")
        }
    }
}

fn print_report(report: &CampaignReport) {
    println!("total jobs : {}", report.total_jobs);
    println!("resumed    : {} already done", report.skipped_resumed);
    println!("completed  : {}", report.completed_jobs);
    println!("failed     : {}", report.failed_jobs);
    println!("hazardous  : {}", report.hazardous_jobs);
    println!(
        "workers    : {} ({})",
        report.workers,
        describe_source(&report.worker_source)
    );
    println!("digest     : {}", report.digest);
    if report.cancelled {
        println!("cancelled  : yes (partial campaign)");
    }
    if report.ledger.is_empty() {
        println!("ledger     : empty");
    } else {
        println!("ledger     : {} entries", report.ledger.len());
        for e in &report.ledger.entries {
            println!(
                "  job {:>4}  patient {} bg {:>5.1} {:<24} attempts {}: {}",
                e.job_index,
                e.patient_idx,
                e.initial_bg,
                if e.fault_name.is_empty() {
                    "(fault-free)"
                } else {
                    &e.fault_name
                },
                e.attempts,
                e.error
            );
        }
    }
}

/// Runs `bench-campaign` in fault-tolerant mode and returns the
/// process exit code: 0 when the campaign ran (failed jobs included —
/// they are ledger entries, not process failures), 1 on a hard error
/// (unreadable/mismatched checkpoint, snapshot write failure).
pub fn run_ft_campaign(opts: &ExpOpts, flags: &FtFlags) -> i32 {
    let spec = opts.campaign(Platform::GlucosymOref0);
    let mut options = CampaignOptions {
        retry: RetryPolicy {
            max_attempts: flags.retry.unwrap_or(1),
            backoff: Backoff {
                base_ms: flags.backoff_ms.unwrap_or(0),
                ..Backoff::default()
            },
        },
        deadline: flags.deadline_ms.map(Duration::from_millis),
        chaos: flags.chaos_seed.map(ChaosConfig::with_seed),
        workers: flags.workers,
        checkpoint: flags.checkpoint.as_ref().map(|path| CheckpointPolicy {
            path: PathBuf::from(path),
            every_jobs: flags.checkpoint_every.unwrap_or(10),
        }),
        cancel: None,
    };
    // Resuming without an explicit snapshot target keeps checkpointing
    // to the same file, so repeated kill/resume cycles make progress.
    if options.checkpoint.is_none() {
        if let Some(path) = &flags.resume {
            options.checkpoint = Some(CheckpointPolicy {
                path: PathBuf::from(path),
                every_jobs: flags.checkpoint_every.unwrap_or(10),
            });
        }
    }
    let resume = match &flags.resume {
        Some(path) => match CampaignCheckpoint::load(std::path::Path::new(path)) {
            Ok(ckpt) => Some(ckpt),
            Err(e) => {
                eprintln!("error: cannot resume from `{path}`: {e}");
                return 1;
            }
        },
        None => None,
    };
    if let Some(seed) = flags.chaos_seed {
        // Injected panics are part of the schedule; keep them out of
        // stderr (real panics still report through the previous hook).
        aps_sim::chaos::silence_injected_panics();
        println!("chaos      : seed {seed} (panics + delays + poisoned specs)");
    }
    match run_campaign_resumable(&spec, None, &options, resume.as_ref(), |_, _| {}) {
        Ok(report) => {
            print_report(&report);
            if let Some(policy) = &options.checkpoint {
                println!("checkpoint : {}", policy.path.display());
            }
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn extract_returns_none_without_ft_flags() {
        let mut a = args(&["--quick", "--steps", "40"]);
        assert_eq!(FtFlags::extract(&mut a).unwrap(), None);
        assert_eq!(a, args(&["--quick", "--steps", "40"]));
    }

    #[test]
    fn extract_removes_only_ft_flags() {
        let mut a = args(&[
            "--quick",
            "--chaos-seed",
            "7",
            "--retry",
            "2",
            "--checkpoint",
            "ck.json",
            "--checkpoint-every",
            "5",
            "--steps",
            "40",
        ]);
        let flags = FtFlags::extract(&mut a).unwrap().unwrap();
        assert_eq!(flags.chaos_seed, Some(7));
        assert_eq!(flags.retry, Some(2));
        assert_eq!(flags.checkpoint.as_deref(), Some("ck.json"));
        assert_eq!(flags.checkpoint_every, Some(5));
        assert_eq!(a, args(&["--quick", "--steps", "40"]));
    }

    #[test]
    fn extract_validates_values() {
        assert!(FtFlags::extract(&mut args(&["--retry", "0"])).is_err());
        assert!(FtFlags::extract(&mut args(&["--workers", "0"])).is_err());
        assert!(FtFlags::extract(&mut args(&["--workers", "many"])).is_err());
        assert!(FtFlags::extract(&mut args(&["--chaos-seed"])).is_err());
        assert!(FtFlags::extract(&mut args(&["--checkpoint-every", "4"])).is_err());
    }
}
