//! `repro convert` — move trace corpora between JSONL and the binary
//! trace store, with a measured round-trip verification.
//!
//! ```text
//! repro convert <input> --to-store corpus.apst [--verify]
//! repro convert <input> --to-jsonl corpus.jsonl [--verify]
//! repro convert --gen-quick --to-store corpus.apst --verify
//! ```
//!
//! The input format is sniffed from the file's magic bytes (a store
//! starts with `APSTRACE`; anything else is treated as JSONL).
//! `--gen-quick` runs the quick campaign instead of reading a file —
//! the CI smoke path. `--verify` re-encodes the corpus both ways in
//! memory, checks the store read path yields bit-identical
//! [`SimTrace`]s, measures read throughput and file size against
//! JSONL, and records everything in `results/convert_verify.json`.
//!
//! Exit codes: 0 converted (and verified), 1 runtime failure or
//! verification mismatch, 2 usage error.

use aps_sim::campaign::{run_campaign, run_campaign_with, CampaignSpec};
use aps_sim::checkpoint::{spec_hash, trace_digest};
use aps_sim::io::{read_jsonl, write_jsonl};
use aps_sim::platform::Platform;
use aps_tracestore::{
    to_hex, write_store, FileTraceWriter, StoreError, StoreStats, TraceStoreReader,
};
use aps_types::SimTrace;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;

/// Measured result of a `--verify` round trip, recorded as JSON so CI
/// artifacts carry the numbers. Hashes are hex; the counts and
/// float measurements stay exact in the f64-backed JSON shim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(default)]
pub struct ConvertReport {
    /// Where the corpus came from (`<quick campaign>` for `--gen-quick`).
    pub input: String,
    /// Traces in the corpus.
    // lint: hex-exempt — trace counts stay far below 2^53.
    pub traces: u64,
    /// Step records in the corpus.
    // lint: hex-exempt — record counts stay far below 2^53.
    pub records: u64,
    /// Bytes of the corpus as JSONL.
    // lint: hex-exempt — sizes stay far below 2^53.
    pub jsonl_bytes: u64,
    /// Bytes of the corpus as a binary store.
    // lint: hex-exempt — sizes stay far below 2^53.
    pub store_bytes: u64,
    /// `store_bytes / jsonl_bytes` (acceptance target ≤ 0.5).
    pub size_ratio: f64,
    /// JSONL read throughput, records per second (best of 3).
    pub jsonl_read_records_per_s: f64,
    /// Store read throughput, records per second (best of 3; open +
    /// materialize every trace).
    pub store_read_records_per_s: f64,
    /// `store / jsonl` read throughput (acceptance target ≥ 5).
    pub read_speedup: f64,
    /// True when the store read path returned `SimTrace`s bit-identical
    /// to the source corpus (exact f64 bits, via `trace_digest`).
    pub bit_identical: bool,
    /// Folded per-trace content digest of the corpus (hex).
    pub corpus_digest: String,
}

struct ConvertFlags {
    input: Option<String>,
    to_store: Option<String>,
    to_jsonl: Option<String>,
    verify: bool,
    gen_quick: bool,
    out_dir: Option<String>,
}

fn parse(args: &[String]) -> Result<ConvertFlags, String> {
    let mut flags = ConvertFlags {
        input: None,
        to_store: None,
        to_jsonl: None,
        verify: false,
        gen_quick: false,
        out_dir: Some("results".to_owned()),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--to-store" => {
                let v = it.next().ok_or("missing value for --to-store")?;
                flags.to_store = Some(v.clone());
            }
            "--to-jsonl" => {
                let v = it.next().ok_or("missing value for --to-jsonl")?;
                flags.to_jsonl = Some(v.clone());
            }
            "--verify" => flags.verify = true,
            "--gen-quick" => flags.gen_quick = true,
            "--out" => {
                let v = it.next().ok_or("missing value for --out")?;
                flags.out_dir = Some(v.clone());
            }
            "--no-out" => flags.out_dir = None,
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            other => {
                if flags.input.is_some() {
                    return Err(format!("unexpected extra input `{other}`"));
                }
                flags.input = Some(other.to_owned());
            }
        }
    }
    if flags.gen_quick && flags.input.is_some() {
        return Err("--gen-quick replaces the input file; drop one of them".to_owned());
    }
    if !flags.gen_quick && flags.input.is_none() {
        return Err("missing input (a file path, or --gen-quick)".to_owned());
    }
    if flags.to_store.is_none() && flags.to_jsonl.is_none() && !flags.verify {
        return Err("nothing to do: pass --to-store, --to-jsonl, and/or --verify".to_owned());
    }
    Ok(flags)
}

/// Loads the corpus named by the CLI: a quick campaign, a binary
/// store, or a JSONL file (sniffed by magic). Returns the traces, the
/// spec hash to stamp into store output, and a display name.
fn load_corpus(flags: &ConvertFlags) -> Result<(Vec<SimTrace>, u64, String), String> {
    if flags.gen_quick {
        let spec = CampaignSpec::quick(Platform::GlucosymOref0);
        let traces = run_campaign(&spec, None);
        return Ok((traces, spec_hash(&spec), "<quick campaign>".to_owned()));
    }
    let Some(path) = flags.input.as_deref() else {
        return Err("missing input (a file path, or --gen-quick)".to_owned());
    };
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    if bytes.len() >= 8 && &bytes[..8] == b"APSTRACE" {
        let reader = TraceStoreReader::from_bytes(bytes).map_err(|e| e.to_string())?;
        let hash = reader.header().spec_hash;
        Ok((reader.read_all(), hash, path.to_owned()))
    } else {
        let traces = read_jsonl(&bytes[..]).map_err(|e| format!("`{path}` as JSONL: {e}"))?;
        Ok((traces, 0, path.to_owned()))
    }
}

/// Folds every trace's content digest into one corpus digest.
fn corpus_digest(traces: &[SimTrace]) -> u64 {
    traces.iter().fold(0xCBF2_9CE4_8422_2325u64, |acc, t| {
        acc.wrapping_mul(0x0000_0100_0000_01B3) ^ trace_digest(t)
    })
}

/// Best-of-3 wall-clock for `f`, in seconds.
fn best_of_3(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Runs the measured round-trip verification on an in-memory corpus.
pub fn verify_corpus(traces: &[SimTrace], hash: u64, input: &str) -> Result<ConvertReport, String> {
    let records: u64 = traces.iter().map(|t| t.records.len() as u64).sum();

    let mut jsonl = Vec::new();
    write_jsonl(traces, &mut jsonl).map_err(|e| format!("JSONL encode: {e}"))?;
    let store = write_store(traces, hash).map_err(|e| e.to_string())?;

    // Decode failures inside the timed closures count as a length
    // mismatch; both paths are re-decoded fallibly below anyway.
    let jsonl_s = best_of_3(|| {
        let n = read_jsonl(&jsonl[..])
            .map(|b| b.len())
            .unwrap_or(usize::MAX);
        assert_eq!(n, traces.len(), "re-reading our own JSONL");
    });
    let store_s = best_of_3(|| {
        let n = TraceStoreReader::from_bytes(store.clone())
            .map(|r| r.read_all().len())
            .unwrap_or(usize::MAX);
        assert_eq!(n, traces.len(), "re-reading our own store");
    });

    let reader = TraceStoreReader::from_bytes(store.clone()).map_err(|e| e.to_string())?;
    let store_traces = reader.read_all();
    let jsonl_traces = read_jsonl(&jsonl[..]).map_err(|e| format!("JSONL decode: {e}"))?;
    let digest = corpus_digest(traces);
    let bit_identical = corpus_digest(&store_traces) == digest
        && store_traces == traces
        && corpus_digest(&jsonl_traces) == digest;

    let per_s = |secs: f64| {
        if secs > 0.0 {
            records as f64 / secs
        } else {
            f64::INFINITY
        }
    };
    let jsonl_rps = per_s(jsonl_s);
    let store_rps = per_s(store_s);
    Ok(ConvertReport {
        input: input.to_owned(),
        traces: traces.len() as u64,
        records,
        jsonl_bytes: jsonl.len() as u64,
        store_bytes: store.len() as u64,
        size_ratio: store.len() as f64 / jsonl.len().max(1) as f64,
        jsonl_read_records_per_s: jsonl_rps,
        store_read_records_per_s: store_rps,
        read_speedup: store_rps / jsonl_rps,
        bit_identical,
        corpus_digest: to_hex(digest),
    })
}

fn print_report(r: &ConvertReport) {
    println!("convert --verify: {}", r.input);
    println!("  traces          : {}", r.traces);
    println!("  records         : {}", r.records);
    println!(
        "  size            : store {} B vs JSONL {} B  ({:.3}x)",
        r.store_bytes, r.jsonl_bytes, r.size_ratio
    );
    println!(
        "  read throughput : store {:.0} rec/s vs JSONL {:.0} rec/s  ({:.1}x)",
        r.store_read_records_per_s, r.jsonl_read_records_per_s, r.read_speedup
    );
    println!(
        "  bit-identical   : {}  (digest {})",
        if r.bit_identical { "yes" } else { "NO" },
        r.corpus_digest
    );
}

/// The `repro convert` entry point. Returns the process exit code:
/// 0 on success, 1 on runtime failure or verification mismatch, 2 on
/// usage errors.
pub fn run_convert(args: &[String]) -> i32 {
    let flags = match parse(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: repro convert <input>|--gen-quick \
                 [--to-store F] [--to-jsonl F] [--verify] [--out DIR|--no-out]"
            );
            return 2;
        }
    };

    let (traces, hash, input) = match load_corpus(&flags) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };

    if let Some(path) = &flags.to_store {
        match write_store_file(Path::new(path), &traces, hash) {
            Ok(stats) => println!(
                "wrote {path}: {} traces, {} records, {} B",
                stats.traces, stats.records, stats.bytes
            ),
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        }
    }
    if let Some(path) = &flags.to_jsonl {
        let file = match std::fs::File::create(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: cannot create `{path}`: {e}");
                return 1;
            }
        };
        if let Err(e) = write_jsonl(&traces, file) {
            eprintln!("error: writing `{path}`: {e}");
            return 1;
        }
        println!("wrote {path}: {} traces (JSONL)", traces.len());
    }

    if flags.verify {
        let report = match verify_corpus(&traces, hash, &input) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        };
        print_report(&report);
        if let Some(dir) = &flags.out_dir {
            let dir = Path::new(dir);
            if std::fs::create_dir_all(dir).is_ok() {
                let path = dir.join("convert_verify.json");
                match serde_json::to_string_pretty(&report) {
                    Ok(json) => {
                        if let Err(e) = std::fs::write(&path, json) {
                            eprintln!("warning: cannot write {}: {e}", path.display());
                        }
                    }
                    Err(e) => eprintln!("warning: cannot serialize report: {e:?}"),
                }
            }
        }
        if !report.bit_identical {
            eprintln!("error: store round trip is NOT bit-identical to the source corpus");
            return 1;
        }
    }
    0
}

/// Writes `traces` to a store file via the atomic temp-and-rename
/// writer.
fn write_store_file(path: &Path, traces: &[SimTrace], hash: u64) -> Result<StoreStats, StoreError> {
    let mut w = FileTraceWriter::create(path, hash)?;
    for t in traces {
        w.push(t)?;
    }
    w.finalize()
}

/// Streams the quick campaign straight into a store file — the
/// `repro bench-campaign --store PATH` path. The writer is the
/// campaign sink, so the corpus is never resident in memory.
pub fn emit_quick_store(path: &Path) -> Result<StoreStats, String> {
    let spec = CampaignSpec::quick(Platform::GlucosymOref0);
    let mut w = FileTraceWriter::create(path, spec_hash(&spec)).map_err(|e| e.to_string())?;
    let mut write_err: Option<StoreError> = None;
    run_campaign_with(&spec, None, |_, trace| {
        if write_err.is_none() {
            if let Err(e) = w.push(&trace) {
                write_err = Some(e);
            }
        }
    });
    if let Some(e) = write_err {
        return Err(e.to_string());
    }
    w.finalize().map_err(|e| e.to_string())
}
