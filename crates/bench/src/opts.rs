//! Experiment workload options and minimal CLI flag parsing.

use aps_fault::CampaignConfig;
use aps_glucose::sensor::CgmConfig;
use aps_sim::campaign::CampaignSpec;
use aps_sim::platform::Platform;
use serde::{Deserialize, Serialize};

/// Workload scaling options shared by all experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpOpts {
    /// Cohort indices to simulate.
    pub patients: Vec<usize>,
    /// Initial glucose values.
    pub initial_bgs: Vec<f64>,
    /// Fault activation steps.
    pub starts: Vec<u32>,
    /// Fault durations (steps).
    pub durations: Vec<u32>,
    /// Cross-validation folds.
    pub folds: usize,
    /// Steps per simulation.
    pub steps: u32,
    /// Hidden sizes for the MLP baseline.
    pub mlp_hidden: Vec<usize>,
    /// Hidden sizes for the LSTM baseline.
    pub lstm_hidden: Vec<usize>,
    /// Max training epochs for neural baselines.
    pub max_epochs: usize,
    /// Max training epochs for the glucose forecasters (`repro
    /// train`). Separate from `max_epochs`: the classifier presets are
    /// sized for minutes-long fits, while forecaster fits run in
    /// milliseconds and need more passes to beat persistence.
    pub forecast_epochs: usize,
    /// Cap on flat training samples after balancing (0 = no cap).
    pub train_cap: usize,
    /// Cap on sequence training samples (0 = no cap).
    pub seq_train_cap: usize,
    /// Directory for JSON result dumps (None = stdout only).
    pub out_dir: Option<String>,
}

impl Default for ExpOpts {
    fn default() -> ExpOpts {
        ExpOpts {
            patients: (0..10).collect(),
            initial_bgs: vec![80.0, 120.0, 160.0, 200.0],
            starts: vec![20, 60],
            durations: vec![24, 48],
            folds: 4,
            steps: 150,
            mlp_hidden: vec![64, 32],
            lstm_hidden: vec![32],
            max_epochs: 20,
            forecast_epochs: 120,
            train_cap: 6000,
            seq_train_cap: 1500,
            out_dir: Some("results".to_owned()),
        }
    }
}

impl ExpOpts {
    /// Paper-scale workload: all ten patients, the seven initial BG
    /// values, the nine-combination fault grid, and the paper's network
    /// architectures. Expect hours on a single core.
    pub fn full() -> ExpOpts {
        ExpOpts {
            patients: (0..10).collect(),
            initial_bgs: aps_glucose::patients::initial_bg_values().to_vec(),
            starts: vec![20, 50, 90],
            durations: vec![6, 18, 36],
            mlp_hidden: vec![256, 128],
            lstm_hidden: vec![128, 64],
            max_epochs: 60,
            train_cap: 30000,
            seq_train_cap: 8000,
            ..ExpOpts::default()
        }
    }

    /// Smoke-test workload for CI (two patients, one BG, tiny grid).
    pub fn quick() -> ExpOpts {
        ExpOpts {
            patients: vec![0, 1],
            initial_bgs: vec![140.0],
            starts: vec![30],
            durations: vec![24],
            folds: 2,
            mlp_hidden: vec![24],
            lstm_hidden: vec![12],
            max_epochs: 8,
            train_cap: 2000,
            seq_train_cap: 400,
            ..ExpOpts::default()
        }
    }

    /// The campaign spec these options describe (no monitor/mitigation).
    pub fn campaign(&self, platform: Platform) -> CampaignSpec {
        CampaignSpec {
            platform,
            patient_indices: self.patients.clone(),
            initial_bgs: self.initial_bgs.clone(),
            faults: CampaignConfig {
                starts: self.starts.clone(),
                durations: self.durations.clone(),
            },
            fault_targets: Vec::new(),
            include_fault_free: true,
            steps: self.steps,
            mitigate: false,
            context_mitigate: false,
            extended_faults: false,
            cgm: CgmConfig::default(),
        }
    }

    /// Parses `--flag value` style arguments on top of a base preset.
    ///
    /// Supported: `--full`, `--quick`, `--patients 0,1,2`,
    /// `--bgs 100,140`, `--starts 20,60`, `--durations 12,30`,
    /// `--folds N`, `--steps N`, `--epochs N`, `--forecast-epochs N`,
    /// `--out DIR`, `--no-out`.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown flags or malformed values.
    pub fn parse(args: &[String]) -> Result<ExpOpts, String> {
        let mut opts = ExpOpts::default();
        let mut i = 0;
        // Presets first, wherever they appear.
        if args.iter().any(|a| a == "--full") {
            opts = ExpOpts::full();
        } else if args.iter().any(|a| a == "--quick") {
            opts = ExpOpts::quick();
        }
        while i < args.len() {
            let flag = &args[i];
            let take = |name: &str| -> Result<String, String> {
                args.get(i + 1)
                    .cloned()
                    .ok_or_else(|| format!("missing value for {name}"))
            };
            match flag.as_str() {
                "--full" | "--quick" => {
                    i += 1;
                    continue;
                }
                "--patients" => {
                    opts.patients = parse_list(&take("--patients")?)?;
                    i += 2;
                }
                "--bgs" => {
                    opts.initial_bgs = parse_list(&take("--bgs")?)?;
                    i += 2;
                }
                "--starts" => {
                    opts.starts = parse_list(&take("--starts")?)?;
                    i += 2;
                }
                "--durations" => {
                    opts.durations = parse_list(&take("--durations")?)?;
                    i += 2;
                }
                "--folds" => {
                    opts.folds = take("--folds")?
                        .parse()
                        .map_err(|e| format!("--folds: {e}"))?;
                    i += 2;
                }
                "--steps" => {
                    opts.steps = take("--steps")?
                        .parse()
                        .map_err(|e| format!("--steps: {e}"))?;
                    i += 2;
                }
                "--epochs" => {
                    opts.max_epochs = take("--epochs")?
                        .parse()
                        .map_err(|e| format!("--epochs: {e}"))?;
                    i += 2;
                }
                "--forecast-epochs" => {
                    opts.forecast_epochs = take("--forecast-epochs")?
                        .parse()
                        .map_err(|e| format!("--forecast-epochs: {e}"))?;
                    i += 2;
                }
                "--out" => {
                    opts.out_dir = Some(take("--out")?);
                    i += 2;
                }
                "--no-out" => {
                    opts.out_dir = None;
                    i += 1;
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if opts.patients.is_empty() || opts.initial_bgs.is_empty() {
            return Err("patients and bgs must be non-empty".to_owned());
        }
        Ok(opts)
    }
}

fn parse_list<T: std::str::FromStr>(s: &str) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<T>()
                .map_err(|e| format!("bad list item `{p}`: {e}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn default_parse_is_default() {
        assert_eq!(ExpOpts::parse(&[]).unwrap(), ExpOpts::default());
    }

    #[test]
    fn presets_and_overrides_compose() {
        let o = ExpOpts::parse(&args(&["--quick", "--patients", "3,4", "--folds", "3"])).unwrap();
        assert_eq!(o.patients, vec![3, 4]);
        assert_eq!(o.folds, 3);
        assert_eq!(o.mlp_hidden, ExpOpts::quick().mlp_hidden);
    }

    #[test]
    fn full_preset_is_paper_scale() {
        let o = ExpOpts::parse(&args(&["--full"])).unwrap();
        assert_eq!(o.patients.len(), 10);
        assert_eq!(o.initial_bgs.len(), 7);
        assert_eq!(o.starts.len() * o.durations.len(), 9);
        assert_eq!(o.mlp_hidden, vec![256, 128]);
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(ExpOpts::parse(&args(&["--bogus"])).is_err());
        assert!(ExpOpts::parse(&args(&["--folds"])).is_err());
        assert!(ExpOpts::parse(&args(&["--folds", "x"])).is_err());
        assert!(ExpOpts::parse(&args(&["--patients", ""])).is_err());
    }

    #[test]
    fn campaign_spec_reflects_options() {
        let o = ExpOpts::quick();
        let spec = o.campaign(Platform::GlucosymOref0);
        assert_eq!(spec.patient_indices, o.patients);
        assert_eq!(spec.faults.starts, o.starts);
        assert!(spec.include_fault_free);
        assert!(!spec.mitigate);
    }
}
