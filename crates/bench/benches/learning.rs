//! Threshold-learning throughput: the TMEE + L-BFGS-B fit that turns a
//! CAWOT rule set into a patient-specific CAWT monitor.

use aps_core::learning::{learn_thresholds, LearnConfig};
use aps_core::scs::Scs;
use aps_optim::{lbfgsb, Bounds, Loss, Tmee};
use aps_sim::campaign::{run_campaign, CampaignSpec};
use aps_sim::platform::Platform;
use aps_types::{MgDl, UnitsPerHour};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_lbfgsb(c: &mut Criterion) {
    c.bench_function("lbfgsb_tmee_scalar_fit", |b| {
        let samples: Vec<f64> = (0..200).map(|i| 1.0 + (i as f64) * 0.01).collect();
        b.iter(|| {
            let sol = lbfgsb::minimize(
                |x, g| {
                    let beta = x[0];
                    let rs: Vec<f64> = samples.iter().map(|m| beta - m).collect();
                    g[0] = Tmee.mean_grad(&rs);
                    Tmee.mean(&rs)
                },
                &[0.0],
                &Bounds::uniform(1, -5.0, 10.0),
                &lbfgsb::Options::default(),
            )
            .unwrap();
            black_box(sol.x[0])
        });
    });
}

fn bench_threshold_learning(c: &mut Criterion) {
    // One small campaign's worth of traces, fitted repeatedly.
    let platform = Platform::GlucosymOref0;
    let spec = CampaignSpec {
        patient_indices: vec![0],
        initial_bgs: vec![120.0, 180.0],
        ..CampaignSpec::quick(platform)
    };
    let traces = run_campaign(&spec, None);
    let scs = Scs::with_default_thresholds(MgDl(110.0));
    let mut group = c.benchmark_group("threshold_learning");
    group.sample_size(10);
    group.bench_function("learn_all_rules_62_traces", |b| {
        b.iter(|| {
            let (refined, fits) =
                learn_thresholds(&scs, &traces, UnitsPerHour(1.0), &LearnConfig::default());
            black_box((refined.rules.len(), fits.len()))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lbfgsb, bench_threshold_learning);
criterion_main!(benches);
