//! Per-sample overhead of the extension layers: sensor-stream change
//! detectors and the context-dependent mitigator.
//!
//! These sit on the same 5-minute control cycle as the monitors of
//! `monitor_overhead`, so the target is the same: negligible against
//! the cycle budget (they all land in the nanosecond range, orders of
//! magnitude below even the cheapest monitor).

use aps_core::context::ContextVector;
use aps_core::hms::{ContextMitigator, ContextMitigatorConfig};
use aps_detect::{
    CgmGuard, ChangeDetector, Cusum, CusumConfig, Ewma, EwmaConfig, GuardConfig, Sprt, SprtConfig,
};
use aps_types::{Hazard, MgDl, UnitsPerHour};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("detector_update");
    // A residual stream that never alarms, so steady-state cost is
    // measured rather than the post-trip early return.
    let stream: Vec<f64> = (0..256)
        .map(|i| if i % 2 == 0 { 0.3 } else { -0.3 })
        .collect();

    group.bench_function("sprt", |b| {
        let mut d = Sprt::new(SprtConfig::default());
        let mut i = 0;
        b.iter(|| {
            let v = stream[i % stream.len()];
            i += 1;
            black_box(d.update(black_box(v)))
        });
    });
    group.bench_function("cusum", |b| {
        let mut d = Cusum::new(CusumConfig::default());
        let mut i = 0;
        b.iter(|| {
            let v = stream[i % stream.len()];
            i += 1;
            black_box(d.update(black_box(v)))
        });
    });
    group.bench_function("ewma", |b| {
        let mut d = Ewma::new(EwmaConfig::default());
        let mut i = 0;
        b.iter(|| {
            let v = stream[i % stream.len()];
            i += 1;
            black_box(d.update(black_box(v)))
        });
    });
    group.finish();
}

fn bench_guard(c: &mut Criterion) {
    c.bench_function("cgm_guard_observe", |b| {
        let mut g = CgmGuard::new(Cusum::new(CusumConfig::default()), GuardConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            // A gentle sinusoid: realistic, never alarming.
            let bg = 140.0 + 30.0 * ((i as f64) / 24.0).sin();
            i += 1;
            black_box(g.observe(black_box(MgDl(bg.round()))))
        });
    });
}

fn bench_context_mitigator(c: &mut Criterion) {
    c.bench_function("context_mitigate", |b| {
        let m = ContextMitigator::new(ContextMitigatorConfig::for_run(
            MgDl(110.0),
            UnitsPerHour(1.0),
            UnitsPerHour(6.0),
        ));
        let ctx = ContextVector {
            bg: 250.0,
            dbg: 3.0,
            iob: 1.2,
            diob: 0.001,
        };
        b.iter(|| {
            black_box(m.mitigate(
                black_box(Some(Hazard::H2)),
                black_box(&ctx),
                black_box(UnitsPerHour(0.5)),
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_detectors,
    bench_guard,
    bench_context_mitigator
);
criterion_main!(benches);
