//! Closed-loop simulation throughput: one 5-minute control cycle and a
//! full 12-hour run for each patient model.

use aps_glucose::bergman::{BergmanParams, BergmanPatient};
use aps_glucose::dalla_man::{DallaManParams, DallaManPatient};
use aps_glucose::PatientSim;
use aps_sim::closed_loop::{run, LoopConfig};
use aps_sim::platform::Platform;
use aps_types::{MgDl, UnitsPerHour};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_patient_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("patient_step_5min");
    group.bench_function("bergman", |b| {
        let mut p = BergmanPatient::new(BergmanParams::population_average());
        p.reset(MgDl(120.0));
        b.iter(|| {
            p.step(UnitsPerHour(1.0), 5.0);
            black_box(p.bg())
        });
    });
    group.bench_function("dalla_man", |b| {
        let mut p = DallaManPatient::new(DallaManParams::average_adult());
        p.reset(MgDl(120.0));
        b.iter(|| {
            p.step(UnitsPerHour(1.0), 5.0);
            black_box(p.bg())
        });
    });
    group.finish();
}

fn bench_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("closed_loop_12h");
    group.sample_size(20);
    for platform in Platform::ALL {
        group.bench_function(platform.name(), |b| {
            b.iter(|| {
                let mut patient = platform.patients().remove(0);
                let mut controller = platform.controller_for(patient.as_ref());
                let trace = run(
                    patient.as_mut(),
                    controller.as_mut(),
                    None,
                    None,
                    &LoopConfig::default(),
                );
                black_box(trace.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_patient_models, bench_full_run);
criterion_main!(benches);
