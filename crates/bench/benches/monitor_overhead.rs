//! §V-E6 — per-cycle time overhead of each safety monitor.
//!
//! The paper reports average per-cycle overheads of 252.7 µs (CAWT),
//! 664.1 µs (Guideline), 123.9 ms (MPC), 1.3 ms (DT), 30.7 ms (MLP),
//! 32.6 ms (LSTM) on their Python/TensorFlow stack. The *ordering* —
//! rule checks ≪ tree ≪ model-predictive rollout ≈ neural inference —
//! is the reproduction target; absolute numbers are native-Rust fast.

use aps_core::monitors::{
    CawMonitor, GuidelineMonitor, HazardMonitor, LstmMonitor, MlMonitor, MonitorInput, MpcMonitor,
    StlCawMonitor,
};
use aps_core::scs::Scs;
use aps_ml::data::{Dataset, StandardScaler};
use aps_ml::lstm::{Lstm, LstmConfig, SeqDataset};
use aps_ml::mlp::{Mlp, MlpConfig};
use aps_ml::tree::{DecisionTree, TreeConfig};
use aps_types::{MgDl, Step, UnitsPerHour};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn toy_flat_dataset() -> Dataset {
    // Shape-compatible with MlFeatures::DIM = 6.
    let x: Vec<Vec<f64>> = (0..200)
        .map(|i| {
            let v = i as f64;
            vec![
                100.0 + v,
                v % 7.0 - 3.0,
                v % 3.0,
                0.001 * v,
                1.0 + v % 2.0,
                1.0 + v % 4.0,
            ]
        })
        .collect();
    let y: Vec<usize> = (0..200).map(|i| usize::from(i % 5 == 0)).collect();
    Dataset::new(x, y)
}

fn toy_seq_dataset(window: usize) -> SeqDataset {
    let flat = toy_flat_dataset();
    let x: Vec<Vec<Vec<f64>>> = flat.x.windows(window).map(|w| w.to_vec()).collect();
    let y: Vec<usize> = flat.y[window - 1..].to_vec();
    SeqDataset::new(x, y)
}

fn drive(monitor: &mut dyn HazardMonitor, cycles: usize) {
    // A small deterministic scenario exercising the check path.
    for i in 0..cycles {
        let bg = 110.0 + 40.0 * ((i as f64) * 0.21).sin();
        let commanded = 1.0 + ((i % 5) as f64) * 0.4;
        let v = monitor.check(&MonitorInput {
            step: Step(i as u32),
            bg: MgDl(bg),
            commanded: UnitsPerHour(commanded),
            previous_rate: UnitsPerHour(1.0),
        });
        black_box(v);
        monitor.observe_delivery(UnitsPerHour(commanded));
    }
}

fn bench_monitors(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_check_per_cycle");
    let basal = UnitsPerHour(1.0);
    let target = MgDl(110.0);
    let scaler = StandardScaler::fit(&toy_flat_dataset());

    group.bench_function("cawt", |b| {
        let mut m = CawMonitor::new("cawt", Scs::with_default_thresholds(target), basal);
        b.iter(|| drive(&mut m, 10));
    });
    group.bench_function("cawt_stl_synthesized", |b| {
        // The same SCS executed as online STL formulas instead of
        // native checks — the cost of interpreting the specification.
        let mut m = StlCawMonitor::new("cawt-stl", Scs::with_default_thresholds(target), basal);
        b.iter(|| drive(&mut m, 10));
    });
    group.bench_function("guideline", |b| {
        let mut m = GuidelineMonitor::default();
        b.iter(|| drive(&mut m, 10));
    });
    group.bench_function("mpc", |b| {
        let mut m = MpcMonitor::population();
        b.iter(|| drive(&mut m, 10));
    });
    group.bench_function("dt", |b| {
        let tree = DecisionTree::fit(&toy_flat_dataset(), &TreeConfig::default());
        let mut m = MlMonitor::binary("dt", Box::new(tree), scaler.clone(), basal, target);
        b.iter(|| drive(&mut m, 10));
    });
    group.bench_function("mlp_256_128", |b| {
        // Paper-size architecture for a fair overhead comparison.
        let cfg = MlpConfig {
            hidden: vec![256, 128],
            max_epochs: 1,
            ..MlpConfig::default()
        };
        let mlp = Mlp::fit(&toy_flat_dataset(), &cfg);
        let mut m = MlMonitor::binary("mlp", Box::new(mlp), scaler.clone(), basal, target);
        b.iter(|| drive(&mut m, 10));
    });
    group.bench_function("lstm_128_64", |b| {
        let cfg = LstmConfig {
            hidden: vec![128, 64],
            max_epochs: 1,
            ..LstmConfig::default()
        };
        let lstm = Lstm::fit(&toy_seq_dataset(6), &cfg);
        let mut m = LstmMonitor::binary("lstm", Box::new(lstm), scaler.clone(), basal, target, 6);
        b.iter(|| drive(&mut m, 10));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_monitors
}
criterion_main!(benches);
