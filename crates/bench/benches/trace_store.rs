//! Trace-store read throughput: JSONL full-text deserialization vs
//! the columnar binary store, on the same quick-campaign corpus.
//!
//! Three store variants bracket the cost: full materialization
//! (drop-in replacement for the JSONL path), record iteration without
//! owning the traces (replay-shaped access), and raw column copies
//! (dataset-shaped access). `repro convert --gen-quick --verify` runs
//! the same comparison as a one-shot and records the numbers in
//! results/convert_verify.json.

use aps_sim::campaign::{run_campaign, CampaignSpec};
use aps_sim::io::{read_jsonl, write_jsonl};
use aps_sim::platform::Platform;
use aps_tracestore::{write_store, F64Column, TraceStoreReader};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_trace_store(c: &mut Criterion) {
    let spec = CampaignSpec {
        patient_indices: vec![0],
        initial_bgs: vec![120.0],
        ..CampaignSpec::quick(Platform::GlucosymOref0)
    };
    let traces = run_campaign(&spec, None);
    let mut jsonl = Vec::new();
    write_jsonl(&traces, &mut jsonl).expect("JSONL encode");
    let store = write_store(&traces, 0).expect("store encode");
    let reader = TraceStoreReader::from_bytes(store.clone()).expect("store open");

    let mut group = c.benchmark_group("trace_store_read");
    group.sample_size(10);
    group.bench_function("jsonl_read_all", |b| {
        b.iter(|| black_box(read_jsonl(black_box(&jsonl[..])).expect("decode").len()))
    });
    group.bench_function("store_open_and_read_all", |b| {
        b.iter(|| {
            let r = TraceStoreReader::from_bytes(black_box(store.clone())).expect("open");
            black_box(r.read_all().len())
        })
    });
    group.bench_function("store_iter_records", |b| {
        b.iter(|| {
            let mut steps = 0usize;
            for view in reader.iter() {
                steps += view.records().count();
            }
            black_box(steps)
        })
    });
    group.bench_function("store_copy_columns", |b| {
        let mut bg = Vec::new();
        let mut commanded = Vec::new();
        b.iter(|| {
            let mut acc = 0.0f64;
            for view in reader.iter() {
                view.copy_f64_column(F64Column::Bg, &mut bg);
                view.copy_f64_column(F64Column::Commanded, &mut commanded);
                acc += bg.last().copied().unwrap_or(0.0);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_trace_store);
criterion_main!(benches);
