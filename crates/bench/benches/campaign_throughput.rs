//! Fault-injection campaign throughput: the paper's headline workload.
//!
//! Compares the lock-free parallel executor against the serial
//! reference and against the seed-faithful baseline (allocating RK4 +
//! mutex-funneled executor). `repro bench-campaign` runs the same
//! comparison as a one-shot and records BENCH_campaign.json.

use aps_bench::perf::seed_baseline;
use aps_sim::campaign::{run_campaign, run_campaign_serial, CampaignSpec};
use aps_sim::platform::Platform;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn small_spec() -> CampaignSpec {
    CampaignSpec {
        patient_indices: vec![0],
        initial_bgs: vec![120.0],
        steps: 60,
        ..CampaignSpec::quick(Platform::GlucosymOref0)
    }
}

fn bench_campaign(c: &mut Criterion) {
    let spec = small_spec();
    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    group.bench_function("seed_baseline", |b| {
        b.iter(|| black_box(seed_baseline::run_campaign(black_box(&spec)).len()))
    });
    group.bench_function("serial", |b| {
        b.iter(|| black_box(run_campaign_serial(black_box(&spec), None).len()))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(run_campaign(black_box(&spec), None).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
