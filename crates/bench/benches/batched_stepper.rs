//! Scalar vs batched RK4 stepping throughput.
//!
//! Measures raw physics steps/sec of the scalar [`Rk4Scratch`] against
//! the lockstep [`BatchedRk4Scratch`] at lane widths 4 and 8, on
//! dynamics shaped like the glucose models (per-state leak + bounded
//! cross-coupling) at both patient-model dimensions (Bergman: 6
//! states, Dalla Man: 13). Criterion reports per-iteration time; each
//! batched iteration advances LANES states, so divide by the lane
//! width when comparing against the scalar rows. The end-to-end
//! campaign counterpart is `repro bench-campaign` / the
//! `campaign_throughput` bench.

use aps_glucose::ode::{BatchedRk4Scratch, Rk4Scratch};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Scalar model stand-in: leak plus saturated neighbor coupling — the
/// structural shape of the glucose compartment models.
fn scalar_dynamics<const D: usize>() -> impl Fn(f64, &[f64], &mut [f64]) {
    move |_t: f64, x: &[f64], dxdt: &mut [f64]| {
        for d in 0..D {
            let neighbor = x[(d + 1) % D];
            dxdt[d] = -0.1 * x[d] + (0.05 * neighbor).tanh();
        }
    }
}

/// The same dynamics widened across lanes: per-lane loops, no
/// horizontal operations — exactly the contract the patient banks
/// follow.
fn batched_dynamics<const D: usize, const LANES: usize>(
) -> impl Fn(f64, &[[f64; LANES]; D], &mut [[f64; LANES]; D]) {
    move |_t: f64, x: &[[f64; LANES]; D], dxdt: &mut [[f64; LANES]; D]| {
        for d in 0..D {
            let n = (d + 1) % D;
            for l in 0..LANES {
                dxdt[d][l] = -0.1 * x[d][l] + (0.05 * x[n][l]).tanh();
            }
        }
    }
}

fn bench_scalar<const D: usize>(c: &mut Criterion, name: &str) {
    let f = scalar_dynamics::<D>();
    let mut scratch = Rk4Scratch::<D>::new();
    let mut x = [100.0f64; D];
    c.bench_function(name, |b| {
        b.iter(|| {
            scratch.step(&f, 0.0, black_box(&mut x), 1.0);
            black_box(x[0])
        })
    });
}

fn bench_batched<const D: usize, const LANES: usize>(c: &mut Criterion, name: &str) {
    let f = batched_dynamics::<D, LANES>();
    let mut scratch = BatchedRk4Scratch::<D, LANES>::new();
    let mut x = [[100.0f64; LANES]; D];
    c.bench_function(name, |b| {
        b.iter(|| {
            scratch.step(&f, 0.0, black_box(&mut x), 1.0);
            black_box(x[0][0])
        })
    });
}

fn bench_steppers(c: &mut Criterion) {
    // Bergman dimension (6 states).
    bench_scalar::<6>(c, "rk4_step/scalar/d6");
    bench_batched::<6, 4>(c, "rk4_step/batched/d6_lanes4");
    bench_batched::<6, 8>(c, "rk4_step/batched/d6_lanes8");
    // Dalla Man dimension (13 states).
    bench_scalar::<13>(c, "rk4_step/scalar/d13");
    bench_batched::<13, 4>(c, "rk4_step/batched/d13_lanes4");
    bench_batched::<13, 8>(c, "rk4_step/batched/d13_lanes8");
}

criterion_group!(benches, bench_steppers);
criterion_main!(benches);
