//! End-to-end exit-code gate for `repro lint`: the committed baseline
//! must keep the real workspace green under `--deny-new`, and a
//! synthetic new violation must flip the exit code to 1.

use aps_bench::lintcmd::run_lint;
use std::path::PathBuf;

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_owned()).collect()
}

fn workspace_root() -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.to_string_lossy().into_owned()
}

#[test]
fn deny_new_passes_on_committed_baseline() {
    let root = workspace_root();
    let code = run_lint(&argv(&["--deny-new", "--root", &root, "--no-out"]));
    assert_eq!(code, 0, "repro lint --deny-new must be clean at HEAD");
}

#[test]
fn deny_new_fails_then_baselining_clears_it() {
    // A miniature workspace with one fresh violation and no baseline.
    let dir = std::env::temp_dir().join(format!("aps-lint-gate-{}", std::process::id()));
    let src = dir.join("src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    )
    .expect("write lib.rs");
    std::fs::write(
        dir.join("lint.toml"),
        "[unwrap_audit]\nmodules = [\"src\"]\n",
    )
    .expect("write lint.toml");

    let root = dir.to_string_lossy().into_owned();
    let deny = argv(&["--deny-new", "--root", &root, "--no-out"]);
    assert_eq!(run_lint(&deny), 1, "un-baselined violation must fail");

    // Accepting the debt (creating the baseline) turns the same tree
    // green; the violation is still reported, just not new.
    let write = argv(&["--write-baseline", "--root", &root, "--no-out"]);
    assert_eq!(run_lint(&write), 0, "baseline creation must succeed");
    assert_eq!(run_lint(&deny), 0, "baselined violation must pass");

    // A second fresh violation trips the gate again and the ratchet
    // refuses to absorb it.
    std::fs::write(
        src.join("lib.rs"),
        "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
         pub fn g(x: Option<u8>) -> u8 { x.expect(\"set\") }\n",
    )
    .expect("rewrite lib.rs");
    assert_eq!(run_lint(&deny), 1, "second violation must fail");
    assert_eq!(run_lint(&write), 1, "ratchet must refuse to grow");

    let _ = std::fs::remove_dir_all(&dir);
}
