//! End-to-end exit-code gate for `repro convert`: round trips succeed
//! with exit 0, usage errors exit 2, and malformed inputs surface the
//! store's typed errors with exit 1.

use aps_bench::convert::run_convert;
use aps_tracestore::{StoreError, TraceStoreReader};
use std::path::{Path, PathBuf};

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_owned()).collect()
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aps-convert-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir.join(name)
}

/// A tiny JSONL corpus written through the sim io path.
fn write_corpus_jsonl(path: &Path) {
    use aps_types::{SimTrace, Step, StepRecord, TraceMeta};
    let mut t = SimTrace::new(TraceMeta {
        patient: "adult#000".to_owned(),
        initial_bg: 120.0,
        ..TraceMeta::default()
    });
    for i in 0..20u32 {
        t.push(StepRecord::blank(Step(i)));
    }
    aps_sim::io::save_jsonl(&[t], path).expect("write corpus");
}

#[test]
fn jsonl_to_store_and_back_verifies() {
    let jsonl = scratch("corpus.jsonl");
    let store = scratch("corpus.apst");
    let back = scratch("corpus_back.jsonl");
    write_corpus_jsonl(&jsonl);

    let code = run_convert(&argv(&[
        jsonl.to_str().unwrap(),
        "--to-store",
        store.to_str().unwrap(),
        "--verify",
        "--no-out",
    ]));
    assert_eq!(code, 0, "jsonl -> store --verify must pass");
    assert!(store.exists());

    let code = run_convert(&argv(&[
        store.to_str().unwrap(),
        "--to-jsonl",
        back.to_str().unwrap(),
        "--verify",
        "--no-out",
    ]));
    assert_eq!(code, 0, "store -> jsonl --verify must pass");
    let a = aps_sim::io::load_jsonl(&jsonl).unwrap();
    let b = aps_sim::io::load_jsonl(&back).unwrap();
    assert_eq!(a, b, "full round trip must be lossless");
}

#[test]
fn usage_errors_exit_2() {
    // No input at all.
    assert_eq!(run_convert(&argv(&["--to-store", "x.apst"])), 2);
    // Input but nothing to do.
    assert_eq!(run_convert(&argv(&["corpus.jsonl"])), 2);
    // Unknown flag.
    assert_eq!(run_convert(&argv(&["corpus.jsonl", "--frobnicate"])), 2);
    // --gen-quick and a file input are mutually exclusive.
    assert_eq!(
        run_convert(&argv(&["corpus.jsonl", "--gen-quick", "--verify"])),
        2
    );
}

#[test]
fn missing_input_file_exits_1() {
    let out = scratch("never.apst");
    let code = run_convert(&argv(&[
        "/nonexistent/corpus.jsonl",
        "--to-store",
        out.to_str().unwrap(),
    ]));
    assert_eq!(code, 1);
    assert!(!out.exists(), "no output on a failed read");
}

#[test]
fn malformed_store_is_a_typed_error_and_exits_1() {
    // A file that *claims* to be a store (magic) but is torn mid-file
    // must surface the reader's typed error, not a JSONL parse error.
    let torn = scratch("torn.apst");
    let mut bytes = b"APSTRACE".to_vec();
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&[0u8; 4]); // flags
    std::fs::write(&torn, &bytes).expect("write torn store");

    // The library surface reports the typed variant...
    let err = TraceStoreReader::open(&torn).expect_err("torn file must not open");
    assert!(
        matches!(err, StoreError::Truncated { .. }),
        "expected Truncated, got {err:?}"
    );

    // ...and the CLI maps it to exit 1.
    let out = scratch("torn_out.jsonl");
    let code = run_convert(&argv(&[
        torn.to_str().unwrap(),
        "--to-jsonl",
        out.to_str().unwrap(),
    ]));
    assert_eq!(code, 1);
}

#[test]
fn future_version_store_is_rejected_with_exit_1() {
    use aps_types::{SimTrace, TraceMeta};
    let future = scratch("future.apst");
    let mut bytes =
        aps_tracestore::write_store(&[SimTrace::new(TraceMeta::default())], 0).expect("encode");
    // Bump the header's format version past what this build supports.
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&future, &bytes).expect("write future store");

    let err = TraceStoreReader::open(&future).expect_err("future version must not open");
    assert!(
        matches!(
            err,
            StoreError::Version {
                found: 99,
                supported: aps_tracestore::FORMAT_VERSION
            }
        ),
        "expected Version, got {err:?}"
    );

    let code = run_convert(&argv(&[future.to_str().unwrap(), "--verify", "--no-out"]));
    assert_eq!(code, 1);
}
