//! Minimal dense row-major matrix.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// He-scaled Gaussian initialization (for ReLU layers).
    pub fn he_init(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Matrix {
        let scale = (2.0 / rows as f64).sqrt();
        let mut m = Matrix::zeros(rows, cols);
        for v in &mut m.data {
            // Box-Muller standard normal.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            *v = z * scale;
        }
        m
    }

    /// Xavier-scaled uniform initialization (for tanh/sigmoid gates).
    pub fn xavier_init(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Matrix {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let mut m = Matrix::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.gen_range(-bound..bound);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the flat data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the flat data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let lhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(lhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise map.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Adds a row vector to every row (broadcast), in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_broadcast(&mut self, bias: &[f64]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (v, b) in self.data[r * self.cols..(r + 1) * self.cols]
                .iter_mut()
                .zip(bias)
            {
                *v += b;
            }
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn broadcast_and_map() {
        let mut a = Matrix::zeros(2, 2);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.data(), &[1.0, 2.0, 1.0, 2.0]);
        let b = a.map(|v| v * 10.0);
        assert_eq!(b.data(), &[10.0, 20.0, 10.0, 20.0]);
    }

    #[test]
    fn init_is_seeded_and_scaled() {
        let mut rng1 = ChaCha8Rng::seed_from_u64(1);
        let mut rng2 = ChaCha8Rng::seed_from_u64(1);
        let a = Matrix::he_init(64, 32, &mut rng1);
        let b = Matrix::he_init(64, 32, &mut rng2);
        assert_eq!(a, b);
        let var: f64 =
            a.data().iter().map(|v| v * v).sum::<f64>() / a.data().len() as f64;
        assert!((var - 2.0 / 64.0).abs() < 0.01, "he variance {var}");
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn bad_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn indexing() {
        let mut a = Matrix::zeros(2, 2);
        a[(1, 0)] = 5.0;
        assert_eq!(a[(1, 0)], 5.0);
        assert_eq!(a.row(1), &[5.0, 0.0]);
    }
}
