//! Minimal dense row-major matrix.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
///
/// Serde round-trips through saved model bundles; container-level
/// `#[serde(default)]` (the empty 0×0 matrix) keeps old bundles
/// loading as fields are added.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// He-scaled Gaussian initialization (for ReLU layers).
    pub fn he_init(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Matrix {
        let scale = (2.0 / rows as f64).sqrt();
        let mut m = Matrix::zeros(rows, cols);
        for v in &mut m.data {
            // Box-Muller standard normal.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            *v = z * scale;
        }
        m
    }

    /// Xavier-scaled uniform initialization (for tanh/sigmoid gates).
    pub fn xavier_init(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Matrix {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let mut m = Matrix::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.gen_range(-bound..bound);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the flat data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the flat data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Outer-loop blocking factor for the matmul kernels: `KC` rows of
    /// the right-hand operand are streamed per block so they stay in
    /// L1/L2 across all rows of the left-hand operand. Accumulation
    /// order over `k` is unchanged (ascending within and across
    /// blocks), so results are bit-identical to the naive kernel.
    const KC: usize = 64;

    /// Matrix product `self · rhs`.
    ///
    /// Cache-blocked `i-k-j` kernel with a zero-skip for sparse
    /// activations (post-ReLU rows are typically half zeros).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`matmul`](Matrix::matmul) into a preallocated output (cleared
    /// first), for callers that reuse buffers across calls.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch with `out`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        assert_eq!(out.rows, self.rows, "output row mismatch");
        assert_eq!(out.cols, rhs.cols, "output column mismatch");
        out.data.fill(0.0);
        for k0 in (0..self.cols).step_by(Self::KC) {
            let k1 = (k0 + Self::KC).min(self.cols);
            for i in 0..self.rows {
                let lhs_row = &self.data[i * self.cols..(i + 1) * self.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (k, &a) in lhs_row[k0..k1].iter().enumerate().map(|(d, a)| (k0 + d, a)) {
                    if a == 0.0 {
                        continue;
                    }
                    let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                    for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                        *o += a * b;
                    }
                }
            }
        }
    }

    /// Matrix product `self · rhsᵀ` without materializing the
    /// transpose: `out[i][j] = Σ_k self[i][k] · rhs[j][k]`. Both
    /// operands are walked row-wise (unit stride), which beats
    /// `self.matmul(&rhs.transpose())` by skipping the transpose
    /// allocation + strided copy. Accumulation over `k` is ascending,
    /// so results are bit-identical to the transpose-then-multiply
    /// path.
    ///
    /// # Panics
    ///
    /// Panics when the inner dimensions (`self.cols` vs `rhs.cols`)
    /// differ.
    pub fn matmul_transposed(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_transposed dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let lhs_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * rhs.rows..(i + 1) * rhs.rows];
            for (o, j) in out_row.iter_mut().zip(0..rhs.rows) {
                let rhs_row = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                let mut acc = 0.0;
                for (&a, &b) in lhs_row.iter().zip(rhs_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Matrix product `selfᵀ · rhs` without materializing the
    /// transpose: `out[i][j] = Σ_k self[k][i] · rhs[k][j]`. The `k`
    /// loop is outermost so both operands stream row-wise; this is the
    /// backward-pass `dW = aᵀ · dz` shape. Accumulation over `k` is
    /// ascending — bit-identical to `self.transpose().matmul(rhs)`.
    ///
    /// # Panics
    ///
    /// Panics when the inner dimensions (`self.rows` vs `rhs.rows`)
    /// differ.
    pub fn matmul_at_b(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "matmul_at_b dimension mismatch");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k0 in (0..self.rows).step_by(Self::KC) {
            let k1 = (k0 + Self::KC).min(self.rows);
            for k in k0..k1 {
                let lhs_row = &self.data[k * self.cols..(k + 1) * self.cols];
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (i, &a) in lhs_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                    for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                        *o += a * b;
                    }
                }
            }
        }
        out
    }

    /// Fused GEMV for row-vector inputs: writes `x · self + bias` into
    /// `out` without allocating. This is the monitor-inference hot
    /// path — one sample through a `in × out` layer per control cycle —
    /// where the seed built three `Matrix` temporaries per layer.
    ///
    /// The accumulation order over `x` matches
    /// `Matrix::from_vec(1, n, x).matmul(self)`, so probabilities are
    /// bit-identical to the matrix path.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`, `bias.len() != cols`, or
    /// `out.len() != cols`.
    pub fn vecmat_bias_into(&self, x: &[f64], bias: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "vecmat input length mismatch");
        assert_eq!(bias.len(), self.cols, "vecmat bias length mismatch");
        assert_eq!(out.len(), self.cols, "vecmat output length mismatch");
        out.fill(0.0);
        for (k, &a) in x.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let row = &self.data[k * self.cols..(k + 1) * self.cols];
            for (o, &b) in out.iter_mut().zip(row) {
                *o += a * b;
            }
        }
        for (o, &b) in out.iter_mut().zip(bias) {
            *o += b;
        }
    }

    /// Fused GEMV accumulate: `out += x · self`, without clearing
    /// `out`. The LSTM cell preloads `out` with the gate biases and
    /// accumulates the `[x_t, h_{t-1}] · W` product on top — this is
    /// that kernel, shared here so every recurrent layer uses the same
    /// zero-skipping row-streaming loop.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `out.len() != cols`.
    pub fn vecmat_acc_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "vecmat input length mismatch");
        assert_eq!(out.len(), self.cols, "vecmat output length mismatch");
        for (k, &a) in x.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let row = &self.data[k * self.cols..(k + 1) * self.cols];
            for (o, &b) in out.iter_mut().zip(row) {
                *o += a * b;
            }
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise map.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Adds a row vector to every row (broadcast), in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_broadcast(&mut self, bias: &[f64]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (v, b) in self.data[r * self.cols..(r + 1) * self.cols]
                .iter_mut()
                .zip(bias)
            {
                *v += b;
            }
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn broadcast_and_map() {
        let mut a = Matrix::zeros(2, 2);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.data(), &[1.0, 2.0, 1.0, 2.0]);
        let b = a.map(|v| v * 10.0);
        assert_eq!(b.data(), &[10.0, 20.0, 10.0, 20.0]);
    }

    #[test]
    fn init_is_seeded_and_scaled() {
        let mut rng1 = ChaCha8Rng::seed_from_u64(1);
        let mut rng2 = ChaCha8Rng::seed_from_u64(1);
        let a = Matrix::he_init(64, 32, &mut rng1);
        let b = Matrix::he_init(64, 32, &mut rng2);
        assert_eq!(a, b);
        let var: f64 = a.data().iter().map(|v| v * v).sum::<f64>() / a.data().len() as f64;
        assert!((var - 2.0 / 64.0).abs() < 0.01, "he variance {var}");
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn bad_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn indexing() {
        let mut a = Matrix::zeros(2, 2);
        a[(1, 0)] = 5.0;
        assert_eq!(a[(1, 0)], 5.0);
        assert_eq!(a.row(1), &[5.0, 0.0]);
    }

    /// Deterministic pseudo-random matrix with a sprinkling of exact
    /// zeros (to exercise the zero-skip branches).
    fn test_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| {
                let r = next();
                if r % 7 == 0 {
                    0.0
                } else {
                    (r % 1000) as f64 / 250.0 - 2.0
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn blocked_matmul_is_bit_identical_across_block_boundaries() {
        // Inner dimension 150 spans multiple KC=64 blocks.
        let a = test_matrix(9, 150, 3);
        let b = test_matrix(150, 11, 5);
        // Unblocked reference with the same i-k-j accumulation order.
        let mut reference = Matrix::zeros(9, 11);
        for i in 0..9 {
            for k in 0..150 {
                let v = a[(i, k)];
                if v == 0.0 {
                    continue;
                }
                for j in 0..11 {
                    reference[(i, j)] += v * b[(k, j)];
                }
            }
        }
        assert_eq!(a.matmul(&b), reference);
    }

    #[test]
    fn transposed_kernels_match_materialized_transpose() {
        let a = test_matrix(7, 130, 11);
        let b = test_matrix(5, 130, 13);
        assert_eq!(a.matmul_transposed(&b), a.matmul(&b.transpose()));
        let c = test_matrix(130, 6, 17);
        let d = test_matrix(130, 4, 19);
        assert_eq!(c.matmul_at_b(&d), c.transpose().matmul(&d));
    }

    #[test]
    fn fused_gemv_matches_matmul_plus_broadcast() {
        let w = test_matrix(80, 33, 23);
        let x: Vec<f64> = (0..80)
            .map(|i| {
                if i % 6 == 0 {
                    0.0
                } else {
                    i as f64 * 0.25 - 9.0
                }
            })
            .collect();
        let bias: Vec<f64> = (0..33).map(|j| j as f64 * 0.1 - 1.0).collect();
        let mut reference = Matrix::from_vec(1, 80, x.clone()).matmul(&w);
        reference.add_row_broadcast(&bias);
        let mut out = vec![0.0; 33];
        w.vecmat_bias_into(&x, &bias, &mut out);
        assert_eq!(out, reference.data());

        let mut acc = bias.clone();
        w.vecmat_acc_into(&x, &mut acc);
        for (got, want) in acc.iter().zip(reference.data()) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_into_reuses_dirty_buffers() {
        let a = test_matrix(4, 20, 29);
        let b = test_matrix(20, 3, 31);
        let mut out = Matrix::from_vec(4, 3, vec![f64::NAN; 12]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    #[should_panic(expected = "matmul_transposed dimension mismatch")]
    fn bad_transposed_matmul_panics() {
        let _ = Matrix::zeros(2, 3).matmul_transposed(&Matrix::zeros(2, 4));
    }
}
