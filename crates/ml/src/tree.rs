//! CART decision tree with Gini impurity (the paper's DT monitor).

use crate::data::Dataset;
use crate::Classifier;
use serde::{Deserialize, Serialize};

/// Decision-tree hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
}

impl Default for TreeConfig {
    fn default() -> TreeConfig {
        TreeConfig {
            max_depth: 12,
            min_samples_split: 8,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Class-probability distribution at the leaf.
        proba: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A trained CART classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    n_classes: usize,
    depth: usize,
}

impl DecisionTree {
    /// Fits a tree on the dataset.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset, config: &TreeConfig) -> DecisionTree {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let n_classes = data.n_classes().max(2);
        let idx: Vec<usize> = (0..data.len()).collect();
        let (root, depth) = build(data, &idx, n_classes, config, 0);
        DecisionTree {
            root,
            n_classes,
            depth,
        }
    }

    /// Depth actually reached during fitting.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }
}

fn class_counts(data: &Dataset, idx: &[usize], n_classes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n_classes];
    for &i in idx {
        counts[data.y[i]] += 1;
    }
    counts
}

fn gini(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

fn leaf(data: &Dataset, idx: &[usize], n_classes: usize) -> Node {
    let counts = class_counts(data, idx, n_classes);
    let total: usize = counts.iter().sum::<usize>().max(1);
    Node::Leaf {
        proba: counts.iter().map(|&c| c as f64 / total as f64).collect(),
    }
}

fn build(
    data: &Dataset,
    idx: &[usize],
    n_classes: usize,
    config: &TreeConfig,
    depth: usize,
) -> (Node, usize) {
    let counts = class_counts(data, idx, n_classes);
    let node_gini = gini(&counts);
    if depth >= config.max_depth || idx.len() < config.min_samples_split || node_gini == 0.0 {
        return (leaf(data, idx, n_classes), depth);
    }

    // Exhaustive best split over features and midpoints.
    let dim = data.dim();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, impurity)
    for feature in 0..dim {
        let mut values: Vec<f64> = idx.iter().map(|&i| data.x[i][feature]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        // Candidate thresholds: midpoints, subsampled for wide value sets.
        let stride = (values.len() / 32).max(1);
        for w in values.windows(2).step_by(stride) {
            let threshold = 0.5 * (w[0] + w[1]);
            let mut left = vec![0usize; n_classes];
            let mut right = vec![0usize; n_classes];
            for &i in idx {
                if data.x[i][feature] <= threshold {
                    left[data.y[i]] += 1;
                } else {
                    right[data.y[i]] += 1;
                }
            }
            let nl: usize = left.iter().sum();
            let nr: usize = right.iter().sum();
            if nl == 0 || nr == 0 {
                continue;
            }
            let weighted = (nl as f64 * gini(&left) + nr as f64 * gini(&right)) / idx.len() as f64;
            if best.map(|(_, _, g)| weighted < g - 1e-12).unwrap_or(true) {
                best = Some((feature, threshold, weighted));
            }
        }
    }

    match best {
        Some((feature, threshold, impurity)) if impurity < node_gini - 1e-12 => {
            let (l_idx, r_idx): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| data.x[i][feature] <= threshold);
            let (l, dl) = build(data, &l_idx, n_classes, config, depth + 1);
            let (r, dr) = build(data, &r_idx, n_classes, config, depth + 1);
            (
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(l),
                    right: Box::new(r),
                },
                dl.max(dr),
            )
        }
        _ => (leaf(data, idx, n_classes), depth),
    }
}

impl Classifier for DecisionTree {
    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { proba } => return proba.clone(),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_dataset() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let a = i as f64 / 10.0;
                let b = j as f64 / 10.0;
                x.push(vec![a, b]);
                y.push(usize::from((a > 0.5) != (b > 0.5)));
            }
        }
        Dataset::new(x, y)
    }

    #[test]
    fn learns_xor_exactly() {
        let data = xor_dataset();
        let tree = DecisionTree::fit(&data, &TreeConfig::default());
        let correct = data
            .x
            .iter()
            .zip(&data.y)
            .filter(|(x, &y)| tree.predict(x) == y)
            .count();
        assert_eq!(correct, data.len(), "tree should fit XOR perfectly");
        assert!(tree.depth() >= 2);
        assert!(tree.n_leaves() >= 4);
    }

    #[test]
    fn depth_limit_respected() {
        let data = xor_dataset();
        let tree = DecisionTree::fit(
            &data,
            &TreeConfig {
                max_depth: 1,
                min_samples_split: 2,
            },
        );
        assert!(tree.depth() <= 1);
        assert!(tree.n_leaves() <= 2);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let data = Dataset::new(vec![vec![0.0], vec![1.0], vec![2.0]], vec![1, 1, 1]);
        let tree = DecisionTree::fit(&data, &TreeConfig::default());
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict(&[5.0]), 1);
    }

    #[test]
    fn proba_sums_to_one() {
        let data = xor_dataset();
        let tree = DecisionTree::fit(
            &data,
            &TreeConfig {
                max_depth: 3,
                min_samples_split: 30,
            },
        );
        for x in &data.x {
            let p = tree.predict_proba(x);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[10, 0]), 0.0);
        assert!((gini(&[5, 5]) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
    }

    #[test]
    fn three_class_problem() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let v = i as f64;
            x.push(vec![v]);
            y.push(if v < 10.0 {
                0
            } else if v < 20.0 {
                1
            } else {
                2
            });
        }
        let data = Dataset::new(x, y);
        let tree = DecisionTree::fit(&data, &TreeConfig::default());
        assert_eq!(tree.n_classes(), 3);
        assert_eq!(tree.predict(&[5.0]), 0);
        assert_eq!(tree.predict(&[15.0]), 1);
        assert_eq!(tree.predict(&[25.0]), 2);
    }
}
