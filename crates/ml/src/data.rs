//! Dataset utilities: standardization, splits, k-fold indices.

use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A supervised dataset of flat feature vectors with integer labels.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature rows (each of equal length).
    pub x: Vec<Vec<f64>>,
    /// Class labels, one per row.
    pub y: Vec<usize>,
}

impl Dataset {
    /// Creates a dataset; validates shapes.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` lengths differ or rows are ragged.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<usize>) -> Dataset {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        if let Some(first) = x.first() {
            let d = first.len();
            assert!(x.iter().all(|r| r.len() == d), "ragged feature rows");
        }
        Dataset { x, y }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Feature dimension (0 when empty).
    pub fn dim(&self) -> usize {
        self.x.first().map(|r| r.len()).unwrap_or(0)
    }

    /// Number of classes (max label + 1; 0 when empty).
    pub fn n_classes(&self) -> usize {
        self.y.iter().max().map(|&m| m + 1).unwrap_or(0)
    }

    /// Selects a subset by indices.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        Dataset {
            x: idx.iter().map(|&i| self.x[i].clone()).collect(),
            y: idx.iter().map(|&i| self.y[i]).collect(),
        }
    }

    /// Shuffled train/validation split (fraction `val` to validation).
    pub fn split(&self, val: f64, seed: u64) -> (Dataset, Dataset) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let n_val = ((self.len() as f64) * val).round() as usize;
        let (val_idx, train_idx) = idx.split_at(n_val.min(self.len()));
        (self.subset(train_idx), self.subset(val_idx))
    }
}

/// Per-feature standardizer (zero mean, unit variance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    mean: Vec<f64>,
    sd: Vec<f64>,
}

impl StandardScaler {
    /// Fits mean/sd on a dataset's features.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset) -> StandardScaler {
        assert!(!data.is_empty(), "cannot fit a scaler on an empty dataset");
        let d = data.dim();
        let n = data.len() as f64;
        let mut mean = vec![0.0; d];
        for row in &data.x {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut sd = vec![0.0; d];
        for row in &data.x {
            for ((s, v), m) in sd.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut sd {
            *s = (*s / n).sqrt().max(1e-9);
        }
        StandardScaler { mean, sd }
    }

    /// Standardizes one feature vector.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(&self.mean)
            .zip(&self.sd)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    /// Standardizes a whole dataset (labels untouched).
    pub fn transform_dataset(&self, data: &Dataset) -> Dataset {
        Dataset {
            x: data.x.iter().map(|r| self.transform(r)).collect(),
            y: data.y.clone(),
        }
    }
}

/// Deterministic k-fold index sets: returns `k` (train, test) pairs.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, v) in idx.into_iter().enumerate() {
        folds[i % k].push(v);
    }
    (0..k)
        .map(|f| {
            let test = folds[f].clone();
            let train: Vec<usize> = folds
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != f)
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            (train, test)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect(),
            (0..10).map(|i| i % 2).collect(),
        )
    }

    #[test]
    fn shapes_and_classes() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]);
    }

    #[test]
    fn split_partitions_everything() {
        let d = toy();
        let (train, val) = d.split(0.3, 42);
        assert_eq!(train.len() + val.len(), d.len());
        assert_eq!(val.len(), 3);
    }

    #[test]
    fn scaler_zero_mean_unit_var() {
        let d = toy();
        let scaler = StandardScaler::fit(&d);
        let t = scaler.transform_dataset(&d);
        for j in 0..t.dim() {
            let mean: f64 = t.x.iter().map(|r| r[j]).sum::<f64>() / t.len() as f64;
            let var: f64 = t.x.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / t.len() as f64;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn scaler_handles_constant_features() {
        let d = Dataset::new(vec![vec![5.0], vec![5.0]], vec![0, 1]);
        let scaler = StandardScaler::fit(&d);
        let t = scaler.transform(&[5.0]);
        assert!(t[0].abs() < 1e-6);
    }

    #[test]
    fn kfold_covers_all_indices_once() {
        let folds = kfold_indices(103, 4, 7);
        assert_eq!(folds.len(), 4);
        let mut seen = vec![0usize; 103];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 103);
            for &i in test {
                seen[i] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each index tested exactly once"
        );
    }

    #[test]
    fn kfold_is_deterministic() {
        assert_eq!(kfold_indices(50, 4, 9), kfold_indices(50, 4, 9));
    }
}
