//! Dataset utilities: standardization, splits, k-fold indices, and the
//! streaming [`TraceDataset`] adapter that turns simulation traces into
//! glucose-forecast training pairs.

use aps_types::SimTrace;
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A supervised dataset of flat feature vectors with integer labels.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature rows (each of equal length).
    pub x: Vec<Vec<f64>>,
    /// Class labels, one per row.
    pub y: Vec<usize>,
}

impl Dataset {
    /// Creates a dataset; validates shapes.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` lengths differ or rows are ragged.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<usize>) -> Dataset {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        if let Some(first) = x.first() {
            let d = first.len();
            assert!(x.iter().all(|r| r.len() == d), "ragged feature rows");
        }
        Dataset { x, y }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Feature dimension (0 when empty).
    pub fn dim(&self) -> usize {
        self.x.first().map(|r| r.len()).unwrap_or(0)
    }

    /// Number of classes (max label + 1; 0 when empty).
    pub fn n_classes(&self) -> usize {
        self.y.iter().max().map(|&m| m + 1).unwrap_or(0)
    }

    /// Selects a subset by indices.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        Dataset {
            x: idx.iter().map(|&i| self.x[i].clone()).collect(),
            y: idx.iter().map(|&i| self.y[i]).collect(),
        }
    }

    /// Shuffled train/validation split (fraction `val` to validation).
    pub fn split(&self, val: f64, seed: u64) -> (Dataset, Dataset) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let n_val = ((self.len() as f64) * val).round() as usize;
        let (val_idx, train_idx) = idx.split_at(n_val.min(self.len()));
        (self.subset(train_idx), self.subset(val_idx))
    }
}

/// Per-feature standardizer (zero mean, unit variance).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct StandardScaler {
    mean: Vec<f64>,
    sd: Vec<f64>,
}

impl StandardScaler {
    /// Fits mean/sd on a dataset's features.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset) -> StandardScaler {
        assert!(!data.is_empty(), "cannot fit a scaler on an empty dataset");
        let d = data.dim();
        let n = data.len() as f64;
        let mut mean = vec![0.0; d];
        for row in &data.x {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut sd = vec![0.0; d];
        for row in &data.x {
            for ((s, v), m) in sd.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut sd {
            *s = (*s / n).sqrt().max(1e-9);
        }
        StandardScaler { mean, sd }
    }

    /// Fits mean/sd over every timestep of every sequence (the
    /// sequence-dataset counterpart of [`StandardScaler::fit`]).
    ///
    /// # Panics
    ///
    /// Panics when no timestep is present.
    pub fn fit_sequences(x: &[Vec<Vec<f64>>]) -> StandardScaler {
        let d = x
            .first()
            .and_then(|s| s.first())
            .map(|r| r.len())
            .unwrap_or(0);
        let n: usize = x.iter().map(|s| s.len()).sum();
        assert!(n > 0 && d > 0, "cannot fit a scaler on an empty dataset");
        let mut mean = vec![0.0; d];
        for row in x.iter().flatten() {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut sd = vec![0.0; d];
        for row in x.iter().flatten() {
            for ((s, v), m) in sd.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut sd {
            *s = (*s / n as f64).sqrt().max(1e-9);
        }
        StandardScaler { mean, sd }
    }

    /// Standardizes one feature vector.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(&self.mean)
            .zip(&self.sd)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    /// Standardizes one feature vector into a caller-owned buffer —
    /// the allocation-free path used by per-cycle online monitors.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `out` do not match the fitted dimension.
    pub fn transform_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.mean.len(), "input dimension mismatch");
        assert_eq!(out.len(), self.mean.len(), "output dimension mismatch");
        for (((o, v), m), s) in out.iter_mut().zip(x).zip(&self.mean).zip(&self.sd) {
            *o = (v - m) / s;
        }
    }

    /// Standardizes one feature vector in place (allocation-free).
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the fitted dimension.
    pub fn transform_in_place(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.mean.len(), "input dimension mismatch");
        for ((v, m), s) in x.iter_mut().zip(&self.mean).zip(&self.sd) {
            *v = (*v - m) / s;
        }
    }

    /// Standardizes a whole dataset (labels untouched).
    pub fn transform_dataset(&self, data: &Dataset) -> Dataset {
        Dataset {
            x: data.x.iter().map(|r| self.transform(r)).collect(),
            y: data.y.clone(),
        }
    }
}

/// Deterministic k-fold index sets: returns `k` (train, test) pairs.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, v) in idx.into_iter().enumerate() {
        folds[i % k].push(v);
    }
    (0..k)
        .map(|f| {
            let test = folds[f].clone();
            let train: Vec<usize> = folds
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != f)
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            (train, test)
        })
        .collect()
}

/// A sequence-regression dataset: each sample is a `[T][D]` feature
/// window with a **per-timestep** target (BG at the forecast horizon
/// from that step). Supervising every step — not only the window's
/// last — is what lets a recurrent forecaster stream online with a
/// carried hidden state: cold-start and warmed-up behavior are both in
/// the training distribution.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ForecastSet {
    /// Feature windows (equal length, equal feature dimension).
    pub x: Vec<Vec<Vec<f64>>>,
    /// Targets, one per window timestep.
    pub y: Vec<Vec<f64>>,
}

impl ForecastSet {
    /// Creates a forecast set, validating shapes.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or ragged windows.
    pub fn new(x: Vec<Vec<Vec<f64>>>, y: Vec<Vec<f64>>) -> ForecastSet {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        if let Some(first) = x.first() {
            let t = first.len();
            let d = first.first().map(|v| v.len()).unwrap_or(0);
            for (s, ys) in x.iter().zip(&y) {
                assert_eq!(s.len(), t, "ragged sequence lengths");
                assert_eq!(ys.len(), t, "target/step length mismatch");
                assert!(s.iter().all(|f| f.len() == d), "ragged feature dims");
            }
        }
        ForecastSet { x, y }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Window length (0 when empty).
    pub fn window(&self) -> usize {
        self.x.first().map(|s| s.len()).unwrap_or(0)
    }

    /// Per-step feature dimension (0 when empty).
    pub fn dim(&self) -> usize {
        self.x
            .first()
            .and_then(|s| s.first())
            .map(|r| r.len())
            .unwrap_or(0)
    }

    /// Standardizes every timestep's features in place (targets are
    /// left in mg/dL).
    pub fn standardize(&mut self, scaler: &StandardScaler) {
        for window in &mut self.x {
            for row in window.iter_mut() {
                scaler.transform_in_place(row);
            }
        }
    }

    /// Shuffled train/validation split (fraction `val` to validation).
    pub fn split(&self, val: f64, seed: u64) -> (ForecastSet, ForecastSet) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let n_val = ((self.len() as f64) * val).round() as usize;
        let (val_idx, train_idx) = idx.split_at(n_val.min(self.len()));
        let pick = |idx: &[usize]| ForecastSet {
            x: idx.iter().map(|&i| self.x[i].clone()).collect(),
            y: idx.iter().map(|&i| self.y[i].clone()).collect(),
        };
        (pick(train_idx), pick(val_idx))
    }
}

/// SplitMix64: a stateless deterministic hash used for reservoir
/// acceptance decisions (no RNG state to carry or serialize).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Streaming adapter from simulation traces to glucose-forecast
/// training pairs.
///
/// Feed it one [`SimTrace`] at a time — e.g. as the sink of
/// `run_campaign_with`, so a paper-scale campaign never materializes —
/// and it windows each trace's per-cycle `[CGM BG, commanded insulin]`
/// series into subsequences targeted with the BG `horizon` cycles
/// ahead of **each** timestep (sequence-to-sequence supervision). The
/// number of retained pairs is bounded by `cap` via reservoir sampling
/// whose acceptance decisions are a pure hash of `(seed, pair index)`:
/// construction is deterministic under a fixed seed and memory stays
/// `O(cap)` however large the campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceDataset {
    window: usize,
    horizon: usize,
    cap: usize,
    seed: u64,
    seen: usize,
    traces: usize,
    x: Vec<Vec<Vec<f64>>>,
    y: Vec<Vec<f64>>,
}

impl TraceDataset {
    /// Per-step features extracted from a trace record: the CGM
    /// reading and the rate the controller commanded — exactly what an
    /// online monitor observes each control cycle.
    pub const DIM: usize = 2;

    /// Creates an unbounded adapter (`cap = 0` keeps every pair).
    ///
    /// # Panics
    ///
    /// Panics when `window` or `horizon` is zero.
    pub fn new(window: usize, horizon: usize) -> TraceDataset {
        TraceDataset::with_cap(window, horizon, 0, 0)
    }

    /// Creates a bounded adapter retaining at most `cap` pairs,
    /// reservoir-sampled deterministically under `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `window` or `horizon` is zero.
    pub fn with_cap(window: usize, horizon: usize, cap: usize, seed: u64) -> TraceDataset {
        assert!(window >= 1, "window must be at least 1");
        assert!(horizon >= 1, "horizon must be at least 1");
        TraceDataset {
            window,
            horizon,
            cap,
            seed,
            seen: 0,
            traces: 0,
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Window length in control cycles.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Forecast horizon in control cycles.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Pairs currently retained.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when no pair has been retained.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Total pairs offered so far (before reservoir capping).
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Traces consumed so far.
    pub fn traces(&self) -> usize {
        self.traces
    }

    /// Consumes one trace: windows its series into subsequences with a
    /// BG-at-horizon target at **every** timestep and offers each to
    /// the reservoir. Usable directly as a campaign sink:
    ///
    /// ```ignore
    /// run_campaign_with(&spec, None, |_, trace| dataset.push_trace(&trace));
    /// ```
    pub fn push_trace(&mut self, trace: &SimTrace) {
        self.push_windows(
            trace.len(),
            |t| trace.records[t].bg.value(),
            |t| trace.records[t].commanded.value(),
        );
    }

    /// Consumes one trace's series as two parallel columns — the
    /// CGM BG and commanded-rate values per control cycle. This is the
    /// columnar-store path: a store reader copies its `bg`/`commanded`
    /// columns into reusable buffers and streams windows off them
    /// without materializing `SimTrace`s. Window, target, and
    /// reservoir decisions are shared with [`push_trace`], so the two
    /// paths are bit-identical on equal series.
    ///
    /// # Panics
    ///
    /// Panics when the columns have different lengths.
    ///
    /// [`push_trace`]: TraceDataset::push_trace
    pub fn push_series(&mut self, bg: &[f64], commanded: &[f64]) {
        assert_eq!(bg.len(), commanded.len(), "bg/commanded length mismatch");
        self.push_windows(bg.len(), |t| bg[t], |t| commanded[t]);
    }

    /// The shared windowing + reservoir core behind [`push_trace`] and
    /// [`push_series`]: per-step values come through accessors so both
    /// row-oriented and columnar callers drive identical sampling.
    ///
    /// [`push_trace`]: TraceDataset::push_trace
    /// [`push_series`]: TraceDataset::push_series
    fn push_windows(
        &mut self,
        n: usize,
        bg_at: impl Fn(usize) -> f64,
        commanded_at: impl Fn(usize) -> f64,
    ) {
        self.traces += 1;
        if n < self.window + self.horizon {
            return;
        }
        for start in 0..=(n - self.window - self.horizon) {
            let i = self.seen;
            self.seen += 1;
            let slot = if self.cap == 0 || self.x.len() < self.cap {
                self.x.len() // append
            } else {
                let j = (splitmix64(self.seed ^ (i as u64)) % (i as u64 + 1)) as usize;
                if j >= self.cap {
                    continue; // rejected by the reservoir
                }
                j // replace
            };
            let pair_x: Vec<Vec<f64>> = (start..start + self.window)
                .map(|t| vec![bg_at(t), commanded_at(t)])
                .collect();
            let pair_y: Vec<f64> = (start + self.horizon..start + self.window + self.horizon)
                .map(&bg_at)
                .collect();
            if slot == self.x.len() {
                self.x.push(pair_x);
                self.y.push(pair_y);
            } else {
                self.x[slot] = pair_x;
                self.y[slot] = pair_y;
            }
        }
    }

    /// Finalizes into a [`ForecastSet`].
    pub fn into_set(self) -> ForecastSet {
        ForecastSet::new(self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect(),
            (0..10).map(|i| i % 2).collect(),
        )
    }

    #[test]
    fn shapes_and_classes() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]);
    }

    #[test]
    fn split_partitions_everything() {
        let d = toy();
        let (train, val) = d.split(0.3, 42);
        assert_eq!(train.len() + val.len(), d.len());
        assert_eq!(val.len(), 3);
    }

    #[test]
    fn scaler_zero_mean_unit_var() {
        let d = toy();
        let scaler = StandardScaler::fit(&d);
        let t = scaler.transform_dataset(&d);
        for j in 0..t.dim() {
            let mean: f64 = t.x.iter().map(|r| r[j]).sum::<f64>() / t.len() as f64;
            let var: f64 = t.x.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / t.len() as f64;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn scaler_handles_constant_features() {
        let d = Dataset::new(vec![vec![5.0], vec![5.0]], vec![0, 1]);
        let scaler = StandardScaler::fit(&d);
        let t = scaler.transform(&[5.0]);
        assert!(t[0].abs() < 1e-6);
    }

    #[test]
    fn kfold_covers_all_indices_once() {
        let folds = kfold_indices(103, 4, 7);
        assert_eq!(folds.len(), 4);
        let mut seen = vec![0usize; 103];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 103);
            for &i in test {
                seen[i] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each index tested exactly once"
        );
    }

    #[test]
    fn kfold_is_deterministic() {
        assert_eq!(kfold_indices(50, 4, 9), kfold_indices(50, 4, 9));
    }

    use aps_types::{MgDl, SimTrace, Step, StepRecord, TraceMeta, UnitsPerHour};

    fn ramp_trace(n: u32) -> SimTrace {
        let mut t = SimTrace::new(TraceMeta::default());
        for i in 0..n {
            let mut r = StepRecord::blank(Step(i));
            r.bg = MgDl(100.0 + f64::from(i));
            r.bg_true = r.bg;
            r.commanded = UnitsPerHour(1.0 + 0.1 * f64::from(i));
            r.delivered = r.commanded;
            t.push(r);
        }
        t
    }

    #[test]
    fn trace_dataset_windows_and_targets() {
        let mut ds = TraceDataset::new(4, 3);
        ds.push_trace(&ramp_trace(10));
        // Starts s = 0..=3 (the last target needs s+4-1+3 <= 9).
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.seen(), 4);
        let set = ds.into_set();
        assert_eq!(set.window(), 4);
        assert_eq!(set.dim(), TraceDataset::DIM);
        // First window covers steps 0..=3; targets are BG at 3..=6.
        assert_eq!(set.x[0][0], vec![100.0, 1.0]);
        assert_eq!(set.x[0][3][0], 103.0);
        assert_eq!(set.y[0], vec![103.0, 104.0, 105.0, 106.0]);
        // Last window covers 3..=6, targets 6..=9.
        assert_eq!(set.y[3], vec![106.0, 107.0, 108.0, 109.0]);
    }

    #[test]
    fn trace_dataset_short_traces_are_skipped() {
        let mut ds = TraceDataset::new(6, 6);
        ds.push_trace(&ramp_trace(11));
        assert!(ds.is_empty());
        assert_eq!(ds.traces(), 1);
    }

    #[test]
    fn trace_dataset_reservoir_is_bounded_and_deterministic() {
        let build = |cap, seed| {
            let mut ds = TraceDataset::with_cap(4, 2, cap, seed);
            for n in [40u32, 60, 80] {
                ds.push_trace(&ramp_trace(n));
            }
            ds
        };
        let a = build(50, 7);
        assert_eq!(a.len(), 50);
        assert!(a.seen() > 100);
        assert_eq!(a, build(50, 7), "same seed must reproduce exactly");
        assert_ne!(
            a.y,
            build(50, 8).y,
            "different seeds should sample differently"
        );
        // Uncapped keeps everything.
        assert_eq!(build(0, 7).len(), a.seen());
    }

    #[test]
    fn push_series_matches_push_trace_exactly() {
        let traces: Vec<SimTrace> = [40u32, 13, 60, 5, 80]
            .iter()
            .map(|&n| ramp_trace(n))
            .collect();
        let mut rows = TraceDataset::with_cap(4, 2, 50, 7);
        let mut cols = TraceDataset::with_cap(4, 2, 50, 7);
        for t in &traces {
            rows.push_trace(t);
            let bg: Vec<f64> = t.records.iter().map(|r| r.bg.value()).collect();
            let cmd: Vec<f64> = t.records.iter().map(|r| r.commanded.value()).collect();
            cols.push_series(&bg, &cmd);
        }
        assert_eq!(rows, cols, "columnar path must drive identical sampling");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn push_series_rejects_ragged_columns() {
        let mut ds = TraceDataset::new(2, 1);
        ds.push_series(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn forecast_set_standardize_and_split() {
        let mut ds = TraceDataset::new(3, 2);
        ds.push_trace(&ramp_trace(30));
        let mut set = ds.into_set();
        let scaler = StandardScaler::fit_sequences(&set.x);
        set.standardize(&scaler);
        let mean0: f64 = set.x.iter().flatten().map(|r| r[0]).sum::<f64>()
            / set.x.iter().map(|s| s.len()).sum::<usize>() as f64;
        assert!(mean0.abs() < 1e-9, "feature 0 mean {mean0}");
        let (train, val) = set.split(0.25, 3);
        assert_eq!(train.len() + val.len(), set.len());
        assert!(!val.is_empty());
    }

    #[test]
    fn transform_into_matches_transform() {
        let d = toy();
        let scaler = StandardScaler::fit(&d);
        let mut out = vec![0.0; 2];
        scaler.transform_into(&[3.0, 8.0], &mut out);
        assert_eq!(out, scaler.transform(&[3.0, 8.0]));
        let mut in_place = vec![3.0, 8.0];
        scaler.transform_in_place(&mut in_place);
        assert_eq!(in_place, out);
    }
}
