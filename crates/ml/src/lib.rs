//! From-scratch machine-learning baselines.
//!
//! The paper compares its context-aware monitor to three ML-based
//! monitors (trained with scikit-learn / TensorFlow): a Decision Tree,
//! a 2-layer MLP (256/128, ReLU, softmax), and a stacked LSTM (128/64,
//! 30-minute input window). This crate implements those architectures
//! natively:
//!
//! * [`matrix::Matrix`] — minimal dense linear algebra;
//! * [`tree::DecisionTree`] — CART with Gini impurity;
//! * [`mlp::Mlp`] — fully-connected ReLU network with softmax output,
//!   Adam, inverted dropout, and early stopping;
//! * [`lstm::Lstm`] — stacked LSTM with full BPTT and gradient
//!   clipping (allocation-free scratch training; see
//!   [`lstm::LstmTrainer`]);
//! * [`forecast`] — glucose *forecasters* (sequence regression):
//!   [`forecast::LstmForecaster`] with an O(1) streaming inference
//!   state and the [`forecast::MlpForecaster`] baseline, bundled with
//!   their scaler as a serializable [`forecast::ForecastModel`];
//! * [`data`] — standardization, splits, k-fold indices, and the
//!   streaming [`data::TraceDataset`] adapter from simulation traces
//!   to forecast training pairs.
//!
//! All classifiers implement [`Classifier`]. Training is deterministic
//! per seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adam;
pub mod data;
pub mod forecast;
pub mod lstm;
pub mod matrix;
pub mod mlp;
mod train_util;
pub mod tree;

/// A trained multi-class classifier over fixed-length feature vectors.
pub trait Classifier: Send {
    /// Class-probability vector for one sample (sums to ≈1).
    fn predict_proba(&self, x: &[f64]) -> Vec<f64>;

    /// Most probable class index.
    fn predict(&self, x: &[f64]) -> usize {
        let p = self.predict_proba(x);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Number of classes.
    fn n_classes(&self) -> usize;
}

/// A classifier over *sequences* of feature vectors (the LSTM monitor's
/// sliding window).
pub trait SequenceClassifier: Send {
    /// Class probabilities for one sequence of shape `[T][D]`.
    fn predict_proba_seq(&self, xs: &[Vec<f64>]) -> Vec<f64>;

    /// Most probable class for one sequence.
    fn predict_seq(&self, xs: &[Vec<f64>]) -> usize {
        let p = self.predict_proba_seq(xs);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Number of classes.
    fn n_classes(&self) -> usize;
}
