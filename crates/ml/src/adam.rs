//! The Adam optimizer (Kingma & Ba), used for MLP and LSTM training as
//! in the paper (learning rate 0.001).

use serde::{Deserialize, Serialize};

/// Adam state for one flat parameter tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates an optimizer for a tensor of `n` parameters with the
    /// paper's defaults (lr = 1e-3, β₁ = 0.9, β₂ = 0.999).
    pub fn new(n: usize, lr: f64) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Applies one update of `grad` to `params` in place.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with the state size.
    pub fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "param length mismatch");
        assert_eq!(grad.len(), self.m.len(), "grad length mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grad[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    /// Number of updates applied so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let mut x = vec![5.0];
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * x[0]];
            opt.step(&mut x, &g);
        }
        assert!(x[0].abs() < 0.05, "x = {}", x[0]);
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn first_step_is_lr_sized() {
        // With bias correction the first step magnitude is ~lr.
        let mut x = vec![1.0];
        let mut opt = Adam::new(1, 0.001);
        opt.step(&mut x, &[3.0]);
        assert!((1.0 - x[0] - 0.001).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_sizes_panic() {
        let mut opt = Adam::new(2, 0.001);
        let mut x = vec![0.0];
        opt.step(&mut x, &[1.0]);
    }
}
