//! Multi-layer perceptron with Adam, dropout, and early stopping.
//!
//! Mirrors the paper's MLP monitor: two fully-connected ReLU layers of
//! 256 and 128 units, a softmax output, Adam at learning rate 0.001
//! with sparse categorical cross-entropy, dropout regularization, and
//! early stopping on a held-out validation split.

use crate::adam::Adam;
use crate::data::Dataset;
use crate::matrix::Matrix;
use crate::Classifier;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// MLP hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Hidden layer widths (paper: `[256, 128]`).
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Dropout probability on hidden activations (0 disables).
    pub dropout: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Maximum training epochs.
    pub max_epochs: usize,
    /// Early-stopping patience (epochs without validation improvement).
    pub patience: usize,
    /// Fraction of the training set held out for validation.
    pub val_fraction: f64,
    /// RNG seed (initialization, shuffling, dropout).
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> MlpConfig {
        MlpConfig {
            hidden: vec![256, 128],
            learning_rate: 1e-3,
            dropout: 0.2,
            batch_size: 64,
            max_epochs: 60,
            patience: 5,
            val_fraction: 0.15,
            seed: 42,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Layer {
    w: Matrix, // in x out
    b: Vec<f64>,
}

/// A trained MLP classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
    n_classes: usize,
    epochs_trained: usize,
}

fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols();
    for r in 0..m.rows() {
        let row = &mut m.data_mut()[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

impl Mlp {
    /// Trains an MLP on `data`.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset, config: &MlpConfig) -> Mlp {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let n_classes = data.n_classes().max(2);
        let dim = data.dim();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

        // Architecture: dim -> hidden... -> n_classes.
        let mut sizes = vec![dim];
        sizes.extend(&config.hidden);
        sizes.push(n_classes);
        let mut layers: Vec<Layer> = sizes
            .windows(2)
            .map(|w| Layer {
                w: Matrix::he_init(w[0], w[1], &mut rng),
                b: vec![0.0; w[1]],
            })
            .collect();

        let (train, val) = data.split(config.val_fraction, config.seed);
        let train = if train.is_empty() {
            data.clone()
        } else {
            train
        };

        let mut adam_w: Vec<Adam> = layers
            .iter()
            .map(|l| Adam::new(l.w.data().len(), config.learning_rate))
            .collect();
        let mut adam_b: Vec<Adam> = layers
            .iter()
            .map(|l| Adam::new(l.b.len(), config.learning_rate))
            .collect();

        let mut best_val = f64::INFINITY;
        let mut best_layers = layers.clone();
        let mut since_best = 0usize;
        let mut epochs_trained = 0usize;

        let mut order: Vec<usize> = (0..train.len()).collect();
        for _epoch in 0..config.max_epochs {
            epochs_trained += 1;
            // Shuffle minibatches.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(config.batch_size.max(1)) {
                train_batch(
                    &mut layers,
                    &train,
                    chunk,
                    config,
                    &mut rng,
                    &mut adam_w,
                    &mut adam_b,
                );
            }

            // Early stopping on validation cross-entropy.
            let val_set = if val.is_empty() { &train } else { &val };
            let vloss = cross_entropy(&layers, val_set);
            if vloss < best_val - 1e-6 {
                best_val = vloss;
                best_layers = layers.clone();
                since_best = 0;
            } else {
                since_best += 1;
                if since_best > config.patience {
                    break;
                }
            }
        }

        Mlp {
            layers: best_layers,
            n_classes,
            epochs_trained,
        }
    }

    /// Epochs actually run before early stopping.
    pub fn epochs_trained(&self) -> usize {
        self.epochs_trained
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        forward_sample(&self.layers, x)
    }
}

/// Single-sample forward pass via the fused GEMV path: two flat
/// buffers ping-pong through the layers, so per-cycle monitor
/// inference performs two small allocations total instead of three
/// `Matrix` temporaries per layer. Probabilities are bit-identical to
/// the matrix path (same accumulation order).
fn forward_sample(layers: &[Layer], x: &[f64]) -> Vec<f64> {
    let widest = layers.iter().map(|l| l.b.len()).max().unwrap_or(0);
    let mut a = x.to_vec();
    let mut z = vec![0.0; widest];
    let last = layers.len() - 1;
    for (i, layer) in layers.iter().enumerate() {
        let out = &mut z[..layer.b.len()];
        layer.w.vecmat_bias_into(&a, &layer.b, out);
        if i < last {
            for v in out.iter_mut() {
                *v = v.max(0.0);
            }
        }
        a.resize(out.len(), 0.0);
        a.copy_from_slice(out);
    }
    softmax_row(&mut a);
    a
}

/// In-place softmax over one row.
fn softmax_row(row: &mut [f64]) {
    let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

/// Mean cross-entropy of the (deterministic, no-dropout) network.
fn cross_entropy(layers: &[Layer], data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (x, &y) in data.x.iter().zip(&data.y) {
        let p = forward_sample(layers, x);
        total -= p[y.min(p.len() - 1)].max(1e-12).ln();
    }
    total / data.len() as f64
}

#[allow(clippy::too_many_arguments)]
fn train_batch(
    layers: &mut [Layer],
    data: &Dataset,
    idx: &[usize],
    config: &MlpConfig,
    rng: &mut ChaCha8Rng,
    adam_w: &mut [Adam],
    adam_b: &mut [Adam],
) {
    let b = idx.len();
    let dim = data.dim();
    let n_layers = layers.len();

    // Forward with caches.
    let mut x = Matrix::zeros(b, dim);
    for (r, &i) in idx.iter().enumerate() {
        for (c, v) in data.x[i].iter().enumerate() {
            x[(r, c)] = *v;
        }
    }
    let mut activations: Vec<Matrix> = vec![x];
    let mut masks: Vec<Option<Vec<f64>>> = Vec::with_capacity(n_layers);
    for (li, layer) in layers.iter().enumerate() {
        let mut z = activations[li].matmul(&layer.w);
        z.add_row_broadcast(&layer.b);
        if li < n_layers - 1 {
            let mut a = z.map(|v| v.max(0.0));
            // Inverted dropout.
            if config.dropout > 0.0 {
                let keep = 1.0 - config.dropout;
                let mask: Vec<f64> = (0..a.data().len())
                    .map(|_| {
                        if rng.gen_range(0.0..1.0) < keep {
                            1.0 / keep
                        } else {
                            0.0
                        }
                    })
                    .collect();
                for (v, m) in a.data_mut().iter_mut().zip(&mask) {
                    *v *= m;
                }
                masks.push(Some(mask));
            } else {
                masks.push(None);
            }
            activations.push(a);
        } else {
            let mut p = z;
            softmax_rows(&mut p);
            masks.push(None);
            activations.push(p);
        }
    }

    // Backward: dZ for the softmax+CE head is (P - onehot)/B.
    let mut dz = activations[n_layers].clone();
    for (r, &i) in idx.iter().enumerate() {
        let y = data.y[i];
        dz[(r, y)] -= 1.0;
    }
    let scale = 1.0 / b as f64;
    for v in dz.data_mut() {
        *v *= scale;
    }

    for li in (0..n_layers).rev() {
        let a_prev = &activations[li];
        // aᵀ·dz and dz·Wᵀ without materializing either transpose.
        let dw = a_prev.matmul_at_b(&dz);
        let mut db = vec![0.0; layers[li].b.len()];
        for r in 0..dz.rows() {
            for (c, dbv) in db.iter_mut().enumerate() {
                *dbv += dz[(r, c)];
            }
        }
        let da_prev = if li > 0 {
            Some(dz.matmul_transposed(&layers[li].w))
        } else {
            None
        };

        adam_w[li].step(layers[li].w.data_mut(), dw.data());
        adam_b[li].step(&mut layers[li].b, &db);

        if let Some(mut da) = da_prev {
            // ReLU' gate and the dropout mask of layer li-1's output.
            let a = &activations[li];
            for (v, &act) in da.data_mut().iter_mut().zip(a.data()) {
                if act <= 0.0 {
                    *v = 0.0;
                }
            }
            if let Some(mask) = &masks[li - 1] {
                for (v, m) in da.data_mut().iter_mut().zip(mask) {
                    *v *= m;
                }
            }
            dz = da;
        }
    }
}

impl Classifier for Mlp {
    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        self.forward(x)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        // Two well-separated Gaussians.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..150 {
            let cls = rng.gen_range(0..2usize);
            let cx = if cls == 0 { -2.0 } else { 2.0 };
            x.push(vec![
                cx + rng.gen_range(-0.8..0.8),
                rng.gen_range(-1.0..1.0),
            ]);
            y.push(cls);
        }
        Dataset::new(x, y)
    }

    fn small_config() -> MlpConfig {
        MlpConfig {
            hidden: vec![16, 8],
            max_epochs: 40,
            batch_size: 16,
            dropout: 0.1,
            ..MlpConfig::default()
        }
    }

    #[test]
    fn separable_blobs_reach_high_accuracy() {
        let data = blobs();
        let mlp = Mlp::fit(&data, &small_config());
        let correct = data
            .x
            .iter()
            .zip(&data.y)
            .filter(|(x, &y)| mlp.predict(x) == y)
            .count();
        let acc = correct as f64 / data.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn probabilities_are_normalized() {
        let data = blobs();
        let mlp = Mlp::fit(&data, &small_config());
        let p = mlp.predict_proba(&[0.0, 0.0]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let data = blobs();
        let a = Mlp::fit(&data, &small_config());
        let b = Mlp::fit(&data, &small_config());
        assert_eq!(a, b);
    }

    #[test]
    fn early_stopping_caps_epochs() {
        let data = blobs();
        let cfg = MlpConfig {
            max_epochs: 100,
            patience: 2,
            ..small_config()
        };
        let mlp = Mlp::fit(&data, &cfg);
        assert!(mlp.epochs_trained() <= 100);
    }

    #[test]
    fn three_class_output_shape() {
        let data = Dataset::new(
            (0..60).map(|i| vec![i as f64 / 10.0]).collect(),
            (0..60).map(|i| i / 20).collect(),
        );
        let cfg = MlpConfig {
            hidden: vec![16],
            dropout: 0.0,
            ..small_config()
        };
        let mlp = Mlp::fit(&data, &cfg);
        assert_eq!(mlp.n_classes(), 3);
        assert_eq!(mlp.predict_proba(&[0.1]).len(), 3);
    }
}
