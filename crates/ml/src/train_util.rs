//! Shared training-loop plumbing: the Fisher–Yates shuffle, the
//! shuffled validation split, and the early-stopping tracker every
//! trainer in this crate uses.
//!
//! The draw sequence of [`shuffle`]/[`val_split`] is exactly the one
//! the pre-refactor implementations performed, so `Lstm::fit` remains
//! bit-identical to the retained allocating `Lstm::fit_reference`
//! (which keeps its own verbatim copy of these loops on purpose — it
//! is the frozen executable specification, not live code).

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// In-place Fisher–Yates shuffle.
pub(crate) fn shuffle(order: &mut [usize], rng: &mut ChaCha8Rng) {
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
}

/// Shuffled validation split over `0..n`: returns `(train, val)` index
/// sets, falling back to training on everything when the split would
/// leave the training side empty.
pub(crate) fn val_split(
    n: usize,
    val_fraction: f64,
    rng: &mut ChaCha8Rng,
) -> (Vec<usize>, Vec<usize>) {
    let mut idx: Vec<usize> = (0..n).collect();
    shuffle(&mut idx, rng);
    let n_val = ((n as f64) * val_fraction).round() as usize;
    let (val_idx, train_idx) = idx.split_at(n_val.min(n));
    let train = if train_idx.is_empty() {
        idx.clone()
    } else {
        train_idx.to_vec()
    };
    (train, val_idx.to_vec())
}

/// Shared scaling policy of global-norm gradient clipping: the factor
/// to multiply every gradient tensor by (`1.0` when the norm is within
/// `clip_norm`). Callers keep the shape-specific norm accumulation and
/// scaling loops (so their zero-allocation property holds) but share
/// the threshold semantics.
pub(crate) fn clip_factor(norm_sq: f64, clip_norm: f64) -> f64 {
    let norm = norm_sq.sqrt();
    if norm > clip_norm {
        clip_norm / norm
    } else {
        1.0
    }
}

/// The index/schedule inputs of one early-stopped training run.
pub(crate) struct EpochPlan<'a> {
    pub(crate) max_epochs: usize,
    pub(crate) batch_size: usize,
    pub(crate) patience: usize,
    /// Minimum validation improvement that counts (see
    /// [`EarlyStopper::new`]).
    pub(crate) tol: f64,
    pub(crate) train_idx: &'a [usize],
    pub(crate) val_idx: &'a [usize],
}

/// The shuffled-minibatch / validation / early-stopping epoch loop
/// every trainer in this crate runs, generic over the training context
/// `C` (closures receive `ctx` explicitly so one `&mut C` serves all
/// three hooks). Draw sequence per epoch: one [`shuffle`] of the
/// training order — identical to the frozen `Lstm::fit_reference`
/// loop, preserving scratch-vs-reference bit-identity.
///
/// Returns the best snapshot: `snapshot(ctx, epoch)` is invoked
/// whenever the validation loss improves, with `epoch` the 1-based
/// epoch count that produced it.
pub(crate) fn train_epochs<C, M>(
    ctx: &mut C,
    plan: &EpochPlan<'_>,
    rng: &mut ChaCha8Rng,
    initial: M,
    mut train_batch: impl FnMut(&mut C, &[usize]),
    mut val_loss: impl FnMut(&mut C, &[usize]) -> f64,
    mut snapshot: impl FnMut(&mut C, usize) -> M,
) -> M {
    let mut best = initial;
    let mut stopper = EarlyStopper::new(plan.patience, plan.tol);
    let mut order = plan.train_idx.to_vec();
    let mut epoch = 0usize;
    for _ in 0..plan.max_epochs {
        epoch += 1;
        shuffle(&mut order, rng);
        for chunk in order.chunks(plan.batch_size.max(1)) {
            train_batch(ctx, chunk);
        }
        let vset = if plan.val_idx.is_empty() {
            plan.train_idx
        } else {
            plan.val_idx
        };
        let vloss = val_loss(ctx, vset);
        if stopper.improved(vloss) {
            best = snapshot(ctx, epoch);
        } else if stopper.should_stop() {
            break;
        }
    }
    best
}

/// Early-stopping state: best validation loss seen and epochs since it
/// improved.
pub(crate) struct EarlyStopper {
    best: f64,
    since: usize,
    patience: usize,
    tol: f64,
}

impl EarlyStopper {
    /// `tol` is the minimum improvement that counts: `1e-6` for the
    /// classifier (frozen by `Lstm::fit_reference` bit-identity),
    /// `1e-9` for the forecasters (z-scored MSE lives on a finer
    /// scale).
    pub(crate) fn new(patience: usize, tol: f64) -> EarlyStopper {
        EarlyStopper {
            best: f64::INFINITY,
            since: 0,
            patience,
            tol,
        }
    }

    /// Records an epoch's validation loss; `true` when it improved
    /// (the caller snapshots the model then).
    pub(crate) fn improved(&mut self, vloss: f64) -> bool {
        if vloss < self.best - self.tol {
            self.best = vloss;
            self.since = 0;
            true
        } else {
            self.since += 1;
            false
        }
    }

    /// `true` once `patience` consecutive epochs failed to improve.
    pub(crate) fn should_stop(&self) -> bool {
        self.since > self.patience
    }
}
