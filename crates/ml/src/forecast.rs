//! Glucose forecasters: sequence-regression models predicting BG at a
//! fixed horizon from a window of per-cycle observations.
//!
//! Two architectures share the [`ForecastConfig`] hyperparameters:
//!
//! * [`LstmForecaster`] — stacked LSTM cells (the same scratch-buffer
//!   kernels as the classifier in [`crate::lstm`]) with a linear
//!   scalar head, trained with MSE + Adam + gradient clipping. Its
//!   [`LstmForecaster::step`] kernel advances a carried
//!   [`LstmState`] by one sample in O(1) with **zero heap
//!   allocations** — the online form the `ForecastMonitor` runs every
//!   control cycle.
//! * [`MlpForecaster`] — a ReLU MLP over the flattened window, the
//!   non-recurrent baseline.
//!
//! Training is deterministic per seed, and a trained [`ForecastModel`]
//! bundle (scaler + both networks + evaluation metadata) serializes
//! via serde so `repro train` can persist weights that `repro zoo`
//! (and any `SessionSpec`) reload.

use crate::adam::Adam;
use crate::data::{ForecastSet, StandardScaler};
use crate::lstm::{BackScratch, Cell, CellCache};
use crate::matrix::Matrix;
use rand::RngCore;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Forecaster hyperparameters.
///
/// The container-level `#[serde(default)]` makes saved model files
/// forward-compatible: a field added later deserializes to the value
/// [`ForecastConfig::default`] assigns it, not to the type's zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ForecastConfig {
    /// Hidden sizes of the stacked LSTM layers.
    pub hidden: Vec<usize>,
    /// Hidden widths of the MLP baseline.
    pub mlp_hidden: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Maximum training epochs.
    pub max_epochs: usize,
    /// Early-stopping patience (epochs without validation improvement).
    pub patience: usize,
    /// Validation fraction.
    pub val_fraction: f64,
    /// Global gradient-norm clip.
    pub clip_norm: f64,
    /// RNG seed (initialization, splits, shuffling).
    // lint: hex-exempt(config seeds are small human-chosen values far
    // below the f64 shim's 2^53 exactness bound; the trained weights —
    // not the seed — are what the bundle round-trips)
    pub seed: u64,
}

impl Default for ForecastConfig {
    fn default() -> ForecastConfig {
        ForecastConfig {
            hidden: vec![32],
            mlp_hidden: vec![32],
            learning_rate: 1e-3,
            batch_size: 32,
            max_epochs: 30,
            patience: 4,
            val_fraction: 0.15,
            clip_norm: 5.0,
            seed: 42,
        }
    }
}

/// A trained stacked-LSTM glucose forecaster (linear scalar head).
///
/// The network regresses the *standardized* target; `y_mean`/`y_sd`
/// (fit on the training targets) map predictions back to mg/dL, so the
/// optimization is well-conditioned however large the BG scale.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct LstmForecaster {
    cells: Vec<Cell>,
    /// Linear head over the top layer's last hidden state.
    head_w: Vec<f64>,
    head_b: f64,
    y_mean: f64,
    y_sd: f64,
    epochs_trained: usize,
}

/// Carried recurrent state for O(1)-per-sample streaming inference:
/// per-layer hidden/cell vectors plus fixed work buffers. One
/// [`LstmForecaster::step`] per control cycle performs no heap
/// allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    h: Vec<Vec<f64>>,
    c: Vec<Vec<f64>>,
    z: Vec<f64>,
    gates: Vec<f64>,
    steps: usize,
}

impl LstmState {
    /// Samples consumed since construction/reset.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Zeroes the recurrent state for a fresh stream.
    pub fn reset(&mut self) {
        for h in &mut self.h {
            h.fill(0.0);
        }
        for c in &mut self.c {
            c.fill(0.0);
        }
        self.steps = 0;
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl LstmForecaster {
    fn init(dim: usize, config: &ForecastConfig, rng: &mut ChaCha8Rng) -> LstmForecaster {
        let mut cells = Vec::new();
        let mut in_dim = dim;
        for &h in &config.hidden {
            cells.push(Cell::new(in_dim, h, rng));
            in_dim = h;
        }
        let head = Matrix::xavier_init(in_dim, 1, rng);
        LstmForecaster {
            cells,
            head_w: head.data().to_vec(),
            head_b: 0.0,
            y_mean: 0.0,
            y_sd: 1.0,
            epochs_trained: 0,
        }
    }

    /// Trains the forecaster on a (standardized) forecast set via the
    /// allocation-free scratch path; deterministic per
    /// `config.seed`.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or empty windows.
    pub fn fit(data: &ForecastSet, config: &ForecastConfig) -> LstmForecaster {
        let mut trainer = ForecastTrainer::new(data, config);
        let mut rng = trainer.split_rng();
        let (train_idx, val_idx) =
            crate::train_util::val_split(data.len(), config.val_fraction, &mut rng);
        let plan = crate::train_util::EpochPlan {
            max_epochs: config.max_epochs,
            batch_size: config.batch_size,
            patience: config.patience,
            tol: 1e-9,
            train_idx: &train_idx,
            val_idx: &val_idx,
        };
        let initial = trainer.model().clone();
        crate::train_util::train_epochs(
            &mut trainer,
            &plan,
            &mut rng,
            initial,
            |t, chunk| t.train_batch(data, chunk),
            |t, vset| t.mse(data, vset),
            |t, epoch| {
                let mut snap = t.model().clone();
                snap.epochs_trained = epoch;
                snap
            },
        )
    }

    /// Epochs actually run before early stopping.
    pub fn epochs_trained(&self) -> usize {
        self.epochs_trained
    }

    /// Per-step input dimension.
    pub fn input_dim(&self) -> usize {
        self.cells.first().map(|c| c.input_dim).unwrap_or(0)
    }

    /// Fresh zeroed recurrent state sized for this network.
    pub fn state(&self) -> LstmState {
        let z_max = self
            .cells
            .iter()
            .map(|c| c.input_dim + c.hidden)
            .max()
            .unwrap_or(0);
        let g_max = self.cells.iter().map(|c| 4 * c.hidden).max().unwrap_or(0);
        LstmState {
            h: self.cells.iter().map(|c| vec![0.0; c.hidden]).collect(),
            c: self.cells.iter().map(|c| vec![0.0; c.hidden]).collect(),
            z: vec![0.0; z_max],
            gates: vec![0.0; g_max],
            steps: 0,
        }
    }

    /// Advances the carried state by one (standardized) sample and
    /// returns the horizon-BG prediction. O(1) per call, zero heap
    /// allocations, and — because an LSTM is recurrent — feeding a
    /// window sample-by-sample from a fresh state is bit-identical to
    /// [`predict_seq`](LstmForecaster::predict_seq) over that window.
    ///
    /// # Panics
    ///
    /// Panics when `x` does not match the input dimension.
    pub fn step(&self, state: &mut LstmState, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        for (li, cell) in self.cells.iter().enumerate() {
            let d = cell.input_dim;
            let h = cell.hidden;
            if li == 0 {
                state.z[..d].copy_from_slice(x);
            } else {
                // `h[li-1]` was updated by the previous loop iteration.
                let (below, _) = state.h.split_at(li);
                state.z[..d].copy_from_slice(&below[li - 1]);
            }
            state.z[d..d + h].copy_from_slice(&state.h[li]);
            let gates = &mut state.gates[..4 * h];
            gates.copy_from_slice(&cell.b);
            cell.w.vecmat_acc_into(&state.z[..d + h], gates);
            for v in &mut gates[0..h] {
                *v = sigmoid(*v);
            }
            for v in &mut gates[h..2 * h] {
                *v = sigmoid(*v);
            }
            for v in &mut gates[2 * h..3 * h] {
                *v = sigmoid(*v);
            }
            for v in &mut gates[3 * h..4 * h] {
                *v = v.tanh();
            }
            let c_row = &mut state.c[li];
            for j in 0..h {
                c_row[j] = gates[h + j] * c_row[j] + gates[j] * gates[3 * h + j];
            }
            let h_row = &mut state.h[li];
            for j in 0..h {
                h_row[j] = gates[2 * h + j] * c_row[j].tanh();
            }
        }
        state.steps += 1;
        let top = &state.h[self.cells.len() - 1];
        let mut y = self.head_b;
        for (w, hv) in self.head_w.iter().zip(top) {
            y += w * hv;
        }
        self.y_mean + self.y_sd * y
    }

    /// Batch forward pass over a whole (standardized) window from a
    /// zeroed initial state; returns mg/dL.
    pub fn predict_seq(&self, xs: &[Vec<f64>]) -> f64 {
        let mut state = self.state();
        let mut y = self.y_mean + self.y_sd * self.head_b;
        for x in xs {
            y = self.step(&mut state, x);
        }
        y
    }

    /// Standard deviation of the training targets (the factor that
    /// converts the trainer's standardized MSE back to mg/dL²).
    pub fn target_sd(&self) -> f64 {
        self.y_sd
    }
}

/// Reusable LSTM-forecaster training state (scratch caches, gradient
/// accumulators, Adam moments): the regression twin of
/// [`crate::lstm::LstmTrainer`], with the same steady-state
/// zero-allocation property for
/// [`train_batch`](ForecastTrainer::train_batch).
pub struct ForecastTrainer {
    model: LstmForecaster,
    config: ForecastConfig,
    adam_w: Vec<Adam>,
    adam_b: Vec<Adam>,
    adam_hw: Adam,
    adam_hb: Adam,
    caches: Vec<CellCache>,
    back: BackScratch,
    stream_a: Vec<f64>,
    stream_b: Vec<f64>,
    dw: Vec<Matrix>,
    db: Vec<Vec<f64>>,
    dhw: Vec<f64>,
    dhb: f64,
    /// Widest per-layer stream row (fixed by the model shape; hoisted
    /// out of the per-sample loop).
    max_width: usize,
    rng_cursor: u64,
}

impl ForecastTrainer {
    /// Initializes a model for `data` and the buffers to train it.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or empty windows.
    pub fn new(data: &ForecastSet, config: &ForecastConfig) -> ForecastTrainer {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(
            data.window() > 0 && data.dim() > 0,
            "windows must be non-empty"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut model = LstmForecaster::init(data.dim(), config, &mut rng);
        // Target standardization: the network regresses z-scored BG.
        let n = data.y.iter().map(|ys| ys.len()).sum::<usize>() as f64;
        model.y_mean = data.y.iter().flatten().sum::<f64>() / n;
        model.y_sd = (data
            .y
            .iter()
            .flatten()
            .map(|y| (y - model.y_mean).powi(2))
            .sum::<f64>()
            / n)
            .sqrt()
            .max(1e-9);
        let adam_w = model
            .cells
            .iter()
            .map(|c| Adam::new(c.w.data().len(), config.learning_rate))
            .collect();
        let adam_b = model
            .cells
            .iter()
            .map(|c| Adam::new(c.b.len(), config.learning_rate))
            .collect();
        let adam_hw = Adam::new(model.head_w.len(), config.learning_rate);
        let adam_hb = Adam::new(1, config.learning_rate);
        ForecastTrainer {
            caches: model.cells.iter().map(|_| CellCache::default()).collect(),
            back: BackScratch::default(),
            stream_a: Vec::new(),
            stream_b: Vec::new(),
            dw: model
                .cells
                .iter()
                .map(|c| Matrix::zeros(c.w.rows(), c.w.cols()))
                .collect(),
            db: model.cells.iter().map(|c| vec![0.0; c.b.len()]).collect(),
            dhw: vec![0.0; model.head_w.len()],
            dhb: 0.0,
            max_width: model
                .cells
                .iter()
                .map(|c| c.hidden.max(c.input_dim))
                .max()
                .unwrap_or(0),
            model,
            config: config.clone(),
            adam_w,
            adam_b,
            adam_hw,
            adam_hb,
            rng_cursor: rng.next_u64(),
        }
    }

    /// A fresh RNG reseeded from a value the initialization stream
    /// drew last — not a stream resume, but fully determined by
    /// `config.seed` (used by [`LstmForecaster::fit`] for
    /// splits/shuffles).
    fn split_rng(&self) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.rng_cursor)
    }

    /// The model in its current training state.
    pub fn model(&self) -> &LstmForecaster {
        &self.model
    }

    /// Scratch forward pass over one window; fills the per-layer
    /// caches (per-step predictions are then head products over the
    /// top cache's hidden rows).
    fn forward(&mut self, xs: &[Vec<f64>]) {
        crate::lstm::forward_stack(&self.model.cells, xs, &mut self.caches);
    }

    /// One mini-batch MSE update, supervising **every** timestep's
    /// horizon target. Allocation-free once the buffers have been
    /// sized by a first call.
    pub fn train_batch(&mut self, data: &ForecastSet, idx: &[usize]) {
        let n_layers = self.model.cells.len();
        for g in &mut self.dw {
            g.data_mut().fill(0.0);
        }
        for g in &mut self.db {
            g.fill(0.0);
        }
        self.dhw.fill(0.0);
        self.dhb = 0.0;

        for &i in idx {
            let xs = &data.x[i];
            let t_len = xs.len();
            let scale = 1.0 / (idx.len().max(1) * t_len.max(1)) as f64;
            self.forward(xs);
            let top = n_layers - 1;
            let top_h = self.model.cells[top].hidden;
            self.stream_a.resize(t_len * self.max_width, 0.0);
            self.stream_b.resize(t_len * self.max_width, 0.0);
            // Per-step head pass + gradients; dhs row per timestep.
            for t in 0..t_len {
                let h_t = self.caches[top].h_row(t, top_h);
                let mut yhat = self.model.head_b;
                for (w, hv) in self.model.head_w.iter().zip(h_t) {
                    yhat += w * hv;
                }
                let target = (data.y[i][t] - self.model.y_mean) / self.model.y_sd;
                let dy = 2.0 * (yhat - target) * scale;
                for (g, &hv) in self.dhw.iter_mut().zip(h_t) {
                    *g += hv * dy;
                }
                self.dhb += dy;
                for (dv, &w) in self.stream_a[t * top_h..(t + 1) * top_h]
                    .iter_mut()
                    .zip(&self.model.head_w)
                {
                    *dv = dy * w;
                }
            }
            for li in (0..n_layers).rev() {
                let cell = &self.model.cells[li];
                cell.backward_scratch(
                    &self.caches[li],
                    &self.stream_a[..t_len * cell.hidden],
                    &mut self.stream_b[..t_len * cell.input_dim],
                    &mut self.dw[li],
                    &mut self.db[li],
                    &mut self.back,
                );
                if li > 0 {
                    std::mem::swap(&mut self.stream_a, &mut self.stream_b);
                }
            }
        }

        // Global-norm clipping.
        let mut norm_sq = 0.0;
        for g in &self.dw {
            norm_sq += g.data().iter().map(|v| v * v).sum::<f64>();
        }
        for g in &self.db {
            norm_sq += g.iter().map(|v| v * v).sum::<f64>();
        }
        norm_sq += self.dhw.iter().map(|v| v * v).sum::<f64>();
        norm_sq += self.dhb * self.dhb;
        let clip = crate::train_util::clip_factor(norm_sq, self.config.clip_norm);
        if clip < 1.0 {
            for g in &mut self.dw {
                for v in g.data_mut() {
                    *v *= clip;
                }
            }
            for g in &mut self.db {
                for v in g.iter_mut() {
                    *v *= clip;
                }
            }
            for v in &mut self.dhw {
                *v *= clip;
            }
            self.dhb *= clip;
        }

        for li in 0..n_layers {
            self.adam_w[li].step(self.model.cells[li].w.data_mut(), self.dw[li].data());
            self.adam_b[li].step(&mut self.model.cells[li].b, &self.db[li]);
        }
        self.adam_hw.step(&mut self.model.head_w, &self.dhw);
        let mut hb = [self.model.head_b];
        self.adam_hb.step(&mut hb, &[self.dhb]);
        self.model.head_b = hb[0];
    }

    /// Mean squared error over every timestep of the samples at `idx`,
    /// in standardized target units (multiply by `target_sd()²` for
    /// mg/dL²); scratch forward, allocation-free in steady state.
    pub fn mse(&mut self, data: &ForecastSet, idx: &[usize]) -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        let top = self.model.cells.len() - 1;
        let top_h = self.model.cells[top].hidden;
        let mut total = 0.0;
        let mut count = 0usize;
        for &i in idx {
            self.forward(&data.x[i]);
            for (t, &target) in data.y[i].iter().enumerate() {
                let h_t = self.caches[top].h_row(t, top_h);
                let mut yhat = self.model.head_b;
                for (w, hv) in self.model.head_w.iter().zip(h_t) {
                    yhat += w * hv;
                }
                let e = yhat - (target - self.model.y_mean) / self.model.y_sd;
                total += e * e;
                count += 1;
            }
        }
        total / count.max(1) as f64
    }
}

/// One layer of the MLP baseline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
struct RegLayer {
    w: Matrix, // in × out
    b: Vec<f64>,
}

/// A ReLU MLP regressor over the flattened forecast window
/// (standardized-target regression like [`LstmForecaster`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct MlpForecaster {
    layers: Vec<RegLayer>,
    window: usize,
    dim: usize,
    y_mean: f64,
    y_sd: f64,
    epochs_trained: usize,
}

impl MlpForecaster {
    /// Trains the MLP baseline on a (standardized) forecast set;
    /// deterministic per `config.seed`.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or empty windows.
    pub fn fit(data: &ForecastSet, config: &ForecastConfig) -> MlpForecaster {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let window = data.window();
        let dim = data.dim();
        let in_dim = window * dim;
        assert!(in_dim > 0, "windows must be non-empty");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        // The MLP predicts the horizon target of the window's *last*
        // step (the non-recurrent framing).
        let lasts: Vec<f64> = data.y.iter().map(|ys| *ys.last().expect("y")).collect();
        let n = lasts.len() as f64;
        let y_mean = lasts.iter().sum::<f64>() / n;
        let y_sd = (lasts.iter().map(|y| (y - y_mean).powi(2)).sum::<f64>() / n)
            .sqrt()
            .max(1e-9);
        let ys: Vec<f64> = lasts.iter().map(|y| (y - y_mean) / y_sd).collect();

        let mut sizes = vec![in_dim];
        sizes.extend(&config.mlp_hidden);
        sizes.push(1);
        let layers: Vec<RegLayer> = sizes
            .windows(2)
            .map(|w| RegLayer {
                w: Matrix::he_init(w[0], w[1], &mut rng),
                b: vec![0.0; w[1]],
            })
            .collect();

        let (train_idx, val_idx) =
            crate::train_util::val_split(data.len(), config.val_fraction, &mut rng);

        let adam_w: Vec<Adam> = layers
            .iter()
            .map(|l| Adam::new(l.w.data().len(), config.learning_rate))
            .collect();
        let adam_b: Vec<Adam> = layers
            .iter()
            .map(|l| Adam::new(l.b.len(), config.learning_rate))
            .collect();

        let flat = vec![0.0; in_dim];
        let flatten = |xs: &[Vec<f64>], out: &mut [f64]| {
            for (t, row) in xs.iter().enumerate() {
                out[t * dim..(t + 1) * dim].copy_from_slice(row);
            }
        };
        let mse_of = |layers: &[RegLayer], idx: &[usize], flat: &mut [f64]| -> f64 {
            if idx.is_empty() {
                return 0.0;
            }
            let mut total = 0.0;
            for &i in idx {
                flatten(&data.x[i], flat);
                let e = forward_reg(layers, flat) - ys[i];
                total += e * e;
            }
            total / idx.len() as f64
        };

        let plan = crate::train_util::EpochPlan {
            max_epochs: config.max_epochs,
            batch_size: config.batch_size,
            patience: config.patience,
            tol: 1e-9,
            train_idx: &train_idx,
            val_idx: &val_idx,
        };
        // The context bundles everything the epoch hooks mutate; the
        // snapshot carries the epoch that produced it, so the reported
        // `epochs_trained` matches the restored weights.
        let mut ctx = (layers, adam_w, adam_b, flat);
        let initial = (ctx.0.clone(), 0usize);
        let best = crate::train_util::train_epochs(
            &mut ctx,
            &plan,
            &mut rng,
            initial,
            |(layers, adam_w, adam_b, _), chunk| {
                train_reg_batch(layers, &data.x, &ys, chunk, &flatten, adam_w, adam_b)
            },
            |(layers, _, _, flat), vset| mse_of(layers, vset, flat),
            |(layers, _, _, _), epoch| (layers.clone(), epoch),
        );
        MlpForecaster {
            layers: best.0,
            epochs_trained: best.1,
            window,
            dim,
            y_mean,
            y_sd,
        }
    }

    /// Epochs actually run before early stopping.
    pub fn epochs_trained(&self) -> usize {
        self.epochs_trained
    }

    /// Predicts the horizon BG (mg/dL) for one (standardized) window.
    ///
    /// # Panics
    ///
    /// Panics when the window shape disagrees with training.
    pub fn predict_seq(&self, xs: &[Vec<f64>]) -> f64 {
        assert_eq!(xs.len(), self.window, "window length mismatch");
        let mut flat = vec![0.0; self.window * self.dim];
        for (t, row) in xs.iter().enumerate() {
            assert_eq!(row.len(), self.dim, "feature dimension mismatch");
            flat[t * self.dim..(t + 1) * self.dim].copy_from_slice(row);
        }
        self.y_mean + self.y_sd * forward_reg(&self.layers, &flat)
    }
}

/// Forward pass of the regression MLP (ReLU hidden, linear output).
fn forward_reg(layers: &[RegLayer], x: &[f64]) -> f64 {
    let widest = layers.iter().map(|l| l.b.len()).max().unwrap_or(0);
    let mut a = x.to_vec();
    let mut z = vec![0.0; widest];
    let last = layers.len() - 1;
    for (i, layer) in layers.iter().enumerate() {
        let out = &mut z[..layer.b.len()];
        layer.w.vecmat_bias_into(&a, &layer.b, out);
        if i < last {
            for v in out.iter_mut() {
                *v = v.max(0.0);
            }
        }
        a.resize(out.len(), 0.0);
        a.copy_from_slice(out);
    }
    a[0]
}

/// One MSE mini-batch update of the regression MLP (standardized
/// targets in `ys`).
fn train_reg_batch(
    layers: &mut [RegLayer],
    xs_all: &[Vec<Vec<f64>>],
    ys: &[f64],
    idx: &[usize],
    flatten: &impl Fn(&[Vec<f64>], &mut [f64]),
    adam_w: &mut [Adam],
    adam_b: &mut [Adam],
) {
    let n_layers = layers.len();
    let in_dim = layers[0].w.rows();
    let mut dw: Vec<Matrix> = layers
        .iter()
        .map(|l| Matrix::zeros(l.w.rows(), l.w.cols()))
        .collect();
    let mut db: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
    let scale = 1.0 / idx.len().max(1) as f64;
    let mut flat = vec![0.0; in_dim];

    for &i in idx {
        flatten(&xs_all[i], &mut flat);
        // Forward, caching activations.
        let mut acts: Vec<Vec<f64>> = vec![flat.clone()];
        for (li, layer) in layers.iter().enumerate() {
            let mut out = vec![0.0; layer.b.len()];
            layer.w.vecmat_bias_into(&acts[li], &layer.b, &mut out);
            if li < n_layers - 1 {
                for v in &mut out {
                    *v = v.max(0.0);
                }
            }
            acts.push(out);
        }
        let yhat = acts[n_layers][0];
        let dy = 2.0 * (yhat - ys[i]) * scale;
        // Backward.
        let mut da = vec![dy];
        for li in (0..n_layers).rev() {
            let a_prev = &acts[li];
            for (k, &av) in a_prev.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let row_start = k * layers[li].w.cols();
                let dw_data = dw[li].data_mut();
                for (j, &d) in da.iter().enumerate() {
                    dw_data[row_start + j] += av * d;
                }
            }
            for (b, &d) in db[li].iter_mut().zip(&da) {
                *b += d;
            }
            if li > 0 {
                let mut prev = vec![0.0; layers[li].w.rows()];
                for (k, pv) in prev.iter_mut().enumerate() {
                    let row = layers[li].w.row(k);
                    *pv = da.iter().zip(row).map(|(a, b)| a * b).sum();
                }
                // ReLU' gate of the layer below's output.
                for (v, &act) in prev.iter_mut().zip(&acts[li]) {
                    if act <= 0.0 {
                        *v = 0.0;
                    }
                }
                da = prev;
            }
        }
    }

    for li in 0..n_layers {
        adam_w[li].step(layers[li].w.data_mut(), dw[li].data());
        adam_b[li].step(&mut layers[li].b, &db[li]);
    }
}

/// A complete trained forecasting artifact: everything an online
/// monitor (or a later session) needs to reproduce predictions — the
/// feature scaler, both networks, the window/horizon geometry, and
/// held-out evaluation metadata. Produced by `repro train`, consumed
/// by `repro zoo` and `MonitorSpec::Forecast`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ForecastModel {
    /// Window length in control cycles.
    pub window: usize,
    /// Forecast horizon in control cycles (5 min each).
    pub horizon: usize,
    /// Feature standardizer fit on the training campaign.
    pub scaler: StandardScaler,
    /// Hyperparameters both networks were trained with.
    pub config: ForecastConfig,
    /// The recurrent forecaster (the one that runs online).
    pub lstm: LstmForecaster,
    /// The non-recurrent baseline.
    pub mlp: MlpForecaster,
    /// Validation RMSE of the LSTM (mg/dL).
    pub lstm_val_rmse: f64,
    /// Validation RMSE of the MLP baseline (mg/dL).
    pub mlp_val_rmse: f64,
    /// Validation RMSE of the persistence baseline (predict BG stays
    /// at the window's last reading).
    pub persistence_val_rmse: f64,
    /// Training pairs the networks saw.
    pub trained_pairs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Synthetic forecastable dynamics: BG follows a sine wave the
    /// window fully determines; per-step targets 3 steps ahead.
    fn wave_set(n: usize, window: usize, seed: u64) -> ForecastSet {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let amp: f64 = rng.gen_range(0.5..1.5);
            let series: Vec<f64> = (0..window + 3)
                .map(|t| amp * (phase + 0.4 * t as f64).sin())
                .collect();
            x.push(
                series[..window]
                    .iter()
                    .map(|&bg| vec![bg, 0.5 * bg])
                    .collect(),
            );
            y.push((0..window).map(|t| series[t + 3]).collect());
        }
        ForecastSet::new(x, y)
    }

    /// Mean of the last-step targets (the scalar baselines predict).
    fn mean_last(data: &ForecastSet) -> f64 {
        data.y.iter().map(|ys| ys.last().unwrap()).sum::<f64>() / data.len() as f64
    }

    fn quick_config() -> ForecastConfig {
        ForecastConfig {
            hidden: vec![10],
            mlp_hidden: vec![12],
            max_epochs: 30,
            patience: 6,
            ..ForecastConfig::default()
        }
    }

    #[test]
    fn lstm_forecaster_beats_mean_prediction() {
        let data = wave_set(200, 6, 1);
        let model = LstmForecaster::fit(&data, &quick_config());
        let mean = mean_last(&data);
        let (mut mse, mut base) = (0.0, 0.0);
        for (xs, ys) in data.x.iter().zip(&data.y) {
            let y = *ys.last().unwrap();
            mse += (model.predict_seq(xs) - y).powi(2);
            base += (mean - y).powi(2);
        }
        assert!(mse < 0.5 * base, "model {mse:.4} vs mean {base:.4}");
    }

    #[test]
    fn mlp_forecaster_beats_mean_prediction() {
        let data = wave_set(200, 6, 2);
        let model = MlpForecaster::fit(&data, &quick_config());
        let mean = mean_last(&data);
        let (mut mse, mut base) = (0.0, 0.0);
        for (xs, ys) in data.x.iter().zip(&data.y) {
            let y = *ys.last().unwrap();
            mse += (model.predict_seq(xs) - y).powi(2);
            base += (mean - y).powi(2);
        }
        assert!(mse < 0.5 * base, "model {mse:.4} vs mean {base:.4}");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let data = wave_set(60, 5, 3);
        let cfg = ForecastConfig {
            max_epochs: 4,
            ..quick_config()
        };
        assert_eq!(
            LstmForecaster::fit(&data, &cfg),
            LstmForecaster::fit(&data, &cfg)
        );
        assert_eq!(
            MlpForecaster::fit(&data, &cfg),
            MlpForecaster::fit(&data, &cfg)
        );
    }

    #[test]
    fn incremental_stepping_matches_batch_forward() {
        let data = wave_set(40, 6, 4);
        let cfg = ForecastConfig {
            hidden: vec![8, 5],
            max_epochs: 3,
            ..quick_config()
        };
        let model = LstmForecaster::fit(&data, &cfg);
        // Stream a long concatenated sequence; at every step the
        // carried-state prediction must equal a batch pass over the
        // full prefix, bit for bit.
        let stream: Vec<Vec<f64>> = data.x.iter().take(4).flatten().cloned().collect();
        let mut state = model.state();
        for (t, x) in stream.iter().enumerate() {
            let incremental = model.step(&mut state, x);
            let batch = model.predict_seq(&stream[..=t]);
            assert_eq!(incremental, batch, "diverged at sample {t}");
        }
        assert_eq!(state.steps(), stream.len());
        state.reset();
        assert_eq!(state.steps(), 0);
        assert_eq!(model.step(&mut state, &stream[0]), {
            let mut fresh = model.state();
            model.step(&mut fresh, &stream[0])
        });
    }

    #[test]
    fn trainer_descends_the_mse_loss() {
        let data = wave_set(4, 3, 9);
        let cfg = ForecastConfig {
            hidden: vec![4],
            max_epochs: 0,
            ..quick_config()
        };
        let mut trainer = ForecastTrainer::new(&data, &cfg);
        let idx: Vec<usize> = (0..data.len()).collect();
        let before = trainer.mse(&data, &idx);
        for _ in 0..400 {
            trainer.train_batch(&data, &idx);
        }
        let after = trainer.mse(&data, &idx);
        assert!(
            after < before * 0.5,
            "training failed to descend: {before} -> {after}"
        );
    }

    #[test]
    fn forecast_model_serde_roundtrip() {
        let data = wave_set(30, 4, 6);
        let cfg = ForecastConfig {
            max_epochs: 2,
            ..quick_config()
        };
        let scaler = StandardScaler::fit_sequences(&data.x);
        let model = ForecastModel {
            window: 4,
            horizon: 3,
            scaler,
            config: cfg.clone(),
            lstm: LstmForecaster::fit(&data, &cfg),
            mlp: MlpForecaster::fit(&data, &cfg),
            lstm_val_rmse: 1.25,
            mlp_val_rmse: 2.5,
            persistence_val_rmse: 3.75,
            trained_pairs: data.len(),
        };
        let json = serde_json::to_string(&model).unwrap();
        let back: ForecastModel = serde_json::from_str(&json).unwrap();
        assert_eq!(model, back);
        // Predictions from the deserialized weights are bit-identical.
        assert_eq!(
            model.lstm.predict_seq(&data.x[0]),
            back.lstm.predict_seq(&data.x[0])
        );
    }

    #[test]
    fn forecast_config_is_forward_compatible() {
        // A config JSON missing newer fields deserializes to the
        // defaults of ForecastConfig::default(), not to type zeros —
        // the container-level #[serde(default)] semantics.
        let partial: ForecastConfig =
            serde_json::from_str(r#"{ "hidden": [9], "seed": 7 }"#).unwrap();
        assert_eq!(partial.hidden, vec![9]);
        assert_eq!(partial.seed, 7);
        let defaults = ForecastConfig::default();
        assert_eq!(partial.learning_rate, defaults.learning_rate);
        assert_eq!(partial.batch_size, defaults.batch_size);
        assert_eq!(partial.mlp_hidden, defaults.mlp_hidden);
    }
}
