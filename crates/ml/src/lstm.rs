//! Stacked LSTM sequence classifier with full BPTT.
//!
//! Mirrors the paper's LSTM monitor: a two-layer stacked LSTM (128 and
//! 64 units) over a sliding window of k = 6 samples (30 minutes),
//! followed by a dense softmax head; trained with Adam and sparse
//! categorical cross-entropy, with gradient clipping for stability.
//!
//! Gate layout: for each cell, one weight matrix `W: (D+H) × 4H` maps
//! the concatenated `[x_t, h_{t−1}]` to the `i, f, o, g` pre-activations.

use crate::adam::Adam;
use crate::matrix::Matrix;
use crate::SequenceClassifier;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// LSTM hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LstmConfig {
    /// Hidden sizes of the stacked layers (paper: `[128, 64]`).
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Maximum training epochs.
    pub max_epochs: usize,
    /// Early-stopping patience.
    pub patience: usize,
    /// Validation fraction.
    pub val_fraction: f64,
    /// Global gradient-norm clip.
    pub clip_norm: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LstmConfig {
    fn default() -> LstmConfig {
        LstmConfig {
            hidden: vec![128, 64],
            learning_rate: 1e-3,
            batch_size: 32,
            max_epochs: 40,
            patience: 4,
            val_fraction: 0.15,
            clip_norm: 5.0,
            seed: 42,
        }
    }
}

/// A supervised sequence dataset: each sample is `[T][D]` with a label.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SeqDataset {
    /// Sequences (equal length, equal feature dimension).
    pub x: Vec<Vec<Vec<f64>>>,
    /// Labels.
    pub y: Vec<usize>,
}

impl SeqDataset {
    /// Creates a sequence dataset, validating shapes.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or ragged sequences.
    pub fn new(x: Vec<Vec<Vec<f64>>>, y: Vec<usize>) -> SeqDataset {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        if let Some(first) = x.first() {
            let t = first.len();
            let d = first.first().map(|v| v.len()).unwrap_or(0);
            for s in &x {
                assert_eq!(s.len(), t, "ragged sequence lengths");
                assert!(s.iter().all(|f| f.len() == d), "ragged feature dims");
            }
        }
        SeqDataset { x, y }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.y.iter().max().map(|&m| m + 1).unwrap_or(0)
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Cell {
    /// (input_dim + hidden) × 4*hidden, gate order [i | f | o | g].
    w: Matrix,
    b: Vec<f64>,
    hidden: usize,
    input_dim: usize,
}

#[derive(Debug, Clone)]
struct CellCache {
    /// Per t: concatenated input [x_t, h_{t-1}].
    zs: Vec<Vec<f64>>,
    /// Per t: gate activations i, f, o, g.
    gates: Vec<[Vec<f64>; 4]>,
    /// Per t: cell state c_t.
    cs: Vec<Vec<f64>>,
    /// Per t: hidden output h_t.
    hs: Vec<Vec<f64>>,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl Cell {
    fn new(input_dim: usize, hidden: usize, rng: &mut ChaCha8Rng) -> Cell {
        let mut cell = Cell {
            w: Matrix::xavier_init(input_dim + hidden, 4 * hidden, rng),
            b: vec![0.0; 4 * hidden],
            hidden,
            input_dim,
        };
        // Forget-gate bias of 1.0: standard trick to ease gradient flow.
        for j in hidden..2 * hidden {
            cell.b[j] = 1.0;
        }
        cell
    }

    /// Runs the cell over a sequence, returning hidden outputs + cache.
    fn forward(&self, xs: &[Vec<f64>]) -> CellCache {
        let h = self.hidden;
        let t_len = xs.len();
        let mut cache = CellCache {
            zs: Vec::with_capacity(t_len),
            gates: Vec::with_capacity(t_len),
            cs: Vec::with_capacity(t_len),
            hs: Vec::with_capacity(t_len),
        };
        let mut h_prev = vec![0.0; h];
        let mut c_prev = vec![0.0; h];
        for x in xs {
            let mut z = Vec::with_capacity(self.input_dim + h);
            z.extend_from_slice(x);
            z.extend_from_slice(&h_prev);
            // Pre-activations: z · W + b, via the shared fused GEMV.
            let mut pre = self.b.clone();
            self.w.vecmat_acc_into(&z, &mut pre);
            let i: Vec<f64> = pre[0..h].iter().map(|&v| sigmoid(v)).collect();
            let f: Vec<f64> = pre[h..2 * h].iter().map(|&v| sigmoid(v)).collect();
            let o: Vec<f64> = pre[2 * h..3 * h].iter().map(|&v| sigmoid(v)).collect();
            let g: Vec<f64> = pre[3 * h..4 * h].iter().map(|&v| v.tanh()).collect();
            let c: Vec<f64> = (0..h).map(|j| f[j] * c_prev[j] + i[j] * g[j]).collect();
            let h_new: Vec<f64> = (0..h).map(|j| o[j] * c[j].tanh()).collect();
            cache.zs.push(z);
            cache.gates.push([i, f, o, g]);
            cache.cs.push(c.clone());
            cache.hs.push(h_new.clone());
            h_prev = h_new;
            c_prev = c;
        }
        cache
    }

    /// BPTT through the cell. `dhs` holds the gradient w.r.t. each
    /// hidden output; returns the gradient w.r.t. each input x_t and
    /// accumulates into `dw`/`db`.
    fn backward(
        &self,
        cache: &CellCache,
        dhs: &[Vec<f64>],
        dw: &mut Matrix,
        db: &mut [f64],
    ) -> Vec<Vec<f64>> {
        let h = self.hidden;
        let t_len = cache.hs.len();
        let mut dxs = vec![vec![0.0; self.input_dim]; t_len];
        let mut dh_next = vec![0.0; h];
        let mut dc_next = vec![0.0; h];
        for t in (0..t_len).rev() {
            let [i, f, o, g] = &cache.gates[t];
            let c = &cache.cs[t];
            let c_prev: Vec<f64> = if t == 0 {
                vec![0.0; h]
            } else {
                cache.cs[t - 1].clone()
            };
            let dh: Vec<f64> = (0..h).map(|j| dhs[t][j] + dh_next[j]).collect();

            let mut dpre = vec![0.0; 4 * h];
            let mut dc = vec![0.0; h];
            for j in 0..h {
                let tc = c[j].tanh();
                let do_ = dh[j] * tc;
                let dcj = dh[j] * o[j] * (1.0 - tc * tc) + dc_next[j];
                dc[j] = dcj;
                let di = dcj * g[j];
                let df = dcj * c_prev[j];
                let dg = dcj * i[j];
                dpre[j] = di * i[j] * (1.0 - i[j]);
                dpre[h + j] = df * f[j] * (1.0 - f[j]);
                dpre[2 * h + j] = do_ * o[j] * (1.0 - o[j]);
                dpre[3 * h + j] = dg * (1.0 - g[j] * g[j]);
            }
            // Parameter gradients: dW += z^T dpre; db += dpre.
            let z = &cache.zs[t];
            for (k, &zv) in z.iter().enumerate() {
                if zv == 0.0 {
                    continue;
                }
                let row_start = k * 4 * h;
                let dw_data = dw.data_mut();
                for (j, &dp) in dpre.iter().enumerate() {
                    dw_data[row_start + j] += zv * dp;
                }
            }
            for (dbv, &dp) in db.iter_mut().zip(&dpre) {
                *dbv += dp;
            }
            // Input-side gradients: dz = dpre · W^T split into dx, dh_prev.
            let mut dz = vec![0.0; self.input_dim + h];
            for (k, dzv) in dz.iter_mut().enumerate() {
                let row = self.w.row(k);
                *dzv = dpre.iter().zip(row).map(|(a, b)| a * b).sum();
            }
            dxs[t].copy_from_slice(&dz[..self.input_dim]);
            dh_next.copy_from_slice(&dz[self.input_dim..]);
            // dc propagates through the forget gate.
            for j in 0..h {
                dc_next[j] = dc[j] * f[j];
            }
        }
        dxs
    }
}

/// A trained stacked-LSTM classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lstm {
    cells: Vec<Cell>,
    /// Dense head: hidden_last × n_classes.
    head_w: Matrix,
    head_b: Vec<f64>,
    n_classes: usize,
    epochs_trained: usize,
}

fn softmax(mut v: Vec<f64>) -> Vec<f64> {
    let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for x in &mut v {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in &mut v {
        *x /= sum;
    }
    v
}

impl Lstm {
    /// Trains the stacked LSTM on a sequence dataset.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or empty sequences.
    pub fn fit(data: &SeqDataset, config: &LstmConfig) -> Lstm {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let dim = data.x[0][0].len();
        assert!(
            dim > 0 && !data.x[0].is_empty(),
            "sequences must be non-empty"
        );
        let n_classes = data.n_classes().max(2);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

        let mut cells = Vec::new();
        let mut in_dim = dim;
        for &h in &config.hidden {
            cells.push(Cell::new(in_dim, h, &mut rng));
            in_dim = h;
        }
        let head_w = Matrix::xavier_init(in_dim, n_classes, &mut rng);
        let head_b = vec![0.0; n_classes];
        let mut model = Lstm {
            cells,
            head_w,
            head_b,
            n_classes,
            epochs_trained: 0,
        };

        // Validation split.
        let mut idx: Vec<usize> = (0..data.len()).collect();
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        let n_val = ((data.len() as f64) * config.val_fraction).round() as usize;
        let (val_idx, train_idx) = idx.split_at(n_val.min(data.len()));
        let train_idx: Vec<usize> = if train_idx.is_empty() {
            idx.clone()
        } else {
            train_idx.to_vec()
        };

        let mut adam_w: Vec<Adam> = model
            .cells
            .iter()
            .map(|c| Adam::new(c.w.data().len(), config.learning_rate))
            .collect();
        let mut adam_b: Vec<Adam> = model
            .cells
            .iter()
            .map(|c| Adam::new(c.b.len(), config.learning_rate))
            .collect();
        let mut adam_hw = Adam::new(model.head_w.data().len(), config.learning_rate);
        let mut adam_hb = Adam::new(model.head_b.len(), config.learning_rate);

        let mut best = (f64::INFINITY, model.clone());
        let mut since_best = 0usize;
        let mut order = train_idx.clone();
        for _epoch in 0..config.max_epochs {
            model.epochs_trained += 1;
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(config.batch_size.max(1)) {
                model.train_batch(
                    data,
                    chunk,
                    config,
                    &mut adam_w,
                    &mut adam_b,
                    &mut adam_hw,
                    &mut adam_hb,
                );
            }
            let vset = if val_idx.is_empty() {
                &train_idx[..]
            } else {
                val_idx
            };
            let vloss = model.mean_ce(data, vset);
            if vloss < best.0 - 1e-6 {
                let epochs = model.epochs_trained;
                best = (vloss, model.clone());
                best.1.epochs_trained = epochs;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best > config.patience {
                    break;
                }
            }
        }
        best.1
    }

    /// Epochs actually run before early stopping.
    pub fn epochs_trained(&self) -> usize {
        self.epochs_trained
    }

    fn forward_caches(&self, xs: &[Vec<f64>]) -> (Vec<CellCache>, Vec<f64>) {
        let mut caches = Vec::with_capacity(self.cells.len());
        let mut seq: Vec<Vec<f64>> = xs.to_vec();
        for cell in &self.cells {
            let cache = cell.forward(&seq);
            seq = cache.hs.clone();
            caches.push(cache);
        }
        let last_h = seq.last().cloned().unwrap_or_default();
        let mut logits = self.head_b.clone();
        for (k, &hv) in last_h.iter().enumerate() {
            let row = self.head_w.row(k);
            for (l, &wv) in logits.iter_mut().zip(row) {
                *l += hv * wv;
            }
        }
        (caches, softmax(logits))
    }

    fn mean_ce(&self, data: &SeqDataset, idx: &[usize]) -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for &i in idx {
            let (_, p) = self.forward_caches(&data.x[i]);
            total -= p[data.y[i].min(p.len() - 1)].max(1e-12).ln();
        }
        total / idx.len() as f64
    }

    #[allow(clippy::too_many_arguments)]
    fn train_batch(
        &mut self,
        data: &SeqDataset,
        idx: &[usize],
        config: &LstmConfig,
        adam_w: &mut [Adam],
        adam_b: &mut [Adam],
        adam_hw: &mut Adam,
        adam_hb: &mut Adam,
    ) {
        let n_layers = self.cells.len();
        let mut dw: Vec<Matrix> = self
            .cells
            .iter()
            .map(|c| Matrix::zeros(c.w.rows(), c.w.cols()))
            .collect();
        let mut db: Vec<Vec<f64>> = self.cells.iter().map(|c| vec![0.0; c.b.len()]).collect();
        let mut dhw = Matrix::zeros(self.head_w.rows(), self.head_w.cols());
        let mut dhb = vec![0.0; self.head_b.len()];
        let scale = 1.0 / idx.len().max(1) as f64;

        for &i in idx {
            let xs = &data.x[i];
            let (caches, proba) = self.forward_caches(xs);
            let t_len = xs.len();
            // dLogits = p - onehot.
            let mut dlogits = proba;
            dlogits[data.y[i]] -= 1.0;
            for v in &mut dlogits {
                *v *= scale;
            }
            // Head gradients.
            let last_h = &caches[n_layers - 1].hs[t_len - 1];
            for (k, &hv) in last_h.iter().enumerate() {
                let row_start = k * dhw.cols();
                let data_mut = dhw.data_mut();
                for (j, &dl) in dlogits.iter().enumerate() {
                    data_mut[row_start + j] += hv * dl;
                }
            }
            for (b, &dl) in dhb.iter_mut().zip(&dlogits) {
                *b += dl;
            }
            // dh of the top layer's last step.
            let top_h = self.cells[n_layers - 1].hidden;
            let mut dhs = vec![vec![0.0; top_h]; t_len];
            for (j, dv) in dhs[t_len - 1].iter_mut().enumerate() {
                let row = self.head_w.row(j);
                *dv = dlogits.iter().zip(row).map(|(a, b)| a * b).sum();
            }
            // BPTT down the stack.
            for li in (0..n_layers).rev() {
                let dxs = self.cells[li].backward(&caches[li], &dhs, &mut dw[li], &mut db[li]);
                if li > 0 {
                    dhs = dxs;
                }
            }
        }

        // Global-norm clipping.
        let mut norm_sq = 0.0;
        for g in &dw {
            norm_sq += g.data().iter().map(|v| v * v).sum::<f64>();
        }
        for g in &db {
            norm_sq += g.iter().map(|v| v * v).sum::<f64>();
        }
        norm_sq += dhw.data().iter().map(|v| v * v).sum::<f64>();
        norm_sq += dhb.iter().map(|v| v * v).sum::<f64>();
        let norm = norm_sq.sqrt();
        let clip = if norm > config.clip_norm {
            config.clip_norm / norm
        } else {
            1.0
        };
        if clip < 1.0 {
            for g in &mut dw {
                for v in g.data_mut() {
                    *v *= clip;
                }
            }
            for g in &mut db {
                for v in g.iter_mut() {
                    *v *= clip;
                }
            }
            for v in dhw.data_mut() {
                *v *= clip;
            }
            for v in &mut dhb {
                *v *= clip;
            }
        }

        for li in 0..n_layers {
            adam_w[li].step(self.cells[li].w.data_mut(), dw[li].data());
            adam_b[li].step(&mut self.cells[li].b, &db[li]);
        }
        adam_hw.step(self.head_w.data_mut(), dhw.data());
        adam_hb.step(&mut self.head_b, &dhb);
    }
}

impl SequenceClassifier for Lstm {
    fn predict_proba_seq(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        self.forward_caches(xs).1
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Task requiring memory: the label is the sign of the FIRST
    /// element; later elements are noise.
    fn first_sign_task(n: usize, t: usize, seed: u64) -> SeqDataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let cls = rng.gen_range(0..2usize);
            let first = if cls == 1 { 1.0 } else { -1.0 };
            let mut seq = vec![vec![first]];
            for _ in 1..t {
                seq.push(vec![rng.gen_range(-0.3..0.3)]);
            }
            x.push(seq);
            y.push(cls);
        }
        SeqDataset::new(x, y)
    }

    fn small_config() -> LstmConfig {
        LstmConfig {
            hidden: vec![12, 8],
            max_epochs: 60,
            batch_size: 16,
            patience: 10,
            ..LstmConfig::default()
        }
    }

    #[test]
    fn learns_task_requiring_memory() {
        let data = first_sign_task(120, 6, 5);
        let model = Lstm::fit(&data, &small_config());
        let correct = data
            .x
            .iter()
            .zip(&data.y)
            .filter(|(x, &y)| model.predict_seq(x) == y)
            .count();
        let acc = correct as f64 / data.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn proba_normalized() {
        let data = first_sign_task(40, 4, 6);
        let model = Lstm::fit(
            &data,
            &LstmConfig {
                hidden: vec![6],
                max_epochs: 5,
                ..small_config()
            },
        );
        let p = model.predict_proba_seq(&data.x[0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = first_sign_task(40, 4, 6);
        let cfg = LstmConfig {
            hidden: vec![6],
            max_epochs: 3,
            ..small_config()
        };
        let a = Lstm::fit(&data, &cfg);
        let b = Lstm::fit(&data, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "ragged sequence")]
    fn ragged_sequences_rejected() {
        let _ = SeqDataset::new(
            vec![vec![vec![1.0]], vec![vec![1.0], vec![2.0]]],
            vec![0, 1],
        );
    }

    #[test]
    fn gradient_check_single_cell() {
        // Numerical gradient check of the full model loss w.r.t. a few
        // cell weights, via central differences.
        let data = first_sign_task(4, 3, 9);
        let cfg = LstmConfig {
            hidden: vec![4],
            max_epochs: 0,
            ..small_config()
        };
        let model = Lstm::fit(&data, &cfg);
        let idx: Vec<usize> = (0..data.len()).collect();

        // Analytic gradient via one batch accumulation.
        let m = model.clone();
        let mut dw: Vec<Matrix> = m
            .cells
            .iter()
            .map(|c| Matrix::zeros(c.w.rows(), c.w.cols()))
            .collect();
        let mut db: Vec<Vec<f64>> = m.cells.iter().map(|c| vec![0.0; c.b.len()]).collect();
        let mut dhw = Matrix::zeros(m.head_w.rows(), m.head_w.cols());
        let mut dhb = vec![0.0; m.head_b.len()];
        let scale = 1.0 / idx.len() as f64;
        for &i in &idx {
            let xs = &data.x[i];
            let (caches, proba) = m.forward_caches(xs);
            let t_len = xs.len();
            let mut dlogits = proba;
            dlogits[data.y[i]] -= 1.0;
            for v in &mut dlogits {
                *v *= scale;
            }
            let last_h = &caches[0].hs[t_len - 1];
            for (k, &hv) in last_h.iter().enumerate() {
                let row_start = k * dhw.cols();
                for (j, &dl) in dlogits.iter().enumerate() {
                    dhw.data_mut()[row_start + j] += hv * dl;
                }
            }
            for (b, &dl) in dhb.iter_mut().zip(&dlogits) {
                *b += dl;
            }
            let top_h = m.cells[0].hidden;
            let mut dhs = vec![vec![0.0; top_h]; t_len];
            for (j, dv) in dhs[t_len - 1].iter_mut().enumerate() {
                let row = m.head_w.row(j);
                *dv = dlogits.iter().zip(row).map(|(a, b)| a * b).sum();
            }
            m.cells[0].backward(&caches[0], &dhs, &mut dw[0], &mut db[0]);
        }

        // Numerical check on a handful of weights.
        let h = 1e-5;
        for &flat in &[0usize, 3, 7, 11] {
            let mut plus = model.clone();
            plus.cells[0].w.data_mut()[flat] += h;
            let mut minus = model.clone();
            minus.cells[0].w.data_mut()[flat] -= h;
            let num = (plus.mean_ce(&data, &idx) - minus.mean_ce(&data, &idx)) / (2.0 * h);
            let ana = dw[0].data()[flat];
            assert!(
                (num - ana).abs() < 1e-4,
                "weight {flat}: numerical {num} vs analytic {ana}"
            );
        }
    }
}
