//! Stacked LSTM sequence classifier with full BPTT.
//!
//! Mirrors the paper's LSTM monitor: a two-layer stacked LSTM (128 and
//! 64 units) over a sliding window of k = 6 samples (30 minutes),
//! followed by a dense softmax head; trained with Adam and sparse
//! categorical cross-entropy, with gradient clipping for stability.
//!
//! Gate layout: for each cell, one weight matrix `W: (D+H) × 4H` maps
//! the concatenated `[x_t, h_{t−1}]` to the `i, f, o, g` pre-activations.
//!
//! # Scratch-buffer training
//!
//! The training hot path is allocation-free in steady state: all
//! per-timestep storage (gate activations, cell/hidden states, BPTT
//! work vectors, gradient accumulators) lives in a reusable
//! [`LstmTrainer`], mirroring the simulator's `Rk4Scratch` pattern.
//! The original allocating implementation is retained as
//! [`Lstm::fit_reference`] and the two are pinned bit-identical in
//! `tests/lstm_equivalence.rs` (the workspace-level regression test),
//! which also asserts the zero-allocation property with a counting
//! allocator.

use crate::adam::Adam;
use crate::matrix::Matrix;
use crate::SequenceClassifier;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// LSTM hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LstmConfig {
    /// Hidden sizes of the stacked layers (paper: `[128, 64]`).
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Maximum training epochs.
    pub max_epochs: usize,
    /// Early-stopping patience.
    pub patience: usize,
    /// Validation fraction.
    pub val_fraction: f64,
    /// Global gradient-norm clip.
    pub clip_norm: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LstmConfig {
    fn default() -> LstmConfig {
        LstmConfig {
            hidden: vec![128, 64],
            learning_rate: 1e-3,
            batch_size: 32,
            max_epochs: 40,
            patience: 4,
            val_fraction: 0.15,
            clip_norm: 5.0,
            seed: 42,
        }
    }
}

/// A supervised sequence dataset: each sample is `[T][D]` with a label.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SeqDataset {
    /// Sequences (equal length, equal feature dimension).
    pub x: Vec<Vec<Vec<f64>>>,
    /// Labels.
    pub y: Vec<usize>,
}

impl SeqDataset {
    /// Creates a sequence dataset, validating shapes.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or ragged sequences.
    pub fn new(x: Vec<Vec<Vec<f64>>>, y: Vec<usize>) -> SeqDataset {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        if let Some(first) = x.first() {
            let t = first.len();
            let d = first.first().map(|v| v.len()).unwrap_or(0);
            for s in &x {
                assert_eq!(s.len(), t, "ragged sequence lengths");
                assert!(s.iter().all(|f| f.len() == d), "ragged feature dims");
            }
        }
        SeqDataset { x, y }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.y.iter().max().map(|&m| m + 1).unwrap_or(0)
    }
}

#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub(crate) struct Cell {
    /// (input_dim + hidden) × 4*hidden, gate order [i | f | o | g].
    pub(crate) w: Matrix,
    pub(crate) b: Vec<f64>,
    pub(crate) hidden: usize,
    pub(crate) input_dim: usize,
}

/// Per-sequence forward cache of the *reference* (allocating) path.
#[derive(Debug, Clone)]
pub(crate) struct RefCache {
    /// Per t: concatenated input [x_t, h_{t-1}].
    zs: Vec<Vec<f64>>,
    /// Per t: gate activations i, f, o, g.
    gates: Vec<[Vec<f64>; 4]>,
    /// Per t: cell state c_t.
    cs: Vec<Vec<f64>>,
    /// Per t: hidden output h_t.
    pub(crate) hs: Vec<Vec<f64>>,
}

/// Flat per-sequence forward cache, reused across samples (scratch).
///
/// Rows are packed per timestep: `zs` holds `[x_t, h_{t-1}]` at stride
/// `input_dim + hidden`, `gates` the activated `i|f|o|g` block at
/// stride `4·hidden`, `cs`/`hs` the cell/hidden state at stride
/// `hidden`. Buffers only grow; steady-state reuse never allocates.
#[derive(Debug, Clone, Default)]
pub(crate) struct CellCache {
    zs: Vec<f64>,
    gates: Vec<f64>,
    cs: Vec<f64>,
    hs: Vec<f64>,
    t_len: usize,
}

impl CellCache {
    fn reserve(&mut self, cell: &Cell, t_len: usize) {
        let zw = cell.input_dim + cell.hidden;
        self.zs.resize(t_len * zw, 0.0);
        self.gates.resize(t_len * 4 * cell.hidden, 0.0);
        self.cs.resize(t_len * cell.hidden, 0.0);
        self.hs.resize(t_len * cell.hidden, 0.0);
        self.t_len = t_len;
    }

    /// Hidden-state row at timestep `t` (width = the cell's hidden).
    pub(crate) fn h_row(&self, t: usize, hidden: usize) -> &[f64] {
        &self.hs[t * hidden..(t + 1) * hidden]
    }

    /// The first `len` entries of the flat hidden-state slab (the
    /// layer-below input view for stacked forward passes).
    pub(crate) fn h_slab(&self, len: usize) -> &[f64] {
        &self.hs[..len]
    }
}

/// BPTT work vectors shared across layers (sized to the widest).
#[derive(Debug, Clone, Default)]
pub(crate) struct BackScratch {
    dpre: Vec<f64>,
    dc: Vec<f64>,
    dc_next: Vec<f64>,
    dh_next: Vec<f64>,
    dh: Vec<f64>,
    dz: Vec<f64>,
}

impl BackScratch {
    fn reserve(&mut self, cell: &Cell) {
        let h = cell.hidden;
        self.dpre.resize(4 * h, 0.0);
        self.dc.resize(h, 0.0);
        self.dc_next.resize(h, 0.0);
        self.dh_next.resize(h, 0.0);
        self.dh.resize(h, 0.0);
        self.dz.resize(cell.input_dim + h, 0.0);
    }
}

/// A borrowed sequence: either dataset rows or a flat cache from the
/// layer below.
pub(crate) enum SeqView<'a> {
    Rows(&'a [Vec<f64>]),
    Flat {
        data: &'a [f64],
        width: usize,
        t_len: usize,
    },
}

impl SeqView<'_> {
    fn t_len(&self) -> usize {
        match self {
            SeqView::Rows(rows) => rows.len(),
            SeqView::Flat { t_len, .. } => *t_len,
        }
    }

    fn row(&self, t: usize) -> &[f64] {
        match self {
            SeqView::Rows(rows) => &rows[t],
            SeqView::Flat { data, width, .. } => &data[t * width..(t + 1) * width],
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Scratch forward pass of a whole cell stack: layer 0 reads the
/// dataset rows, each deeper layer reads the flat hidden slab of the
/// cache below. Shared by the classifier ([`Lstm`]) and the forecaster
/// trainer so the stacked-forward logic exists once.
pub(crate) fn forward_stack(cells: &[Cell], xs: &[Vec<f64>], caches: &mut [CellCache]) {
    let t_len = xs.len();
    for li in 0..cells.len() {
        let (below, rest) = caches.split_at_mut(li);
        let cache = &mut rest[0];
        if li == 0 {
            cells[li].forward_into(&SeqView::Rows(xs), cache);
        } else {
            let width = cells[li - 1].hidden;
            cells[li].forward_into(
                &SeqView::Flat {
                    data: below[li - 1].h_slab(t_len * width),
                    width,
                    t_len,
                },
                cache,
            );
        }
    }
}

impl Cell {
    pub(crate) fn new(input_dim: usize, hidden: usize, rng: &mut ChaCha8Rng) -> Cell {
        let mut cell = Cell {
            w: Matrix::xavier_init(input_dim + hidden, 4 * hidden, rng),
            b: vec![0.0; 4 * hidden],
            hidden,
            input_dim,
        };
        // Forget-gate bias of 1.0: standard trick to ease gradient flow.
        for j in hidden..2 * hidden {
            cell.b[j] = 1.0;
        }
        cell
    }

    /// Runs the cell over a sequence into a flat scratch cache without
    /// allocating (after the cache has grown to shape). Arithmetic is
    /// performed in exactly the reference order, so results are
    /// bit-identical to [`Cell::forward_reference`].
    pub(crate) fn forward_into(&self, xs: &SeqView<'_>, cache: &mut CellCache) {
        let h = self.hidden;
        let d = self.input_dim;
        let zw = d + h;
        let t_len = xs.t_len();
        cache.reserve(self, t_len);
        for t in 0..t_len {
            // z = [x_t, h_{t-1}] (zeros before the first step).
            let z_row = &mut cache.zs[t * zw..(t + 1) * zw];
            z_row[..d].copy_from_slice(xs.row(t));
            if t == 0 {
                z_row[d..].fill(0.0);
            } else {
                z_row[d..].copy_from_slice(&cache.hs[(t - 1) * h..t * h]);
            }
            // Pre-activations: z · W + b, via the shared fused GEMV.
            let gates = &mut cache.gates[t * 4 * h..(t + 1) * 4 * h];
            gates.copy_from_slice(&self.b);
            let z_row = &cache.zs[t * zw..(t + 1) * zw];
            self.w.vecmat_acc_into(z_row, gates);
            // Gate activations in the reference order i, f, o, g.
            for v in &mut gates[0..h] {
                *v = sigmoid(*v);
            }
            for v in &mut gates[h..2 * h] {
                *v = sigmoid(*v);
            }
            for v in &mut gates[2 * h..3 * h] {
                *v = sigmoid(*v);
            }
            for v in &mut gates[3 * h..4 * h] {
                *v = v.tanh();
            }
            // c_t = f ⊙ c_{t-1} + i ⊙ g; h_t = o ⊙ tanh(c_t).
            let (c_prev_part, c_rest) = cache.cs.split_at_mut(t * h);
            let c_row = &mut c_rest[..h];
            for j in 0..h {
                let c_prev = if t == 0 {
                    0.0
                } else {
                    c_prev_part[(t - 1) * h + j]
                };
                c_row[j] = gates[h + j] * c_prev + gates[j] * gates[3 * h + j];
            }
            let h_row = &mut cache.hs[t * h..(t + 1) * h];
            for j in 0..h {
                h_row[j] = gates[2 * h + j] * c_row[j].tanh();
            }
        }
    }

    /// BPTT through the cell using flat scratch buffers: `dhs` holds
    /// the per-timestep gradient w.r.t. the hidden outputs (stride
    /// `hidden`), `dxs` receives the gradient w.r.t. each input
    /// (stride `input_dim`, fully overwritten), and parameter
    /// gradients accumulate into `dw`/`db`. Bit-identical to
    /// [`Cell::backward_reference`].
    pub(crate) fn backward_scratch(
        &self,
        cache: &CellCache,
        dhs: &[f64],
        dxs: &mut [f64],
        dw: &mut Matrix,
        db: &mut [f64],
        bs: &mut BackScratch,
    ) {
        let h = self.hidden;
        let d = self.input_dim;
        let zw = d + h;
        let t_len = cache.t_len;
        bs.reserve(self);
        bs.dh_next[..h].fill(0.0);
        bs.dc_next[..h].fill(0.0);
        for t in (0..t_len).rev() {
            let gates = &cache.gates[t * 4 * h..(t + 1) * 4 * h];
            let c = &cache.cs[t * h..(t + 1) * h];
            for j in 0..h {
                bs.dh[j] = dhs[t * h + j] + bs.dh_next[j];
            }
            for j in 0..h {
                let (i, f, o, g) = (gates[j], gates[h + j], gates[2 * h + j], gates[3 * h + j]);
                let c_prev = if t == 0 {
                    0.0
                } else {
                    cache.cs[(t - 1) * h + j]
                };
                let tc = c[j].tanh();
                let do_ = bs.dh[j] * tc;
                let dcj = bs.dh[j] * o * (1.0 - tc * tc) + bs.dc_next[j];
                bs.dc[j] = dcj;
                let di = dcj * g;
                let df = dcj * c_prev;
                let dg = dcj * i;
                bs.dpre[j] = di * i * (1.0 - i);
                bs.dpre[h + j] = df * f * (1.0 - f);
                bs.dpre[2 * h + j] = do_ * o * (1.0 - o);
                bs.dpre[3 * h + j] = dg * (1.0 - g * g);
            }
            // Parameter gradients: dW += z^T dpre; db += dpre.
            let z = &cache.zs[t * zw..(t + 1) * zw];
            for (k, &zv) in z.iter().enumerate() {
                if zv == 0.0 {
                    continue;
                }
                let row_start = k * 4 * h;
                let dw_data = dw.data_mut();
                for (j, &dp) in bs.dpre[..4 * h].iter().enumerate() {
                    dw_data[row_start + j] += zv * dp;
                }
            }
            for (dbv, &dp) in db.iter_mut().zip(&bs.dpre[..4 * h]) {
                *dbv += dp;
            }
            // Input-side gradients: dz = dpre · W^T split into dx, dh_prev.
            for (k, dzv) in bs.dz[..zw].iter_mut().enumerate() {
                let row = self.w.row(k);
                *dzv = bs.dpre[..4 * h].iter().zip(row).map(|(a, b)| a * b).sum();
            }
            dxs[t * d..(t + 1) * d].copy_from_slice(&bs.dz[..d]);
            bs.dh_next[..h].copy_from_slice(&bs.dz[d..zw]);
            // dc propagates through the forget gate.
            for j in 0..h {
                bs.dc_next[j] = bs.dc[j] * gates[h + j];
            }
        }
    }

    /// The retained allocating forward pass (the pre-scratch
    /// implementation, verbatim): per-gate `Vec`s per timestep.
    pub(crate) fn forward_reference(&self, xs: &[Vec<f64>]) -> RefCache {
        let h = self.hidden;
        let t_len = xs.len();
        let mut cache = RefCache {
            zs: Vec::with_capacity(t_len),
            gates: Vec::with_capacity(t_len),
            cs: Vec::with_capacity(t_len),
            hs: Vec::with_capacity(t_len),
        };
        let mut h_prev = vec![0.0; h];
        let mut c_prev = vec![0.0; h];
        for x in xs {
            let mut z = Vec::with_capacity(self.input_dim + h);
            z.extend_from_slice(x);
            z.extend_from_slice(&h_prev);
            // Pre-activations: z · W + b, via the shared fused GEMV.
            let mut pre = self.b.clone();
            self.w.vecmat_acc_into(&z, &mut pre);
            let i: Vec<f64> = pre[0..h].iter().map(|&v| sigmoid(v)).collect();
            let f: Vec<f64> = pre[h..2 * h].iter().map(|&v| sigmoid(v)).collect();
            let o: Vec<f64> = pre[2 * h..3 * h].iter().map(|&v| sigmoid(v)).collect();
            let g: Vec<f64> = pre[3 * h..4 * h].iter().map(|&v| v.tanh()).collect();
            let c: Vec<f64> = (0..h).map(|j| f[j] * c_prev[j] + i[j] * g[j]).collect();
            let h_new: Vec<f64> = (0..h).map(|j| o[j] * c[j].tanh()).collect();
            cache.zs.push(z);
            cache.gates.push([i, f, o, g]);
            cache.cs.push(c.clone());
            cache.hs.push(h_new.clone());
            h_prev = h_new;
            c_prev = c;
        }
        cache
    }

    /// The retained allocating BPTT (the pre-scratch implementation,
    /// verbatim). `dhs` holds the gradient w.r.t. each hidden output;
    /// returns the gradient w.r.t. each input x_t and accumulates into
    /// `dw`/`db`.
    pub(crate) fn backward_reference(
        &self,
        cache: &RefCache,
        dhs: &[Vec<f64>],
        dw: &mut Matrix,
        db: &mut [f64],
    ) -> Vec<Vec<f64>> {
        let h = self.hidden;
        let t_len = cache.hs.len();
        let mut dxs = vec![vec![0.0; self.input_dim]; t_len];
        let mut dh_next = vec![0.0; h];
        let mut dc_next = vec![0.0; h];
        for t in (0..t_len).rev() {
            let [i, f, o, g] = &cache.gates[t];
            let c = &cache.cs[t];
            let c_prev: Vec<f64> = if t == 0 {
                vec![0.0; h]
            } else {
                cache.cs[t - 1].clone()
            };
            let dh: Vec<f64> = (0..h).map(|j| dhs[t][j] + dh_next[j]).collect();

            let mut dpre = vec![0.0; 4 * h];
            let mut dc = vec![0.0; h];
            for j in 0..h {
                let tc = c[j].tanh();
                let do_ = dh[j] * tc;
                let dcj = dh[j] * o[j] * (1.0 - tc * tc) + dc_next[j];
                dc[j] = dcj;
                let di = dcj * g[j];
                let df = dcj * c_prev[j];
                let dg = dcj * i[j];
                dpre[j] = di * i[j] * (1.0 - i[j]);
                dpre[h + j] = df * f[j] * (1.0 - f[j]);
                dpre[2 * h + j] = do_ * o[j] * (1.0 - o[j]);
                dpre[3 * h + j] = dg * (1.0 - g[j] * g[j]);
            }
            // Parameter gradients: dW += z^T dpre; db += dpre.
            let z = &cache.zs[t];
            for (k, &zv) in z.iter().enumerate() {
                if zv == 0.0 {
                    continue;
                }
                let row_start = k * 4 * h;
                let dw_data = dw.data_mut();
                for (j, &dp) in dpre.iter().enumerate() {
                    dw_data[row_start + j] += zv * dp;
                }
            }
            for (dbv, &dp) in db.iter_mut().zip(&dpre) {
                *dbv += dp;
            }
            // Input-side gradients: dz = dpre · W^T split into dx, dh_prev.
            let mut dz = vec![0.0; self.input_dim + h];
            for (k, dzv) in dz.iter_mut().enumerate() {
                let row = self.w.row(k);
                *dzv = dpre.iter().zip(row).map(|(a, b)| a * b).sum();
            }
            dxs[t].copy_from_slice(&dz[..self.input_dim]);
            dh_next.copy_from_slice(&dz[self.input_dim..]);
            // dc propagates through the forget gate.
            for j in 0..h {
                dc_next[j] = dc[j] * f[j];
            }
        }
        dxs
    }
}

/// A trained stacked-LSTM classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lstm {
    cells: Vec<Cell>,
    /// Dense head: hidden_last × n_classes.
    head_w: Matrix,
    head_b: Vec<f64>,
    n_classes: usize,
    epochs_trained: usize,
}

fn softmax(mut v: Vec<f64>) -> Vec<f64> {
    softmax_in_place(&mut v);
    v
}

fn softmax_in_place(v: &mut [f64]) {
    let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in v.iter_mut() {
        *x /= sum;
    }
}

/// All reusable buffers of the scratch training path: per-layer flat
/// forward caches, the ping-pong BPTT gradient streams, gradient
/// accumulators, and the BPTT work vectors. One `LstmScratch` serves
/// any number of samples/batches of the same shape without touching
/// the allocator.
#[derive(Debug, Clone)]
struct LstmScratch {
    caches: Vec<CellCache>,
    back: BackScratch,
    /// Ping-pong flat gradient streams (t × max layer width each).
    stream_a: Vec<f64>,
    stream_b: Vec<f64>,
    probs: Vec<f64>,
    dlogits: Vec<f64>,
    dw: Vec<Matrix>,
    db: Vec<Vec<f64>>,
    dhw: Matrix,
    dhb: Vec<f64>,
    /// Widest per-layer stream row (fixed by the model shape; hoisted
    /// out of the per-sample loop).
    max_width: usize,
}

impl LstmScratch {
    fn for_model(model: &Lstm) -> LstmScratch {
        LstmScratch {
            caches: model.cells.iter().map(|_| CellCache::default()).collect(),
            back: BackScratch::default(),
            stream_a: Vec::new(),
            stream_b: Vec::new(),
            probs: Vec::with_capacity(model.n_classes),
            dlogits: Vec::with_capacity(model.n_classes),
            dw: model
                .cells
                .iter()
                .map(|c| Matrix::zeros(c.w.rows(), c.w.cols()))
                .collect(),
            db: model.cells.iter().map(|c| vec![0.0; c.b.len()]).collect(),
            dhw: Matrix::zeros(model.head_w.rows(), model.head_w.cols()),
            dhb: vec![0.0; model.head_b.len()],
            max_width: model
                .cells
                .iter()
                .map(|c| c.hidden.max(c.input_dim))
                .max()
                .unwrap_or(0),
        }
    }
}

/// Reusable LSTM training state: the model being trained, Adam moments
/// for every tensor, and all scratch buffers.
///
/// After a first warm-up batch has sized the buffers, every further
/// [`train_batch`](LstmTrainer::train_batch) /
/// [`mean_ce`](LstmTrainer::mean_ce) call on same-shaped data performs
/// **zero heap allocations** — the property `tests/lstm_equivalence.rs`
/// asserts with a counting allocator. [`Lstm::fit`] is a thin
/// epoch/early-stopping loop over this type.
pub struct LstmTrainer {
    model: Lstm,
    config: LstmConfig,
    adam_w: Vec<Adam>,
    adam_b: Vec<Adam>,
    adam_hw: Adam,
    adam_hb: Adam,
    scratch: LstmScratch,
}

impl LstmTrainer {
    /// Builds a trainer around a freshly initialized model (weights
    /// drawn from `rng` exactly as the reference initialization does).
    fn for_new_model(data: &SeqDataset, config: &LstmConfig, rng: &mut ChaCha8Rng) -> LstmTrainer {
        let model = Lstm::init(data, config, rng);
        let adam_w = model
            .cells
            .iter()
            .map(|c| Adam::new(c.w.data().len(), config.learning_rate))
            .collect();
        let adam_b = model
            .cells
            .iter()
            .map(|c| Adam::new(c.b.len(), config.learning_rate))
            .collect();
        let adam_hw = Adam::new(model.head_w.data().len(), config.learning_rate);
        let adam_hb = Adam::new(model.head_b.len(), config.learning_rate);
        let scratch = LstmScratch::for_model(&model);
        LstmTrainer {
            model,
            config: config.clone(),
            adam_w,
            adam_b,
            adam_hw,
            adam_hb,
            scratch,
        }
    }

    /// Builds a trainer for `data` with a self-seeded RNG (from
    /// `config.seed`) — the entry point for external callers such as
    /// the allocation regression test.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or empty sequences.
    pub fn new(data: &SeqDataset, config: &LstmConfig) -> LstmTrainer {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(
            !data.x[0].is_empty() && !data.x[0][0].is_empty(),
            "sequences must be non-empty"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        LstmTrainer::for_new_model(data, config, &mut rng)
    }

    /// The model in its current training state.
    pub fn model(&self) -> &Lstm {
        &self.model
    }

    /// One mini-batch update (forward + BPTT + clip + Adam) over the
    /// samples at `idx`. Allocation-free once the scratch buffers have
    /// been sized by a first call.
    pub fn train_batch(&mut self, data: &SeqDataset, idx: &[usize]) {
        let model = &mut self.model;
        let s = &mut self.scratch;
        let n_layers = model.cells.len();
        for g in &mut s.dw {
            g.data_mut().fill(0.0);
        }
        for g in &mut s.db {
            g.fill(0.0);
        }
        s.dhw.data_mut().fill(0.0);
        s.dhb.fill(0.0);
        let scale = 1.0 / idx.len().max(1) as f64;

        for &i in idx {
            let xs = &data.x[i];
            let t_len = xs.len();
            model.forward_scratch(xs, &mut s.caches, &mut s.probs);
            // dLogits = p - onehot.
            s.dlogits.clear();
            s.dlogits.extend_from_slice(&s.probs);
            s.dlogits[data.y[i]] -= 1.0;
            for v in &mut s.dlogits {
                *v *= scale;
            }
            // Head gradients.
            let top = n_layers - 1;
            let top_h = model.cells[top].hidden;
            let last_h = s.caches[top].h_row(t_len - 1, top_h);
            for (k, &hv) in last_h.iter().enumerate() {
                let row_start = k * s.dhw.cols();
                let data_mut = s.dhw.data_mut();
                for (j, &dl) in s.dlogits.iter().enumerate() {
                    data_mut[row_start + j] += hv * dl;
                }
            }
            for (b, &dl) in s.dhb.iter_mut().zip(&s.dlogits) {
                *b += dl;
            }
            // dh of the top layer's last step.
            s.stream_a.resize(t_len * s.max_width, 0.0);
            s.stream_b.resize(t_len * s.max_width, 0.0);
            s.stream_a[..t_len * top_h].fill(0.0);
            let last_row = &mut s.stream_a[(t_len - 1) * top_h..t_len * top_h];
            for (j, dv) in last_row.iter_mut().enumerate() {
                let row = model.head_w.row(j);
                *dv = s.dlogits.iter().zip(row).map(|(a, b)| a * b).sum();
            }
            // BPTT down the stack: `stream_a` carries dhs for the
            // current layer, `stream_b` receives its dxs (which is the
            // dhs of the layer below); swap per layer.
            for li in (0..n_layers).rev() {
                let cell = &model.cells[li];
                cell.backward_scratch(
                    &s.caches[li],
                    &s.stream_a[..t_len * cell.hidden],
                    &mut s.stream_b[..t_len * cell.input_dim],
                    &mut s.dw[li],
                    &mut s.db[li],
                    &mut s.back,
                );
                if li > 0 {
                    std::mem::swap(&mut s.stream_a, &mut s.stream_b);
                }
            }
        }

        // Global-norm clipping.
        let mut norm_sq = 0.0;
        for g in &s.dw {
            norm_sq += g.data().iter().map(|v| v * v).sum::<f64>();
        }
        for g in &s.db {
            norm_sq += g.iter().map(|v| v * v).sum::<f64>();
        }
        norm_sq += s.dhw.data().iter().map(|v| v * v).sum::<f64>();
        norm_sq += s.dhb.iter().map(|v| v * v).sum::<f64>();
        let clip = crate::train_util::clip_factor(norm_sq, self.config.clip_norm);
        if clip < 1.0 {
            for g in &mut s.dw {
                for v in g.data_mut() {
                    *v *= clip;
                }
            }
            for g in &mut s.db {
                for v in g.iter_mut() {
                    *v *= clip;
                }
            }
            for v in s.dhw.data_mut() {
                *v *= clip;
            }
            for v in &mut s.dhb {
                *v *= clip;
            }
        }

        for li in 0..n_layers {
            self.adam_w[li].step(model.cells[li].w.data_mut(), s.dw[li].data());
            self.adam_b[li].step(&mut model.cells[li].b, &s.db[li]);
        }
        self.adam_hw.step(model.head_w.data_mut(), s.dhw.data());
        self.adam_hb.step(&mut model.head_b, &s.dhb);
    }

    /// Mean cross-entropy over the samples at `idx`, via the scratch
    /// forward pass (values bit-identical to the reference).
    pub fn mean_ce(&mut self, data: &SeqDataset, idx: &[usize]) -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for &i in idx {
            self.model.forward_scratch(
                &data.x[i],
                &mut self.scratch.caches,
                &mut self.scratch.probs,
            );
            let p = &self.scratch.probs;
            total -= p[data.y[i].min(p.len() - 1)].max(1e-12).ln();
        }
        total / idx.len() as f64
    }
}

impl Lstm {
    /// Initializes an untrained model (weights drawn from `rng` in the
    /// reference order: cells bottom-up, then the dense head).
    fn init(data: &SeqDataset, config: &LstmConfig, rng: &mut ChaCha8Rng) -> Lstm {
        let dim = data.x[0][0].len();
        let n_classes = data.n_classes().max(2);
        let mut cells = Vec::new();
        let mut in_dim = dim;
        for &h in &config.hidden {
            cells.push(Cell::new(in_dim, h, rng));
            in_dim = h;
        }
        let head_w = Matrix::xavier_init(in_dim, n_classes, rng);
        let head_b = vec![0.0; n_classes];
        Lstm {
            cells,
            head_w,
            head_b,
            n_classes,
            epochs_trained: 0,
        }
    }

    /// Trains the stacked LSTM on a sequence dataset via the
    /// allocation-free scratch path (see [`LstmTrainer`]). Weights are
    /// bit-identical to [`Lstm::fit_reference`].
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or empty sequences.
    pub fn fit(data: &SeqDataset, config: &LstmConfig) -> Lstm {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let dim = data.x[0][0].len();
        assert!(
            dim > 0 && !data.x[0].is_empty(),
            "sequences must be non-empty"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut trainer = LstmTrainer::for_new_model(data, config, &mut rng);

        let (train_idx, val_idx) =
            crate::train_util::val_split(data.len(), config.val_fraction, &mut rng);
        let plan = crate::train_util::EpochPlan {
            max_epochs: config.max_epochs,
            batch_size: config.batch_size,
            patience: config.patience,
            tol: 1e-6,
            train_idx: &train_idx,
            val_idx: &val_idx,
        };
        let initial = trainer.model().clone();
        crate::train_util::train_epochs(
            &mut trainer,
            &plan,
            &mut rng,
            initial,
            |t, chunk| t.train_batch(data, chunk),
            |t, vset| t.mean_ce(data, vset),
            |t, epoch| {
                let mut snap = t.model().clone();
                snap.epochs_trained = epoch;
                snap
            },
        )
    }

    /// The retained pre-scratch training path: identical math with
    /// per-gate/per-timestep `Vec` allocations. Kept (not deprecated)
    /// as the executable specification the scratch path is pinned
    /// against in `tests/lstm_equivalence.rs`.
    ///
    /// # Panics
    ///
    /// As [`Lstm::fit`].
    pub fn fit_reference(data: &SeqDataset, config: &LstmConfig) -> Lstm {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let dim = data.x[0][0].len();
        assert!(
            dim > 0 && !data.x[0].is_empty(),
            "sequences must be non-empty"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut model = Lstm::init(data, config, &mut rng);

        // Validation split.
        let mut idx: Vec<usize> = (0..data.len()).collect();
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        let n_val = ((data.len() as f64) * config.val_fraction).round() as usize;
        let (val_idx, train_idx) = idx.split_at(n_val.min(data.len()));
        let train_idx: Vec<usize> = if train_idx.is_empty() {
            idx.clone()
        } else {
            train_idx.to_vec()
        };

        let mut adam_w: Vec<Adam> = model
            .cells
            .iter()
            .map(|c| Adam::new(c.w.data().len(), config.learning_rate))
            .collect();
        let mut adam_b: Vec<Adam> = model
            .cells
            .iter()
            .map(|c| Adam::new(c.b.len(), config.learning_rate))
            .collect();
        let mut adam_hw = Adam::new(model.head_w.data().len(), config.learning_rate);
        let mut adam_hb = Adam::new(model.head_b.len(), config.learning_rate);

        let mut best = (f64::INFINITY, model.clone());
        let mut since_best = 0usize;
        let mut order = train_idx.clone();
        for _epoch in 0..config.max_epochs {
            model.epochs_trained += 1;
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(config.batch_size.max(1)) {
                model.train_batch_reference(
                    data,
                    chunk,
                    config,
                    &mut adam_w,
                    &mut adam_b,
                    &mut adam_hw,
                    &mut adam_hb,
                );
            }
            let vset = if val_idx.is_empty() {
                &train_idx[..]
            } else {
                val_idx
            };
            let vloss = model.mean_ce(data, vset);
            if vloss < best.0 - 1e-6 {
                let epochs = model.epochs_trained;
                best = (vloss, model.clone());
                best.1.epochs_trained = epochs;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best > config.patience {
                    break;
                }
            }
        }
        best.1
    }

    /// Epochs actually run before early stopping.
    pub fn epochs_trained(&self) -> usize {
        self.epochs_trained
    }

    /// Scratch forward pass over the whole stack: fills the per-layer
    /// flat caches and writes the class probabilities into `probs`.
    fn forward_scratch(&self, xs: &[Vec<f64>], caches: &mut [CellCache], probs: &mut Vec<f64>) {
        let t_len = xs.len();
        forward_stack(&self.cells, xs, caches);
        let top = self.cells.len() - 1;
        let last_h = caches[top].h_row(t_len - 1, self.cells[top].hidden);
        probs.clear();
        probs.extend_from_slice(&self.head_b);
        for (k, &hv) in last_h.iter().enumerate() {
            let row = self.head_w.row(k);
            for (l, &wv) in probs.iter_mut().zip(row) {
                *l += hv * wv;
            }
        }
        softmax_in_place(probs);
    }

    fn forward_caches(&self, xs: &[Vec<f64>]) -> (Vec<RefCache>, Vec<f64>) {
        let mut caches = Vec::with_capacity(self.cells.len());
        let mut seq: Vec<Vec<f64>> = xs.to_vec();
        for cell in &self.cells {
            let cache = cell.forward_reference(&seq);
            seq = cache.hs.clone();
            caches.push(cache);
        }
        let last_h = seq.last().cloned().unwrap_or_default();
        let mut logits = self.head_b.clone();
        for (k, &hv) in last_h.iter().enumerate() {
            let row = self.head_w.row(k);
            for (l, &wv) in logits.iter_mut().zip(row) {
                *l += hv * wv;
            }
        }
        (caches, softmax(logits))
    }

    fn mean_ce(&self, data: &SeqDataset, idx: &[usize]) -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for &i in idx {
            let (_, p) = self.forward_caches(&data.x[i]);
            total -= p[data.y[i].min(p.len() - 1)].max(1e-12).ln();
        }
        total / idx.len() as f64
    }

    #[allow(clippy::too_many_arguments)]
    fn train_batch_reference(
        &mut self,
        data: &SeqDataset,
        idx: &[usize],
        config: &LstmConfig,
        adam_w: &mut [Adam],
        adam_b: &mut [Adam],
        adam_hw: &mut Adam,
        adam_hb: &mut Adam,
    ) {
        let n_layers = self.cells.len();
        let mut dw: Vec<Matrix> = self
            .cells
            .iter()
            .map(|c| Matrix::zeros(c.w.rows(), c.w.cols()))
            .collect();
        let mut db: Vec<Vec<f64>> = self.cells.iter().map(|c| vec![0.0; c.b.len()]).collect();
        let mut dhw = Matrix::zeros(self.head_w.rows(), self.head_w.cols());
        let mut dhb = vec![0.0; self.head_b.len()];
        let scale = 1.0 / idx.len().max(1) as f64;

        for &i in idx {
            let xs = &data.x[i];
            let (caches, proba) = self.forward_caches(xs);
            let t_len = xs.len();
            // dLogits = p - onehot.
            let mut dlogits = proba;
            dlogits[data.y[i]] -= 1.0;
            for v in &mut dlogits {
                *v *= scale;
            }
            // Head gradients.
            let last_h = &caches[n_layers - 1].hs[t_len - 1];
            for (k, &hv) in last_h.iter().enumerate() {
                let row_start = k * dhw.cols();
                let data_mut = dhw.data_mut();
                for (j, &dl) in dlogits.iter().enumerate() {
                    data_mut[row_start + j] += hv * dl;
                }
            }
            for (b, &dl) in dhb.iter_mut().zip(&dlogits) {
                *b += dl;
            }
            // dh of the top layer's last step.
            let top_h = self.cells[n_layers - 1].hidden;
            let mut dhs = vec![vec![0.0; top_h]; t_len];
            for (j, dv) in dhs[t_len - 1].iter_mut().enumerate() {
                let row = self.head_w.row(j);
                *dv = dlogits.iter().zip(row).map(|(a, b)| a * b).sum();
            }
            // BPTT down the stack.
            for li in (0..n_layers).rev() {
                let dxs =
                    self.cells[li].backward_reference(&caches[li], &dhs, &mut dw[li], &mut db[li]);
                if li > 0 {
                    dhs = dxs;
                }
            }
        }

        // Global-norm clipping.
        let mut norm_sq = 0.0;
        for g in &dw {
            norm_sq += g.data().iter().map(|v| v * v).sum::<f64>();
        }
        for g in &db {
            norm_sq += g.iter().map(|v| v * v).sum::<f64>();
        }
        norm_sq += dhw.data().iter().map(|v| v * v).sum::<f64>();
        norm_sq += dhb.iter().map(|v| v * v).sum::<f64>();
        let norm = norm_sq.sqrt();
        let clip = if norm > config.clip_norm {
            config.clip_norm / norm
        } else {
            1.0
        };
        if clip < 1.0 {
            for g in &mut dw {
                for v in g.data_mut() {
                    *v *= clip;
                }
            }
            for g in &mut db {
                for v in g.iter_mut() {
                    *v *= clip;
                }
            }
            for v in dhw.data_mut() {
                *v *= clip;
            }
            for v in &mut dhb {
                *v *= clip;
            }
        }

        for li in 0..n_layers {
            adam_w[li].step(self.cells[li].w.data_mut(), dw[li].data());
            adam_b[li].step(&mut self.cells[li].b, &db[li]);
        }
        adam_hw.step(self.head_w.data_mut(), dhw.data());
        adam_hb.step(&mut self.head_b, &dhb);
    }
}

impl SequenceClassifier for Lstm {
    fn predict_proba_seq(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        self.forward_caches(xs).1
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Task requiring memory: the label is the sign of the FIRST
    /// element; later elements are noise.
    fn first_sign_task(n: usize, t: usize, seed: u64) -> SeqDataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let cls = rng.gen_range(0..2usize);
            let first = if cls == 1 { 1.0 } else { -1.0 };
            let mut seq = vec![vec![first]];
            for _ in 1..t {
                seq.push(vec![rng.gen_range(-0.3..0.3)]);
            }
            x.push(seq);
            y.push(cls);
        }
        SeqDataset::new(x, y)
    }

    fn small_config() -> LstmConfig {
        LstmConfig {
            hidden: vec![12, 8],
            max_epochs: 60,
            batch_size: 16,
            patience: 10,
            ..LstmConfig::default()
        }
    }

    #[test]
    fn learns_task_requiring_memory() {
        let data = first_sign_task(120, 6, 5);
        let model = Lstm::fit(&data, &small_config());
        let correct = data
            .x
            .iter()
            .zip(&data.y)
            .filter(|(x, &y)| model.predict_seq(x) == y)
            .count();
        let acc = correct as f64 / data.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn proba_normalized() {
        let data = first_sign_task(40, 4, 6);
        let model = Lstm::fit(
            &data,
            &LstmConfig {
                hidden: vec![6],
                max_epochs: 5,
                ..small_config()
            },
        );
        let p = model.predict_proba_seq(&data.x[0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = first_sign_task(40, 4, 6);
        let cfg = LstmConfig {
            hidden: vec![6],
            max_epochs: 3,
            ..small_config()
        };
        let a = Lstm::fit(&data, &cfg);
        let b = Lstm::fit(&data, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_training_matches_reference_bitwise() {
        // Multi-layer, multi-epoch, with clipping and early stopping in
        // play: the scratch path must reproduce the reference weights
        // exactly (the workspace-level test extends this to larger
        // shapes).
        let data = first_sign_task(48, 5, 11);
        let cfg = LstmConfig {
            hidden: vec![7, 5],
            max_epochs: 6,
            batch_size: 8,
            ..small_config()
        };
        let scratch = Lstm::fit(&data, &cfg);
        let reference = Lstm::fit_reference(&data, &cfg);
        assert_eq!(scratch, reference);
    }

    #[test]
    fn scratch_forward_matches_reference_forward() {
        let data = first_sign_task(8, 4, 13);
        let cfg = LstmConfig {
            hidden: vec![5, 3],
            max_epochs: 0,
            ..small_config()
        };
        let model = Lstm::fit(&data, &cfg);
        let mut caches: Vec<CellCache> = model.cells.iter().map(|_| CellCache::default()).collect();
        let mut probs = Vec::new();
        for xs in &data.x {
            model.forward_scratch(xs, &mut caches, &mut probs);
            let (_, reference) = model.forward_caches(xs);
            assert_eq!(probs, reference);
        }
    }

    #[test]
    #[should_panic(expected = "ragged sequence")]
    fn ragged_sequences_rejected() {
        let _ = SeqDataset::new(
            vec![vec![vec![1.0]], vec![vec![1.0], vec![2.0]]],
            vec![0, 1],
        );
    }

    #[test]
    fn gradient_check_single_cell() {
        // Numerical gradient check of the full model loss w.r.t. a few
        // cell weights, via central differences.
        let data = first_sign_task(4, 3, 9);
        let cfg = LstmConfig {
            hidden: vec![4],
            max_epochs: 0,
            ..small_config()
        };
        let model = Lstm::fit(&data, &cfg);
        let idx: Vec<usize> = (0..data.len()).collect();

        // Analytic gradient via one batch accumulation.
        let m = model.clone();
        let mut dw: Vec<Matrix> = m
            .cells
            .iter()
            .map(|c| Matrix::zeros(c.w.rows(), c.w.cols()))
            .collect();
        let mut db: Vec<Vec<f64>> = m.cells.iter().map(|c| vec![0.0; c.b.len()]).collect();
        let mut dhw = Matrix::zeros(m.head_w.rows(), m.head_w.cols());
        let mut dhb = vec![0.0; m.head_b.len()];
        let scale = 1.0 / idx.len() as f64;
        for &i in &idx {
            let xs = &data.x[i];
            let (caches, proba) = m.forward_caches(xs);
            let t_len = xs.len();
            let mut dlogits = proba;
            dlogits[data.y[i]] -= 1.0;
            for v in &mut dlogits {
                *v *= scale;
            }
            let last_h = &caches[0].hs[t_len - 1];
            for (k, &hv) in last_h.iter().enumerate() {
                let row_start = k * dhw.cols();
                for (j, &dl) in dlogits.iter().enumerate() {
                    dhw.data_mut()[row_start + j] += hv * dl;
                }
            }
            for (b, &dl) in dhb.iter_mut().zip(&dlogits) {
                *b += dl;
            }
            let top_h = m.cells[0].hidden;
            let mut dhs = vec![vec![0.0; top_h]; t_len];
            for (j, dv) in dhs[t_len - 1].iter_mut().enumerate() {
                let row = m.head_w.row(j);
                *dv = dlogits.iter().zip(row).map(|(a, b)| a * b).sum();
            }
            m.cells[0].backward_reference(&caches[0], &dhs, &mut dw[0], &mut db[0]);
        }

        // Numerical check on a handful of weights.
        let h = 1e-5;
        for &flat in &[0usize, 3, 7, 11] {
            let mut plus = model.clone();
            plus.cells[0].w.data_mut()[flat] += h;
            let mut minus = model.clone();
            minus.cells[0].w.data_mut()[flat] -= h;
            let num = (plus.mean_ce(&data, &idx) - minus.mean_ce(&data, &idx)) / (2.0 * h);
            let ana = dw[0].data()[flat];
            assert!(
                (num - ana).abs() < 1e-4,
                "weight {flat}: numerical {num} vs analytic {ana}"
            );
        }
    }
}
