//! Offline stand-in for `serde`.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal, API-compatible subset of serde: a
//! [`Serialize`]/[`Deserialize`] trait pair over an owned JSON-like
//! [`Value`] tree, plus derive macros (`serde_derive`) covering the
//! struct/enum shapes used in this repository (named structs with
//! `#[serde(default)]`, tuple/newtype structs, and enums with unit,
//! newtype, tuple, and struct variants).
//!
//! The data model is deliberately simple — everything serializes
//! through [`Value`] — which keeps the shim small while preserving the
//! call sites (`serde_json::to_string`, `from_str`, `json!`, …)
//! unchanged.

pub use serde_derive::{Deserialize, Serialize};

mod impls;
mod value;

pub use value::{Map, Value};

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }

    /// Type-mismatch error: `expected` for type `ty`, found `v`.
    pub fn ty(ty: &str, expected: &str, v: &Value) -> Error {
        Error(format!(
            "invalid type for {ty}: expected {expected}, found {}",
            v.kind()
        ))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Resolves a field absent from the input: `Option` (and anything else
/// that deserializes from `Null`) becomes its empty value, everything
/// else reports a missing-field error. Used by derived `Deserialize`
/// impls.
pub fn missing_field<T: Deserialize>(ty: &str, field: &str) -> Result<T, Error> {
    T::from_value(&Value::Null)
        .map_err(|_| Error::custom(format!("missing field `{field}` while deserializing {ty}")))
}

/// Wraps an externally-tagged enum variant payload: `{"Variant": inner}`.
/// Used by derived `Serialize` impls.
pub fn variant(name: &str, inner: Value) -> Value {
    let mut m = Map::new();
    m.insert(name.to_owned(), inner);
    Value::Object(m)
}

/// Unwraps an externally-tagged enum variant: a single-key object.
/// Used by derived `Deserialize` impls.
pub fn as_variant(v: &Value) -> Option<(&str, &Value)> {
    match v {
        Value::Object(m) if m.len() == 1 => m.iter().next().map(|(k, v)| (k.as_str(), v)),
        _ => None,
    }
}

/// Indexes into a serialized tuple-variant payload.
/// Used by derived `Deserialize` impls.
pub fn tuple_elem<'a>(ty: &str, v: &'a Value, i: usize) -> Result<&'a Value, Error> {
    match v {
        Value::Array(items) => items
            .get(i)
            .ok_or_else(|| Error::custom(format!("tuple index {i} out of range for {ty}"))),
        other => Err(Error::ty(ty, "array", other)),
    }
}
