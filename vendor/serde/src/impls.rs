//! `Serialize`/`Deserialize` implementations for primitives and std
//! containers.

use crate::{Deserialize, Error, Map, Serialize, Value};
use std::collections::{BTreeMap, HashMap, VecDeque};

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<$ty, Error> {
                match v {
                    Value::Num(n) => Ok(*n as $ty),
                    other => Err(Error::ty(stringify!($ty), "number", other)),
                }
            }
        }
    )*};
}

impl_float!(f64, f32);

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<$ty, Error> {
                // Reject fractional and out-of-range numbers instead
                // of silently truncating through an `as` cast (values
                // beyond 2^53 are limited by the f64-backed Value).
                match v {
                    Value::Num(n)
                        if n.fract() == 0.0
                            && *n >= <$ty>::MIN as f64
                            && *n <= <$ty>::MAX as f64 =>
                    {
                        Ok(*n as $ty)
                    }
                    other => Err(Error::ty(stringify!($ty), "integer", other)),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        v.as_bool().ok_or_else(|| Error::ty("bool", "boolean", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::ty("String", "string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, Error> {
        let s = v.as_str().ok_or_else(|| Error::ty("char", "string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], Error> {
        let items = v.as_array().ok_or_else(|| Error::ty("array", "array", v))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Result<Vec<T>, Error> = items.iter().map(T::from_value).collect();
        parsed?
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        let items = v.as_array().ok_or_else(|| Error::ty("Vec", "array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<VecDeque<T>, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::ty("VecDeque", "array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<(A, B), Error> {
        let items = v.as_array().ok_or_else(|| Error::ty("tuple", "array", v))?;
        if items.len() != 2 {
            return Err(Error::custom("expected a 2-element array"));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<(A, B, C), Error> {
        let items = v.as_array().ok_or_else(|| Error::ty("tuple", "array", v))?;
        if items.len() != 3 {
            return Err(Error::custom("expected a 3-element array"));
        }
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<String, V>, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::ty("BTreeMap", "object", v))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<HashMap<String, V>, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::ty("HashMap", "object", v))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<(), Error> {
        Ok(())
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}
