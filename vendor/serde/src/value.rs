//! The owned JSON-like value tree shared by `serde` and `serde_json`.

/// An insertion-ordered string-keyed map.
///
/// Keeps JSON output stable and human-diffable (struct fields appear in
/// declaration order). Equality is order-insensitive, matching
/// `serde_json`'s map semantics.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Map {
        Map {
            entries: Vec::new(),
        }
    }

    /// Inserts `key` (replacing any existing entry), returning the old
    /// value if present.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// `true` if `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl PartialEq for Map {
    fn eq(&self, other: &Map) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|ov| ov == v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON-like value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (stored as `f64`; integers up to 2^53 roundtrip
    /// exactly, ample for this workspace).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// A string-keyed object.
    Object(Map),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Object member lookup (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as `i64` when it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if any.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}
