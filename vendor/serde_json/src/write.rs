//! JSON text output (compact and pretty).

use serde::Value;
use std::fmt::Write as _;

/// Renders a value; `indent` of `Some(level)` pretty-prints with
/// two-space indentation, `None` is compact.
pub fn write(v: &Value, indent: Option<usize>) -> String {
    let mut out = String::new();
    emit(v, indent, &mut out);
    out
}

fn emit(v: &Value, indent: Option<usize>, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => emit_number(*n, out),
        Value::Str(s) => emit_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(indent.map(|l| l + 1), out);
                emit(item, indent.map(|l| l + 1), out);
            }
            newline(indent, out);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(indent.map(|l| l + 1), out);
                emit_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(item, indent.map(|l| l + 1), out);
            }
            newline(indent, out);
            out.push('}');
        }
    }
}

fn newline(indent: Option<usize>, out: &mut String) {
    if let Some(level) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str("  ");
        }
    }
}

fn emit_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // Real serde_json rejects these; emitting null keeps output valid.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
