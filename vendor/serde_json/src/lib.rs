//! Offline stand-in for `serde_json`.
//!
//! Serializes the serde shim's [`Value`] tree to JSON text and parses
//! JSON text back. Covers the API surface used in this workspace:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`Value`], and the [`json!`] macro.

pub use serde::{Error, Map, Value};

mod parse;
mod write;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::write(&value.to_value(), None))
}

/// Serializes to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::write(&value.to_value(), Some(0)))
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    T::from_value(&value)
}

/// Builds a [`Value`] with JSON-literal syntax, interpolating Rust
/// expressions in value position.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- array elements: @array [built elements] remaining tokens ----
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    (@array [$($elems:expr,)*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null,] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*]),] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($obj:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($obj)*}),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$next),] , $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$last),])
    };

    // ---- object members: @object map (remaining tokens) ----
    (@object $m:ident ()) => {};
    (@object $m:ident (, $($rest:tt)*)) => {
        $crate::json_internal!(@object $m ($($rest)*));
    };
    (@object $m:ident ($key:literal : null $($rest:tt)*)) => {
        $m.insert(::std::string::String::from($key), $crate::Value::Null);
        $crate::json_internal!(@object $m ($($rest)*));
    };
    (@object $m:ident ($key:literal : [$($arr:tt)*] $($rest:tt)*)) => {
        $m.insert(::std::string::String::from($key), $crate::json_internal!([$($arr)*]));
        $crate::json_internal!(@object $m ($($rest)*));
    };
    (@object $m:ident ($key:literal : {$($obj:tt)*} $($rest:tt)*)) => {
        $m.insert(::std::string::String::from($key), $crate::json_internal!({$($obj)*}));
        $crate::json_internal!(@object $m ($($rest)*));
    };
    (@object $m:ident ($key:literal : $value:expr , $($rest:tt)*)) => {
        $m.insert(::std::string::String::from($key), $crate::to_value(&$value));
        $crate::json_internal!(@object $m (, $($rest)*));
    };
    (@object $m:ident ($key:literal : $value:expr)) => {
        $m.insert(::std::string::String::from($key), $crate::to_value(&$value));
    };

    // ---- entry points ----
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut __object = $crate::Map::new();
        $crate::json_internal!(@object __object ($($tt)+));
        $crate::Value::Object(__object)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "rows": [
                {"name": "a", "f1": 0.5, "ok": true},
                {"name": "b", "f1": 1.0, "ok": false},
            ],
            "count": 2,
            "none": null,
        });
        assert_eq!(v.get("count").and_then(Value::as_u64), Some(2));
        let rows = v.get("rows").and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("f1").and_then(Value::as_f64), Some(0.5));
        assert!(v.get("none").unwrap().is_null());
    }

    #[test]
    fn roundtrip_via_text() {
        let v = json!({"a": [1, 2.5, "x"], "b": {"nested": true}});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
    }

    #[test]
    fn malformed_surrogate_escapes_are_errors_not_panics() {
        // High surrogate followed by a non-low-surrogate escape.
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err());
        // Unpaired low surrogate.
        assert!(from_str::<String>("\"\\udc00\"").is_err());
        // High surrogate followed by a plain character.
        assert!(from_str::<String>("\"\\ud83dx\"").is_err());
        // A valid pair still decodes.
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
    }

    #[test]
    fn integer_deserialization_rejects_fractional_and_out_of_range() {
        assert!(from_str::<u32>("-1").is_err());
        assert!(from_str::<u32>("3.7").is_err());
        assert!(from_str::<i8>("200").is_err());
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("3.7").unwrap(), 3.7);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = json!({"s": "line\nbreak \"quoted\" \\ tab\t unicode \u{1F600}"});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(to_string(&json!({"n": 8})).unwrap(), "{\"n\":8}");
        assert_eq!(to_string(&json!({"x": 2.5})).unwrap(), "{\"x\":2.5}");
    }
}
