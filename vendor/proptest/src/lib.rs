//! Offline stand-in for `proptest`.
//!
//! Supports the subset used by this workspace's property tests: the
//! `proptest!` macro over `arg in strategy` parameter lists, range and
//! `any::<T>()` strategies, `prop::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` macros. Cases are generated from
//! a fixed deterministic seed (no persistence, no shrinking): a failure
//! reports the concrete inputs so it can be reproduced by re-running
//! the same test binary.

use std::ops::Range;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// RNG for one case index.
    pub fn new(case: u64) -> TestRng {
        TestRng(0x5eed_5eed_5eed_5eed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values for one test parameter.
pub trait Strategy {
    /// Produced value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

impl_int_strategy!(usize, u8, u16, u32, u64, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Strategy for `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-range strategy for a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing a `Vec` with random length in `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` of `element` samples with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Drives the random cases for one property.
pub fn run_cases<F>(config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    for i in 0..u64::from(config.cases) {
        let mut rng = TestRng::new(i);
        if let Err(msg) = case(&mut rng) {
            panic!("property failed on case {i}: {msg}");
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, ProptestConfig,
        Strategy,
    };

    /// Mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests over random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            // The caller writes `#[test]` on each property (real
            // proptest's convention), so it arrives via `$meta` —
            // adding another here would double-register the test.
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(&($cfg), |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                    let __inputs = ::std::format!(
                        ::std::concat!($(::std::stringify!($arg), " = {:?}, ",)+),
                        $(&$arg),+
                    );
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), ::std::string::String> {
                                $body
                                Ok(())
                            },
                        ),
                    );
                    match __outcome {
                        Ok(Ok(())) => Ok(()),
                        Ok(Err(msg)) => Err(::std::format!("{msg}\n  inputs: {__inputs}")),
                        Err(panic) => {
                            let msg = panic
                                .downcast_ref::<&str>()
                                .map(|s| (*s).to_owned())
                                .or_else(|| panic.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "panic".to_owned());
                            Err(::std::format!("panicked: {msg}\n  inputs: {__inputs}"))
                        }
                    }
                });
            }
        )*
    };
}

/// Asserts a condition inside `proptest!`, reporting inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(::std::format!("assertion failed: {}", ::std::stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                ::std::stringify!($a), ::std::stringify!($b), __a, __b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), __a, __b
            ));
        }
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return Err(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                ::std::stringify!($a),
                ::std::stringify!($b),
                __a
            ));
        }
    }};
}
