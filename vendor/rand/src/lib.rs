//! Offline stand-in for `rand`.
//!
//! Provides the trait surface this workspace uses — [`RngCore`],
//! [`Rng::gen_range`] over half-open and inclusive ranges, and
//! [`seq::SliceRandom::shuffle`] — with deterministic, implementation-
//! defined streams. Numeric streams are *not* bit-compatible with the
//! real `rand` crate; every consumer in this workspace only relies on
//! per-seed determinism, which holds.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<R>(&mut self, range: R) -> R::Output
    where
        R: SampleRange,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Uniform `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform draw in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// Element type produced.
    type Output;

    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;

            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty sample range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }

        impl SampleRange for RangeInclusive<$ty> {
            type Output = $ty;

            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty sample range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $ty;
                }
                lo + (rng.next_u64() % (span + 1)) as $ty
            }
        }
    )*};
}

impl_int_range!(usize, u32, u64);

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling and selection.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 33) as u32
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut Counter(7));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }
}
