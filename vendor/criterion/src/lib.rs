//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness with criterion's macro and
//! builder surface (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`). Each
//! benchmark is warmed up once, then timed over `sample_size`
//! batches; median and min batch times are reported to stdout.
//! No plotting, no statistics beyond that — enough to compare hot
//! paths locally and in CI.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n## {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the group's sample size.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Ends the group (no-op; matches criterion's API).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`iter`](Bencher::iter) with
/// the code under test.
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time of the last `iter` call.
    median: Duration,
    minimum: Duration,
}

impl Bencher {
    /// Times `f`, recording per-iteration statistics.
    pub fn iter<F, R>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        // Warm-up and batch-size calibration: aim for batches of at
        // least ~1 ms so Instant overhead is negligible.
        let start = Instant::now();
        std_black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_batch {
                std_black_box(f());
            }
            samples.push(start.elapsed() / per_batch as u32);
        }
        samples.sort_unstable();
        self.median = samples[samples.len() / 2];
        self.minimum = samples[0];
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        median: Duration::ZERO,
        minimum: Duration::ZERO,
    };
    f(&mut bencher);
    println!(
        "{name:<40} median {:>12.3?}   min {:>12.3?}",
        bencher.median, bencher.minimum
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
