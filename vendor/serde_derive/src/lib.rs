//! Derive macros for the offline serde stand-in.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the input
//! `TokenStream` is walked directly and the generated impl is built as
//! a string, then re-parsed. Supports the shapes used in this
//! workspace:
//!
//! * named-field structs, with `#[serde(default)]` on fields (missing
//!   field → the field type's `Default`);
//! * container-level `#[serde(default)]` on named-field structs
//!   (missing fields → the corresponding field of
//!   `<Self as Default>::default()`, real serde's semantics — used by
//!   forward-compatible hyperparameter/model files such as
//!   `aps_ml::forecast::ForecastConfig`);
//! * tuple structs (newtype structs serialize transparently);
//! * unit structs;
//! * enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, like real serde's default representation).
//!
//! Generics are not supported — no serialized type in this workspace
//! needs them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    has_default: bool,
}

enum Shape {
    /// Named fields; the flag records a container-level
    /// `#[serde(default)]` (missing fields fall back to the matching
    /// field of `Self::default()`).
    Named(Vec<Field>, bool),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => generate(&name, &shape, mode).parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Splits attribute groups off the front of a token list, returning
/// whether any was `#[serde(default)]`.
fn take_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut has_default = false;
    while i + 1 < tokens.len() {
        let (TokenTree::Punct(p), TokenTree::Group(g)) = (&tokens[i], &tokens[i + 1]) else {
            break;
        };
        if p.as_char() != '#' || g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for t in args.stream() {
                        if let TokenTree::Ident(a) = t {
                            if a.to_string() == "default" {
                                has_default = true;
                            }
                        }
                    }
                }
            }
        }
        i += 2;
    }
    (i, has_default)
}

/// Skips a `pub` / `pub(...)` visibility prefix.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Counts top-level comma-separated items in a token group, respecting
/// `<...>` nesting in types (groups are already atomic tokens).
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut any = false;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    fields += 1;
                    any = false;
                    continue;
                }
                _ => {}
            }
        }
        any = true;
    }
    fields + usize::from(any)
}

/// Parses the named fields of a brace group.
fn parse_named_fields(group: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, has_default) = take_attrs(&tokens, i);
        i = skip_vis(&tokens, ni);
        let TokenTree::Ident(name) = &tokens[i] else {
            return Err(format!(
                "expected field name, found {:?}",
                tokens[i].to_string()
            ));
        };
        fields.push(Field {
            name: name.to_string(),
            has_default,
        });
        i += 1;
        // Expect ':', then skip the type up to a top-level comma.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':', found {:?}", other.to_string())),
        }
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    Ok(fields)
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, _) = take_attrs(&tokens, i);
        i = ni;
        let TokenTree::Ident(name) = &tokens[i] else {
            return Err(format!(
                "expected variant name, found {:?}",
                tokens[i].to_string()
            ));
        };
        let name = name.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantShape::Tuple(count_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip an optional discriminant and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    Ok(variants)
}

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (i, container_default) = take_attrs(&tokens, 0);
    let mut i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => {
            return Err(format!(
                "expected struct/enum, found {:?}",
                other.to_string()
            ))
        }
    };
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        return Err("expected type name".to_owned());
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generics (type {name})"
            ));
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok((
                name,
                Shape::Named(parse_named_fields(g.stream())?, container_default),
            )),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok((name, Shape::Tuple(count_tuple_fields(&inner))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::Unit)),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for {other}")),
    }
}

fn generate(name: &str, shape: &Shape, mode: Mode) -> String {
    match mode {
        Mode::Serialize => gen_serialize(name, shape),
        Mode::Deserialize => gen_deserialize(name, shape),
    }
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields, _) => {
            let mut s = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.insert(::std::string::String::from({n:?}), \
                     ::serde::Serialize::to_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            s.push_str("::serde::Value::Object(__m)");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_owned(),
        Shape::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in &variants[..] {
                match &v.shape {
                    VariantShape::Unit => s.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(1) => s.push_str(&format!(
                        "{name}::{v}(__f0) => \
                         ::serde::variant({v:?}, ::serde::Serialize::to_value(__f0)),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        s.push_str(&format!(
                            "{name}::{v}({b}) => ::serde::variant({v:?}, \
                             ::serde::Value::Array(::std::vec![{e}])),\n",
                            v = v.name,
                            b = binds.join(", "),
                            e = elems.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from("let mut __m = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__m.insert(::std::string::String::from({n:?}), \
                                 ::serde::Serialize::to_value({n}));\n",
                                n = f.name
                            ));
                        }
                        inner.push_str("::serde::Value::Object(__m)");
                        s.push_str(&format!(
                            "{name}::{v} {{ {b} }} => ::serde::variant({v:?}, {{ {inner} }}),\n",
                            v = v.name,
                            b = binds.join(", ")
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

/// Field initializers for a named-field body. With `container_default`
/// the caller must have bound `__default` to `Self::default()`; missing
/// fields then take their value from it (real serde's container-level
/// `#[serde(default)]` semantics).
fn named_field_init(ty: &str, fields: &[Field], source: &str, container_default: bool) -> String {
    let mut s = String::new();
    for f in fields {
        let fallback = if container_default {
            format!("__default.{n}", n = f.name)
        } else if f.has_default {
            "::core::default::Default::default()".to_owned()
        } else {
            format!("::serde::missing_field({ty:?}, {n:?})?", n = f.name)
        };
        s.push_str(&format!(
            "{n}: match {source}.get({n:?}) {{\n\
             Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
             None => {fallback},\n}},\n",
            n = f.name
        ));
    }
    s
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields, container_default) => {
            let bind_default = if *container_default {
                format!("let __default = <{name} as ::core::default::Default>::default();\n")
            } else {
                String::new()
            };
            format!(
                "let __obj = __v.as_object()\
                 .ok_or_else(|| ::serde::Error::ty({name:?}, \"object\", __v))?;\n\
                 {bind_default}\
                 ::core::result::Result::Ok({name} {{\n{init}}})",
                init = named_field_init(name, fields, "__obj", *container_default)
            )
        }
        Shape::Tuple(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(\
                         ::serde::tuple_elem({name:?}, __v, {i})?)?"
                    )
                })
                .collect();
            format!("::core::result::Result::Ok({name}({}))", elems.join(", "))
        }
        Shape::Unit => format!("::core::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut s = String::from("if let ::serde::Value::Str(__s) = __v {\n");
            s.push_str("match __s.as_str() {\n");
            for v in variants {
                if matches!(v.shape, VariantShape::Unit) {
                    s.push_str(&format!(
                        "{v:?} => return ::core::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    ));
                }
            }
            s.push_str("_ => {}\n}\n}\n");
            s.push_str("if let Some((__k, __inner)) = ::serde::as_variant(__v) {\n");
            s.push_str("match __k {\n");
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => {}
                    VariantShape::Tuple(1) => s.push_str(&format!(
                        "{v:?} => return ::core::result::Result::Ok(\
                         {name}::{v}(::serde::Deserialize::from_value(__inner)?)),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(\
                                     ::serde::tuple_elem({name:?}, __inner, {i})?)?"
                                )
                            })
                            .collect();
                        s.push_str(&format!(
                            "{v:?} => return ::core::result::Result::Ok(\
                             {name}::{v}({e})),\n",
                            v = v.name,
                            e = elems.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        s.push_str(&format!(
                            "{v:?} => {{\n\
                             let __obj = __inner.as_object()\
                             .ok_or_else(|| ::serde::Error::ty({name:?}, \"object\", __inner))?;\n\
                             return ::core::result::Result::Ok({name}::{v} {{\n{init}}});\n}},\n",
                            v = v.name,
                            init = named_field_init(name, fields, "__obj", false)
                        ));
                    }
                }
            }
            s.push_str("_ => {}\n}\n}\n");
            s.push_str(&format!(
                "::core::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant for {name}: {{:?}}\", __v)))"
            ));
            s
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::core::result::Result<{name}, ::serde::Error> {{\n{body}\n}}\n}}"
    )
}
