//! Offline stand-in for `rand_chacha`.
//!
//! Implements the genuine ChaCha8 block function (IETF variant, 8
//! rounds) as a keystream RNG. Streams are deterministic per seed but
//! not bit-compatible with the real `rand_chacha` crate — nothing in
//! this workspace depends on cross-crate bit compatibility, only on
//! per-seed reproducibility.

use rand::RngCore;

/// Re-export module mirroring `rand_chacha::rand_core`.
pub mod rand_core {
    pub use rand::RngCore;

    /// Seedable RNG construction.
    pub trait SeedableRng: Sized {
        /// Seed byte array.
        type Seed;

        /// Constructs from a full seed.
        fn from_seed(seed: Self::Seed) -> Self;

        /// Expands a `u64` into a full seed with SplitMix64 (the same
        /// scheme real `rand_core` uses).
        fn seed_from_u64(state: u64) -> Self;
    }
}

const ROUNDS: usize = 8;

/// ChaCha with 8 rounds, keyed from a 256-bit seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce state template (constants re-added per
    /// block).
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 = exhausted.
    index: usize,
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants.
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buffer.iter_mut().zip(state.iter().zip(initial.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

impl rand_core::SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }

    fn seed_from_u64(mut state: u64) -> ChaCha8Rng {
        // SplitMix64 expansion.
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        <ChaCha8Rng as rand_core::SeedableRng>::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rand_core::SeedableRng;
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = ChaCha8Rng::seed_from_u64(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn uniformity_sanity() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
