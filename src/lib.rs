//! # APS Safety Monitor — facade crate
//!
//! Reproduction of *"Data-driven Design of Context-aware Monitors for
//! Hazard Prediction in Artificial Pancreas Systems"* (Zhou et al.,
//! DSN 2021). This crate re-exports the whole workspace so examples,
//! integration tests, and downstream users can depend on one crate:
//!
//! | module | contents |
//! |--------|----------|
//! | [`types`] | shared domain types (glucose, insulin, traces) |
//! | [`glucose`] | patient simulators (Bergman/GIM, Dalla Man), CGM, pump, IOB |
//! | [`controllers`] | oref0-style and basal–bolus controllers |
//! | [`stl`] | signal temporal logic engine |
//! | [`optim`] | L-BFGS-B and tightness losses (TMEE/TeLEx/MSE/MAE) |
//! | [`ml`] | from-scratch DT / MLP / LSTM baselines |
//! | [`fault`] | fault-injection engine |
//! | [`detect`] | sensor-stream change detectors (SPRT, CUSUM, EWMA) |
//! | [`risk`] | BG risk index and hazard labeling |
//! | [`metrics`] | tolerance-window metrics, TTH, reaction time, risk |
//! | [`core`] | **the contribution**: SCS, threshold learning, monitors, mitigation |
//! | [`tracestore`] | versioned columnar binary trace store (streaming writer, zero-copy reader) |
//! | [`sim`] | sessions, closed-loop harness, platforms, campaigns, datasets |
//! | [`service`] | campaign-as-a-service daemon: sharded resumable jobs, content-addressed result cache |
//!
//! # Quickstart
//!
//! Runs are *composed*:
//! [`Session::builder`](sim::session::Session::builder) assembles one
//! closed-loop simulation fluently, and any number of `.monitor(..)` /
//! `.monitor_spec(..)` calls attach hazard monitors that all score the
//! **same single physics pass** (each gets its own alert stream in
//! [`SimTrace::monitor_tracks`](types::SimTrace::monitor_tracks)):
//!
//! ```
//! use aps_repro::prelude::*;
//!
//! // One insulin-overdose attack, scored by the context-aware monitor
//! // and the online risk-index ground truth simultaneously.
//! let trace = Session::builder(Platform::GlucosymOref0)
//!     .patient(0)
//!     .monitor_spec(MonitorSpec::Cawot)
//!     .monitor_spec(MonitorSpec::RiskIndex)
//!     .inject(FaultScenario::new("rate", FaultKind::Max, Step(20), 36))
//!     .run()
//!     .expect("valid session");
//! assert_eq!(trace.len(), 150);
//! assert_eq!(trace.monitor_tracks.len(), 2);
//! assert!(trace.track("cawot").unwrap().first_alert().is_some());
//! ```
//!
//! Sessions also exist *as data*: a serde
//! [`SessionSpec`](sim::session::SessionSpec) (platform, patient,
//! monitors, fault, loop config) builds the same run from JSON —
//! `repro run --spec examples/session_spec.json` — and the builder
//! validates the fault target against the controller's injectable
//! surface at build time.
//!
//! ## Legacy entry point
//!
//! The original positional API,
//! [`closed_loop::run`](sim::closed_loop::run)`(patient, controller,
//! Option<monitor>, Option<injector>, &config)`, is retained as a
//! documented thin wrapper over the same engine and produces
//! bit-identical traces (pinned by `tests/session_equivalence.rs`).
//! It is frozen, not deprecated: new capabilities — monitor banks,
//! per-step observers, spec files, target validation — land only on
//! [`Session`](sim::session::Session).
//!
//! # Performance
//!
//! Fault-injection campaigns are the workload that matters: a paper-
//! scale run is thousands of closed-loop simulations, each stepping a
//! patient ODE and a monitor 150 times. The campaign hot path is
//! engineered accordingly:
//!
//! * **Batched lockstep stepping (SoA lanes)** — the campaign inner
//!   loop ([`sim::batch::run_campaign_batched`]) claims *blocks* of
//!   [`sim::batch::BATCH_LANES`] = 8 scenario jobs and steps them in
//!   lockstep through structure-of-arrays compartment banks
//!   (`BatchedBergman` / `BatchedDallaMan`: one `[f64; LANES]` row per
//!   ODE compartment) integrated by a single
//!   [`glucose::ode::BatchedRk4Scratch`] pass whose stage math is
//!   per-lane loops over flat arrays. Three properties make the lanes
//!   autovectorize *and* stay bit-identical to the scalar engine:
//!   (1) lanes are arithmetically independent — no horizontal
//!   reductions, so lane `l` of a batch op is exactly the scalar op on
//!   lane `l`'s data; (2) every per-lane expression mirrors its scalar
//!   counterpart expression for expression, and IEEE-754 `f64`
//!   arithmetic is deterministic per operation (rustc neither
//!   reassociates nor contracts `a * b + c` into FMA, even with AVX2
//!   enabled via `.cargo/config.toml`'s `target-cpu=x86-64-v3`); (3)
//!   sensor, pump, and controller per-cycle updates have batched
//!   bank variants that loop the identical scalar update per lane.
//!   8 lanes = two AVX2 (or one AVX-512) f64 vectors per compartment
//!   row — wide enough to saturate 256-bit units, small enough that a
//!   ragged final block wastes at most 7 lanes. Bit-identity against
//!   [`sim::campaign::run_campaign_serial`] across both patient
//!   models, the full fault alphabet, and ragged tails is pinned by
//!   `tests/batched_equivalence.rs`; a lane that diverges to NaN
//!   free-runs harmlessly (non-finite is absorbing under RK4) and
//!   surfaces as that job's typed `NonFinite` error without poisoning
//!   its lane-mates.
//! * **Allocation-free integration** — the patient models integrate
//!   with a const-generic stack scratch
//!   ([`glucose::ode::Rk4Scratch`]); no heap allocation occurs inside
//!   the per-step RK4 loop, and the batched banks reuse one
//!   [`glucose::ode::BatchedRk4Scratch`] across steps. The slice-based
//!   `rk4_step`/`integrate` API survives as thin wrappers with
//!   bit-identical results (see `tests/perf_equivalence.rs`).
//! * **O(1) IOB reads, O(window) only on record** — the
//!   insulin-on-board estimator stores deliveries as (birth-cycle,
//!   amount) pairs: ages are integer cycle counts that index a
//!   memoized activity table directly (no per-entry float division or
//!   `exp`), aging is a counter bump instead of a per-entry pass, and
//!   the basal-equilibrium integral behind
//!   [`glucose::iob::IobEstimator::set_basal_baseline`] is cached
//!   process-wide per curve (it used to dominate controller
//!   construction at ~500 `exp` calls per job).
//! * **Lock-free streaming campaign executor** —
//!   [`sim::campaign::run_campaign_with`] claims jobs from an atomic
//!   counter and drains workers through an ordered reorder buffer
//!   into a caller-supplied sink, so paper-scale sweeps run in
//!   bounded memory; [`sim::campaign::run_campaign`] is the
//!   collecting wrapper, defined to equal
//!   [`sim::campaign::run_campaign_serial`], and
//!   [`sim::campaign::CampaignStream`] is the pull-based lazy
//!   counterpart. Offline monitor replay
//!   ([`sim::replay::replay_campaign`]) parallelizes the same way.
//! * **Monitor banks** — a [`core::monitors::MonitorBank`] steps N
//!   monitors against one physics pass (alert streams recorded per
//!   member in the trace), so scoring a zoo of M monitors live costs
//!   1×physics + M×monitor instead of M×physics. The `repro zoo`
//!   report asserts the step count and measures every monitor's
//!   reaction time, including the `RiskIndexMonitor` latency floor.
//! * **Streaming O(n) hazard labeling** — [`risk::label_series`] rides
//!   the incremental [`risk::RiskTracker`] (O(1) rolling LBGI/HBGI per
//!   sample) instead of recomputing every trailing window
//!   (O(n·window)); labels are pinned bit-identical to the retained
//!   reference implementation (`tests/risk_equivalence.rs`). The same
//!   tracker powers the online
//!   [`core::monitors::RiskIndexMonitor`], so hazard awareness exists
//!   *during* a run, not only post hoc.
//! * **Array-backed controller state** — both controllers (oref0 at
//!   PR 1, basal–bolus at PR 2) use `Copy` profiles and fixed-slot
//!   variable arrays; no `HashMap` lookups or profile clones in
//!   `decide`.
//!
//! The measured baseline lives in `BENCH_campaign.json` (quick
//! campaign: 62 runs × 150 steps, one core; seed-faithful hot path vs
//! current — ≈3.4× at PR 1, ≈4.8× at PR 2, and at PR 8 ≈10× for the
//! scalar path and ≈15.3× for the batched engine, i.e. batched ≈1.55×
//! over the optimized scalar path). The report also records a
//! workers-scaling sweep (scalar and batched throughput at 1/2/4/…
//! pinned workers). Regenerate it with:
//!
//! ```text
//! cargo run --release -p aps-bench --bin repro -- \
//!     bench-campaign --sweep-workers
//! ```
//!
//! CI re-measures this every run and **fails below 80% of the
//! committed scalar *or* batched speedup** (`bench-campaign
//! --sweep-workers --guard <committed.json>`). Compare executors and
//! steppers microscopically with:
//!
//! ```text
//! cargo bench -p aps-bench --bench campaign_throughput
//! cargo bench -p aps-bench --bench batched_stepper
//! ```
//!
//! # Failure semantics
//!
//! Campaigns are expected to survive their own failures — the same
//! philosophy the paper applies to the APS control loop, applied to
//! the harness itself. The hardened executor
//! ([`sim::campaign::run_campaign_resumable`] and its collecting
//! wrapper [`sim::campaign::run_campaign_ft`]) guarantees:
//!
//! * **Isolation** — every job runs behind `catch_unwind` with its
//!   fault spec validated first ([`fault::FaultScenario::validate`])
//!   and its ODE state checked for finiteness after every control
//!   cycle ([`glucose::PatientSim::state_is_finite`]; the RK4 stepper
//!   itself rejects non-finite states via
//!   [`glucose::ode::Rk4Scratch::try_integrate`]). A panic, a
//!   diverging model, an invalid spec, or a per-job deadline overrun
//!   becomes a typed [`sim::outcome::SimError`], never a torn-down
//!   executor or a silently poisoned trace.
//! * **Retry with bounded backoff** — failed jobs re-run up to
//!   [`sim::outcome::RetryPolicy::max_attempts`] times with
//!   exponential, capped [`sim::outcome::Backoff`]; deterministic
//!   emission order is preserved throughout.
//! * **Graceful degradation** — whatever still fails lands as a
//!   [`sim::outcome::JobOutcome::Failed`] entry (error + attempt
//!   count) in the machine-readable
//!   [`sim::outcome::ErrorLedger`] of the final
//!   [`sim::campaign::CampaignReport`]; every other job's trace is
//!   delivered normally.
//! * **Checkpoint/resume** — with a
//!   [`sim::campaign::CheckpointPolicy`], a versioned
//!   [`sim::checkpoint::CampaignCheckpoint`] (format version
//!   [`sim::checkpoint::CHECKPOINT_VERSION`]: spec hash, chaos seed,
//!   completed-job bitmap, ledger, aggregate partials with a rolling
//!   trace digest) is written atomically every N completed jobs.
//!   Resuming from a snapshot skips completed jobs and is
//!   **bit-identical** to the uninterrupted run — same emissions,
//!   same ledger, same digest — pinned by the kill-at-every-
//!   checkpoint test in `tests/campaign_ft.rs`. A snapshot from a
//!   different spec, chaos seed, or format version is rejected with a
//!   typed [`sim::checkpoint::CheckpointError`].
//! * **Deterministic chaos** — [`sim::chaos::ChaosConfig`] injects
//!   seeded worker panics, delays, and poisoned specs *into the
//!   executor only* (never the physics): same seed ⇒ byte-identical
//!   ledger, regardless of thread interleaving.
//!
//! Worker counts resolve explicitly (`--workers` flag /
//! [`sim::campaign::CampaignOptions::workers`], then the
//! `APS_WORKERS` environment variable, then detected parallelism,
//! clamped to [`sim::campaign::MAX_WORKERS`]) and the chosen source
//! is surfaced in the report ([`sim::campaign::WorkerSource`]) so a
//! silent fallback to one worker is visible.
//!
//! ```
//! use aps_repro::prelude::*;
//!
//! let spec = CampaignSpec {
//!     patient_indices: vec![0],
//!     steps: 40,
//!     ..CampaignSpec::quick(Platform::GlucosymOref0)
//! };
//! let dir = std::env::temp_dir();
//! let options = CampaignOptions {
//!     retry: RetryPolicy { max_attempts: 2, ..RetryPolicy::default() },
//!     checkpoint: Some(CheckpointPolicy {
//!         path: dir.join("campaign_ckpt.json"),
//!         every_jobs: 10,
//!     }),
//!     ..CampaignOptions::default()
//! };
//! // First run: snapshots every 10 jobs (kill it at any point…)
//! let ft = run_campaign_ft(&spec, None, &options).expect("checkpoint dir writable");
//! assert!(ft.report.ledger.is_empty());
//! // …later: resume from the snapshot; completed jobs are skipped and
//! // the final report is bit-identical to an uninterrupted run.
//! let snapshot = CampaignCheckpoint::load(&dir.join("campaign_ckpt.json")).unwrap();
//! let resumed = run_campaign_resumable(&spec, None, &options, Some(&snapshot), |_i, _outcome| {})
//!     .expect("snapshot matches this spec");
//! assert_eq!(resumed.digest, ft.report.digest);
//! assert_eq!(resumed.skipped_resumed, resumed.total_jobs);
//! ```
//!
//! The same machinery drives `repro bench-campaign --chaos-seed N
//! --retry 2 --checkpoint ck.json --resume ck.json` (see
//! `examples/resumable_campaign.rs`).
//!
//! # Prediction
//!
//! The reproduction's *learned predictive* arm forecasts BG ahead of
//! time instead of classifying the current cycle:
//!
//! * **Data layer** — [`ml::data::TraceDataset`] streams a
//!   fault-injection campaign (as a `run_campaign_with` sink, bounded
//!   memory) into sequence-regression windows of per-cycle
//!   `[CGM BG, commanded insulin]` features with a BG-at-horizon
//!   target at **every** timestep; retained pairs are reservoir-capped
//!   deterministically under a fixed seed.
//! * **Training layer** — `repro train` fits the streaming
//!   [`ml::forecast::LstmForecaster`] plus the
//!   [`ml::forecast::MlpForecaster`] baseline and reports held-out
//!   RMSE against the persistence baseline (quick scale: LSTM ≈2.0
//!   mg/dL per cycle vs persistence ≈6.6 at a 60-min horizon). LSTM
//!   training runs through reusable scratch buffers
//!   ([`ml::lstm::LstmTrainer`], [`ml::forecast::ForecastTrainer`]):
//!   **zero heap allocations per timestep** in steady state, pinned by
//!   a counting allocator in `tests/lstm_alloc.rs`, and bit-identical
//!   to the retained allocating reference (`Lstm::fit_reference`,
//!   `tests/lstm_equivalence.rs`). The trained bundle
//!   ([`ml::forecast::ForecastModel`]) serializes to
//!   `results/forecast_model.json` — weights are never opaque, the
//!   command reproduces them bit-for-bit.
//! * **Online layer** — [`core::monitors::ForecastMonitor`] steps the
//!   trained network incrementally each control cycle (carried hidden
//!   state, O(1) and allocation-free per sample; stepping equals a
//!   batch forward pass over the same prefix, see
//!   `tests/forecast_pipeline.rs`) and alerts when the predicted
//!   horizon BG crosses the hazard band obtained by inverting the
//!   labeler's LBGI/HBGI thresholds through the Kovatchev risk
//!   transform. Attach it via the zoo (`repro zoo`), the builder, or
//!   as data: `{"Forecast": {"path": "results/forecast_model.json"}}`
//!   in a [`sim::session::SessionSpec`].
//!
//! Quick-scale zoo measurement (62 scenarios, 60-min horizon): the
//! Forecast row reacts at **+5 min** mean (alerts ~5 min *before*
//! labeled onset, EDR 33%) — 62 min ahead of the online risk-index
//! floor (−57 min) that any predictive monitor must beat, though still
//! behind the rule-based CAWOT/CAWT (+65 min, EDR 100%) whose
//! context rules fire on the unsafe *action* rather than its
//! consequence.
//!
//! # Trace storage
//!
//! Specs and reports round-trip through JSON; bulk trace corpora do
//! not. A cohort-scale campaign (~10⁸ step records) pays full-text
//! deserialization and per-record allocation on every replay or
//! training pass if it lives in JSONL. The
//! [`tracestore`] crate stores a corpus in a
//! versioned little-endian **columnar** binary file instead:
//!
//! ```text
//! header (32 B):  "APSTRACE" | version | flags | code hash | spec hash
//! per trace:      n_records | step deltas (zigzag varint)
//!                 | bg | bg_true | iob | commanded | delivered  (f64 cols)
//!                 | action u8 | fault bitset | hazard u8 | alert u8
//!                 | TraceMeta side table | AlertTrack side table
//! footer:         per-trace offsets | index offset | count | "APSTREND"
//! ```
//!
//! * **Writing is streaming** — [`tracestore::FileTraceWriter`]
//!   is a `run_campaign_with`
//!   sink (`repro bench-campaign --store F` emits the store directly);
//!   finalize is an atomic temp-file rename, so the destination is
//!   never torn.
//! * **Reading is zero-copy** — [`tracestore::TraceStoreReader`]
//!   validates the whole file
//!   once at open; after that, record iteration and column reads
//!   decode straight off the single mapped buffer with no per-record
//!   allocation. Owned [`SimTrace`](types::SimTrace)s materialize only
//!   on demand, and are **bit-identical** to the JSONL path (exact
//!   `f64` bits; pinned by proptest in
//!   `tests/tracestore_roundtrip.rs`).
//! * **Wired through the stack** —
//!   [`sim::replay::replay_store_with`] replays monitors straight out
//!   of a store, [`sim::dataset::push_store_traces`] streams forecast
//!   windows off the `bg`/`commanded` columns into a
//!   [`ml::data::TraceDataset`] (bit-identical to the JSONL path), and
//!   `repro convert` moves corpora between formats with a measured
//!   `--verify` round trip (size ratio, read speedup, bit-identity →
//!   `results/convert_verify.json`).
//! * **Versioned both ways** — a file from a *newer* format is
//!   rejected with the typed [`tracestore::StoreError::Version`];
//!   side tables are
//!   length-prefixed, so a v1 reader defaults fields an older writer
//!   omitted and ignores additions from a newer one.
//!
//! ```
//! use aps_repro::prelude::*;
//! use aps_repro::tracestore::{write_store, TraceStoreReader};
//!
//! // Record a tiny campaign, store it, and read it back bit-identical.
//! let spec = CampaignSpec {
//!     patient_indices: vec![0],
//!     initial_bgs: vec![120.0],
//!     steps: 30,
//!     ..CampaignSpec::quick(Platform::GlucosymOref0)
//! };
//! let traces = run_campaign(&spec, None);
//! let bytes = write_store(&traces, 0).expect("encode");
//! let reader = TraceStoreReader::from_bytes(bytes).expect("validate");
//! assert_eq!(reader.len(), traces.len());
//! assert_eq!(reader.read_all(), traces);
//!
//! // Columns stream without materializing traces.
//! let mut bg = Vec::new();
//! reader.view(0).copy_f64_column(aps_repro::tracestore::F64Column::Bg, &mut bg);
//! assert_eq!(bg.len(), traces[0].len());
//! ```
//!
//! # Static analysis
//!
//! The invariants above are guarded dynamically — counting-allocator
//! tests, bit-identity replays, proptests — but dynamic guards only
//! fire on the paths a test happens to drive. `repro lint` (crate
//! `aps-lint`, zero dependencies, hand-rolled lexer + item scanner —
//! no `syn`) re-checks five of them *statically* on every push, over
//! the whole workspace, in well under a second:
//!
//! | id       | invariant                                                        |
//! |----------|------------------------------------------------------------------|
//! | `alloc`  | functions registered in `lint.toml` `[deny_alloc]` never allocate |
//! | `nan`    | NaN-masking float ops (`f64::max/min`, `.clamp()`, `partial_cmp().unwrap()`) only in finite-guarded scopes |
//! | `det`    | no wall clock / OS entropy / hash-order iteration in checkpointed modules |
//! | `serde`  | round-tripping containers carry container-level `#[serde(default)]` or a version field; `u64` fields hex-encoded or `// lint: hex-exempt(reason)` |
//! | `sound`  | every atomic `Ordering` / `unsafe` in the lock-free executor has an adjacent `// sound:` justification |
//! | `unwrap` | library-code `.unwrap()`/`.expect()` in audited trees only ratchets down |
//!
//! Findings are diffed against the committed `lint.baseline`
//! (a multiset keyed on rule/file/scope — line numbers excluded so
//! moving code doesn't churn it). `repro lint --deny-new` fails
//! exactly when a violation is *not* covered by the baseline; that is
//! the CI gate. `repro lint --write-baseline` regenerates the file
//! and **refuses to grow it** — new debt is either fixed or added by
//! hand in review, where the diff is visible.
//!
//! Registering a new hot function is one line in `lint.toml`
//! (`[deny_alloc] functions`); the analyzer has no call graph, so
//! register the concrete inner functions, not their callers. Config
//! entries that no longer match anything are themselves violations
//! (`registered-*-not-found`) — a rename cannot silently drop
//! protection. Known-good/known-bad fixtures for every rule family
//! live in `crates/lint/tests/fixtures/`.
//!
//! # Campaign service
//!
//! Everything above runs a campaign *inside one process*. The
//! [`service`] crate turns that into a single-node service: a daemon
//! (`repro serve`) owns a job queue, an executor, and a result cache,
//! and clients (`repro submit` / `status` / `fetch` / `cancel`, or
//! [`service::Client`] in-process) talk to it over a Unix socket.
//! The existing serde specs are the currency — a submission is a
//! [`CampaignSpec`](sim::campaign::CampaignSpec), a result is a
//! [`tracestore`] file — no new schema.
//!
//! **Wire protocol.** Frames are 4-byte little-endian length prefix +
//! UTF-8 JSON, capped at [`service::MAX_FRAME`] (the length check
//! fires before any allocation). The JSON is a versioned envelope,
//! `{"version": 1, "request": {...}}`; the version is probed before
//! the payload is decoded, so a frame from a newer protocol yields
//! the typed [`service::WireError::Version`] — never a parse error,
//! never a panic, never a hang (pinned by proptest over arbitrary,
//! truncated, oversized, and future-version frames in
//! `crates/service/tests/wire_proptest.rs`).
//!
//! **Shards and resume.** The scheduler splits each submission's
//! scenario grid into contiguous shards with
//! [`sim::shard::plan_shards`] — splits land on patient (or
//! per-patient BG) boundaries, so the shard job lists concatenate to
//! the parent campaign's exactly. Each shard runs through the same
//! [`run_campaign_resumable`](sim::campaign::run_campaign_resumable)
//! used by `--checkpoint`/`--resume`, persisting the versioned
//! [`CampaignCheckpoint`](sim::checkpoint::CampaignCheckpoint) plus an
//! append-only shard log (the sink fires *before* the checkpoint is
//! saved, so the log can only run ahead of the bitmap — on restart the
//! log is truncated back to the checkpoint, never the reverse). The
//! shard is the unit of resume: a SIGKILLed daemon restarts, re-queues
//! every incomplete job, resumes each shard from its checkpoint, and
//! the merged result set — traces *and* the order-sensitive campaign
//! digest — is bit-identical to an uninterrupted serial run (pinned
//! end-to-end in `crates/service/tests/daemon_e2e.rs` and by the CI
//! `service-smoke` job, which kills a live daemon with SIGKILL).
//!
//! **Content-addressed cache.** A finished job's merged traces are
//! published to `cache/<key>.apst` where
//! `key = `[`service::cache_key`]`(spec_hash, seed, code_version_hash)`
//! — the same three hashes the tracestore header already carries.
//! Identical resubmissions (same spec, same seed lane, same code
//! version) are served with **zero** executor work, even by a fresh
//! daemon that never ran the job; changing any of the three misses.
//! Publication is concurrency-safe: writers finalize to a unique temp
//! name and skip if the destination already exists (first writer
//! wins; the content address makes both writers' bytes equivalent).
//!
//! ```
//! use aps_repro::prelude::*;
//! use aps_repro::service::cache_key;
//! use aps_repro::service::wire::{decode_request, encode_request, Request};
//!
//! // Shards partition the campaign grid exactly.
//! let spec = CampaignSpec::quick(Platform::GlucosymOref0);
//! let shards = plan_shards(&spec, 3);
//! assert_eq!(
//!     shards.iter().map(|s| s.job_count).sum::<usize>(),
//!     campaign_size(&spec),
//! );
//!
//! // Requests round-trip through the versioned wire envelope.
//! let request = Request::Status { job: String::new() };
//! let payload = encode_request(&request).expect("encode");
//! assert_eq!(decode_request(&payload).expect("decode"), request);
//!
//! // The content address is sensitive to each of its three inputs.
//! let key = cache_key(1, 2, 3);
//! assert_ne!(key, cache_key(9, 2, 3));
//! assert_ne!(key, cache_key(1, 9, 3));
//! assert_ne!(key, cache_key(1, 2, 9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aps_controllers as controllers;
pub use aps_core as core;
pub use aps_detect as detect;
pub use aps_fault as fault;
pub use aps_glucose as glucose;
pub use aps_metrics as metrics;
pub use aps_ml as ml;
pub use aps_optim as optim;
pub use aps_risk as risk;
pub use aps_service as service;
pub use aps_sim as sim;
pub use aps_stl as stl;
pub use aps_tracestore as tracestore;
pub use aps_types as types;

/// The most commonly used items, for `use aps_repro::prelude::*`.
pub mod prelude {
    pub use aps_controllers::Controller;
    pub use aps_core::context::{ContextBuilder, ContextVector};
    pub use aps_core::hms::{ContextMitigator, ContextMitigatorConfig, Hms, TsLearnConfig};
    pub use aps_core::learning::{learn_thresholds, LearnConfig};
    pub use aps_core::mitigation::Mitigator;
    pub use aps_core::monitors::MonitorBank;
    pub use aps_core::monitors::{
        CawMonitor, ForecastBand, ForecastMonitor, GuidelineMonitor, HazardMonitor, LstmMonitor,
        MlMonitor, MonitorInput, MpcMonitor, NullMonitor, RiskIndexMonitor, StlCawMonitor,
    };
    pub use aps_core::scs::Scs;
    pub use aps_detect::{CgmGuard, ChangeDetector, Cusum, Decision, Ewma, Sprt};
    pub use aps_fault::{FaultInjector, FaultKind, FaultScenario};
    pub use aps_glucose::{BoxedPatient, PatientSim};
    pub use aps_metrics::glycemic::GlycemicSummary;
    pub use aps_metrics::ConfusionCounts;
    pub use aps_ml::data::{ForecastSet, StandardScaler, TraceDataset};
    pub use aps_ml::forecast::{
        ForecastConfig, ForecastModel, LstmForecaster, LstmState, MlpForecaster,
    };
    pub use aps_risk::{LabelConfig, RiskSample, RiskTracker};
    pub use aps_service::{Client, JobManifest, ServiceConfig};
    pub use aps_sim::batch::{
        run_block, run_campaign_batched, run_campaign_batched_with, BATCH_LANES,
    };
    pub use aps_sim::campaign::{
        campaign_jobs, campaign_size, run_campaign, run_campaign_ft, run_campaign_resumable,
        run_campaign_with, CampaignJob, CampaignOptions, CampaignReport, CampaignSpec,
        CampaignStream, CheckpointPolicy, FtCampaign, MonitorFactory, ScenarioCtx, WorkerSource,
    };
    pub use aps_sim::chaos::ChaosConfig;
    pub use aps_sim::checkpoint::{CampaignCheckpoint, CheckpointError};
    pub use aps_sim::closed_loop::{self, ExerciseBout, LoopConfig, Meal};
    pub use aps_sim::dataset::push_store_traces;
    pub use aps_sim::outcome::{Backoff, ErrorLedger, JobOutcome, RetryPolicy, SimError};
    pub use aps_sim::platform::Platform;
    pub use aps_sim::replay::{
        replay_campaign, replay_campaign_with, replay_monitor, replay_store, replay_store_with,
    };
    pub use aps_sim::session::{MonitorSpec, Session, SessionBuilder, SessionError, SessionSpec};
    pub use aps_sim::shard::{plan_shards, ShardPlan};
    pub use aps_tracestore::{
        read_store, write_store, FileTraceWriter, StoreError, StoreInfo, TraceStoreReader,
        TraceWriter,
    };
    pub use aps_types::{
        AlertTrack, ControlAction, Hazard, MgDl, SimTrace, Step, StepRecord, Units, UnitsPerHour,
    };
}
