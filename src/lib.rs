//! # APS Safety Monitor — facade crate
//!
//! Reproduction of *"Data-driven Design of Context-aware Monitors for
//! Hazard Prediction in Artificial Pancreas Systems"* (Zhou et al.,
//! DSN 2021). This crate re-exports the whole workspace so examples,
//! integration tests, and downstream users can depend on one crate:
//!
//! | module | contents |
//! |--------|----------|
//! | [`types`] | shared domain types (glucose, insulin, traces) |
//! | [`glucose`] | patient simulators (Bergman/GIM, Dalla Man), CGM, pump, IOB |
//! | [`controllers`] | oref0-style and basal–bolus controllers |
//! | [`stl`] | signal temporal logic engine |
//! | [`optim`] | L-BFGS-B and tightness losses (TMEE/TeLEx/MSE/MAE) |
//! | [`ml`] | from-scratch DT / MLP / LSTM baselines |
//! | [`fault`] | fault-injection engine |
//! | [`detect`] | sensor-stream change detectors (SPRT, CUSUM, EWMA) |
//! | [`risk`] | BG risk index and hazard labeling |
//! | [`metrics`] | tolerance-window metrics, TTH, reaction time, risk |
//! | [`core`] | **the contribution**: SCS, threshold learning, monitors, mitigation |
//! | [`sim`] | sessions, closed-loop harness, platforms, campaigns, datasets |
//!
//! # Quickstart
//!
//! Runs are *composed*:
//! [`Session::builder`](sim::session::Session::builder) assembles one
//! closed-loop simulation fluently, and any number of `.monitor(..)` /
//! `.monitor_spec(..)` calls attach hazard monitors that all score the
//! **same single physics pass** (each gets its own alert stream in
//! [`SimTrace::monitor_tracks`](types::SimTrace::monitor_tracks)):
//!
//! ```
//! use aps_repro::prelude::*;
//!
//! // One insulin-overdose attack, scored by the context-aware monitor
//! // and the online risk-index ground truth simultaneously.
//! let trace = Session::builder(Platform::GlucosymOref0)
//!     .patient(0)
//!     .monitor_spec(MonitorSpec::Cawot)
//!     .monitor_spec(MonitorSpec::RiskIndex)
//!     .inject(FaultScenario::new("rate", FaultKind::Max, Step(20), 36))
//!     .run()
//!     .expect("valid session");
//! assert_eq!(trace.len(), 150);
//! assert_eq!(trace.monitor_tracks.len(), 2);
//! assert!(trace.track("cawot").unwrap().first_alert().is_some());
//! ```
//!
//! Sessions also exist *as data*: a serde
//! [`SessionSpec`](sim::session::SessionSpec) (platform, patient,
//! monitors, fault, loop config) builds the same run from JSON —
//! `repro run --spec examples/session_spec.json` — and the builder
//! validates the fault target against the controller's injectable
//! surface at build time.
//!
//! ## Legacy entry point
//!
//! The original positional API,
//! [`closed_loop::run`](sim::closed_loop::run)`(patient, controller,
//! Option<monitor>, Option<injector>, &config)`, is retained as a
//! documented thin wrapper over the same engine and produces
//! bit-identical traces (pinned by `tests/session_equivalence.rs`).
//! It is frozen, not deprecated: new capabilities — monitor banks,
//! per-step observers, spec files, target validation — land only on
//! [`Session`](sim::session::Session).
//!
//! # Performance
//!
//! Fault-injection campaigns are the workload that matters: a paper-
//! scale run is thousands of closed-loop simulations, each stepping a
//! patient ODE and a monitor 150 times. The campaign hot path is
//! engineered accordingly:
//!
//! * **Allocation-free integration** — the patient models integrate
//!   with a const-generic stack scratch
//!   ([`glucose::ode::Rk4Scratch`]); no heap allocation occurs inside
//!   the per-step RK4 loop. The slice-based `rk4_step`/`integrate`
//!   API survives as thin wrappers with bit-identical results (see
//!   `tests/perf_equivalence.rs`).
//! * **O(1) IOB reads** — the insulin-on-board estimator caches its
//!   window sum and memoizes the activity curve on the cycle grid
//!   instead of re-evaluating ~100 `exp` calls per read.
//! * **Lock-free streaming campaign executor** —
//!   [`sim::campaign::run_campaign_with`] claims jobs from an atomic
//!   counter and drains workers through an ordered reorder buffer
//!   into a caller-supplied sink, so paper-scale sweeps run in
//!   bounded memory; [`sim::campaign::run_campaign`] is the
//!   collecting wrapper, defined to equal
//!   [`sim::campaign::run_campaign_serial`], and
//!   [`sim::campaign::CampaignStream`] is the pull-based lazy
//!   counterpart. Offline monitor replay
//!   ([`sim::replay::replay_campaign`]) parallelizes the same way.
//! * **Monitor banks** — a [`core::monitors::MonitorBank`] steps N
//!   monitors against one physics pass (alert streams recorded per
//!   member in the trace), so scoring a zoo of M monitors live costs
//!   1×physics + M×monitor instead of M×physics. The `repro zoo`
//!   report asserts the step count and measures every monitor's
//!   reaction time, including the `RiskIndexMonitor` latency floor.
//! * **Streaming O(n) hazard labeling** — [`risk::label_series`] rides
//!   the incremental [`risk::RiskTracker`] (O(1) rolling LBGI/HBGI per
//!   sample) instead of recomputing every trailing window
//!   (O(n·window)); labels are pinned bit-identical to the retained
//!   reference implementation (`tests/risk_equivalence.rs`). The same
//!   tracker powers the online
//!   [`core::monitors::RiskIndexMonitor`], so hazard awareness exists
//!   *during* a run, not only post hoc.
//! * **Array-backed controller state** — both controllers (oref0 at
//!   PR 1, basal–bolus at PR 2) use `Copy` profiles and fixed-slot
//!   variable arrays; no `HashMap` lookups or profile clones in
//!   `decide`.
//!
//! The measured baseline lives in `BENCH_campaign.json` (quick
//! campaign: 62 runs × 150 steps; seed-faithful hot path vs current —
//! ≈3.4× on one core at PR 1, ≈4.8× at PR 2 after the risk-labeling
//! and basal–bolus rework). Regenerate it with:
//!
//! ```text
//! cargo run --release -p aps-bench --bin repro -- bench-campaign
//! ```
//!
//! CI re-measures this every run and **fails below 80% of the
//! committed speedup** (`bench-campaign --guard <committed.json>`).
//! Compare executors microscopically with:
//!
//! ```text
//! cargo bench -p aps-bench --bench campaign_throughput
//! ```
//!
//! # Prediction
//!
//! The reproduction's *learned predictive* arm forecasts BG ahead of
//! time instead of classifying the current cycle:
//!
//! * **Data layer** — [`ml::data::TraceDataset`] streams a
//!   fault-injection campaign (as a `run_campaign_with` sink, bounded
//!   memory) into sequence-regression windows of per-cycle
//!   `[CGM BG, commanded insulin]` features with a BG-at-horizon
//!   target at **every** timestep; retained pairs are reservoir-capped
//!   deterministically under a fixed seed.
//! * **Training layer** — `repro train` fits the streaming
//!   [`ml::forecast::LstmForecaster`] plus the
//!   [`ml::forecast::MlpForecaster`] baseline and reports held-out
//!   RMSE against the persistence baseline (quick scale: LSTM ≈2.0
//!   mg/dL per cycle vs persistence ≈6.6 at a 60-min horizon). LSTM
//!   training runs through reusable scratch buffers
//!   ([`ml::lstm::LstmTrainer`], [`ml::forecast::ForecastTrainer`]):
//!   **zero heap allocations per timestep** in steady state, pinned by
//!   a counting allocator in `tests/lstm_alloc.rs`, and bit-identical
//!   to the retained allocating reference (`Lstm::fit_reference`,
//!   `tests/lstm_equivalence.rs`). The trained bundle
//!   ([`ml::forecast::ForecastModel`]) serializes to
//!   `results/forecast_model.json` — weights are never opaque, the
//!   command reproduces them bit-for-bit.
//! * **Online layer** — [`core::monitors::ForecastMonitor`] steps the
//!   trained network incrementally each control cycle (carried hidden
//!   state, O(1) and allocation-free per sample; stepping equals a
//!   batch forward pass over the same prefix, see
//!   `tests/forecast_pipeline.rs`) and alerts when the predicted
//!   horizon BG crosses the hazard band obtained by inverting the
//!   labeler's LBGI/HBGI thresholds through the Kovatchev risk
//!   transform. Attach it via the zoo (`repro zoo`), the builder, or
//!   as data: `{"Forecast": {"path": "results/forecast_model.json"}}`
//!   in a [`sim::session::SessionSpec`].
//!
//! Quick-scale zoo measurement (62 scenarios, 60-min horizon): the
//! Forecast row reacts at **+5 min** mean (alerts ~5 min *before*
//! labeled onset, EDR 33%) — 62 min ahead of the online risk-index
//! floor (−57 min) that any predictive monitor must beat, though still
//! behind the rule-based CAWOT/CAWT (+65 min, EDR 100%) whose
//! context rules fire on the unsafe *action* rather than its
//! consequence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aps_controllers as controllers;
pub use aps_core as core;
pub use aps_detect as detect;
pub use aps_fault as fault;
pub use aps_glucose as glucose;
pub use aps_metrics as metrics;
pub use aps_ml as ml;
pub use aps_optim as optim;
pub use aps_risk as risk;
pub use aps_sim as sim;
pub use aps_stl as stl;
pub use aps_types as types;

/// The most commonly used items, for `use aps_repro::prelude::*`.
pub mod prelude {
    pub use aps_controllers::Controller;
    pub use aps_core::context::{ContextBuilder, ContextVector};
    pub use aps_core::hms::{ContextMitigator, ContextMitigatorConfig, Hms, TsLearnConfig};
    pub use aps_core::learning::{learn_thresholds, LearnConfig};
    pub use aps_core::mitigation::Mitigator;
    pub use aps_core::monitors::MonitorBank;
    pub use aps_core::monitors::{
        CawMonitor, ForecastBand, ForecastMonitor, GuidelineMonitor, HazardMonitor, LstmMonitor,
        MlMonitor, MonitorInput, MpcMonitor, NullMonitor, RiskIndexMonitor, StlCawMonitor,
    };
    pub use aps_core::scs::Scs;
    pub use aps_detect::{CgmGuard, ChangeDetector, Cusum, Decision, Ewma, Sprt};
    pub use aps_fault::{FaultInjector, FaultKind, FaultScenario};
    pub use aps_glucose::{BoxedPatient, PatientSim};
    pub use aps_metrics::glycemic::GlycemicSummary;
    pub use aps_metrics::ConfusionCounts;
    pub use aps_ml::data::{ForecastSet, StandardScaler, TraceDataset};
    pub use aps_ml::forecast::{
        ForecastConfig, ForecastModel, LstmForecaster, LstmState, MlpForecaster,
    };
    pub use aps_risk::{LabelConfig, RiskSample, RiskTracker};
    pub use aps_sim::campaign::{
        campaign_jobs, run_campaign, run_campaign_with, CampaignJob, CampaignSpec, CampaignStream,
        MonitorFactory, ScenarioCtx,
    };
    pub use aps_sim::closed_loop::{self, ExerciseBout, LoopConfig, Meal};
    pub use aps_sim::platform::Platform;
    pub use aps_sim::replay::{replay_campaign, replay_campaign_with, replay_monitor};
    pub use aps_sim::session::{MonitorSpec, Session, SessionBuilder, SessionError, SessionSpec};
    pub use aps_types::{
        AlertTrack, ControlAction, Hazard, MgDl, SimTrace, Step, StepRecord, Units, UnitsPerHour,
    };
}
